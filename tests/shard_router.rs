//! Behavioural contracts of the in-process [`ShardRouter`] that the
//! differential oracle does not pin directly:
//!
//! * a **no-op edit trace** (deletes of absent edges, duplicate inserts,
//!   self-loops — everything the maintainer records as *nothing*) must fan
//!   repair out to **zero** shards, observable through the
//!   `sigma_shard_repair_*` counters;
//! * construction with **more shards than nodes** pads empty-range engines
//!   that never panic and never receive traffic;
//! * the façade preserves the engine's typed error surface
//!   ([`ServeError::InvalidQuery`], [`ServeError::ShardConfig`]);
//! * edge-update fan-out invalidates exactly what one engine would, while
//!   skipping footprint-free shards.

use sigma_serve::{
    EngineConfig, InferenceEngine, Prediction, ServeError, ShardRouter, ShardRouterConfig,
};
use sigma_simrank::EdgeUpdate;
use sigma_testutil::{random_graph, serving_fixture};

fn engine_config(cache_capacity: usize) -> EngineConfig {
    EngineConfig {
        cache_capacity,
        workers: 0,
        max_chunk: 64,
    }
}

fn assert_bitwise_eq(a: &Prediction, b: &Prediction) {
    assert_eq!(a.node, b.node);
    assert_eq!(a.label, b.label);
    let bits_a: Vec<u32> = a.logits.iter().map(|v| v.to_bits()).collect();
    let bits_b: Vec<u32> = b.logits.iter().map(|v| v.to_bits()).collect();
    assert_eq!(bits_a, bits_b, "logits diverge at node {}", a.node);
}

#[test]
fn noop_edits_fan_repair_out_to_zero_shards() {
    let graph = random_graph(30, 8, 7);
    let fixture = serving_fixture(&graph, 5, 7);
    let mut maintainer = fixture.maintainer;
    let shards = 4;
    let router = ShardRouter::new(
        &fixture.snapshot,
        &ShardRouterConfig {
            shards,
            engine: engine_config(30),
        },
    )
    .expect("router construction");

    // Pure no-op edits: the maintainer's graph never changes, so
    // `affected_nodes()` / `edited_nodes()` stay empty.
    let (u, v) = graph.edges().next().expect("graph has edges");
    let mut absent = None;
    'outer: for a in 0..30usize {
        for b in (a + 1)..30 {
            if !graph.has_edge(a, b) {
                absent = Some((a, b));
                break 'outer;
            }
        }
    }
    let (a, b) = absent.expect("a 30-node degree-8 graph is not complete");
    maintainer.apply(EdgeUpdate::Delete(a, b)).unwrap(); // missing delete
    maintainer.apply(EdgeUpdate::Insert(u, v)).unwrap(); // duplicate insert
    maintainer.apply(EdgeUpdate::Insert(3, 3)).unwrap(); // self-loop
    assert!(maintainer.affected_nodes().is_empty(), "edits were no-ops");

    let repair = router.repair_from(&mut maintainer).expect("repair");
    assert!(!repair.full_refresh);
    assert_eq!(repair.fanout, 0, "no-op edits must touch no shard");
    assert_eq!(repair.skipped, shards);
    assert!(repair.operator_rows.is_empty());
    assert!(repair.shard_repairs.iter().all(Option::is_none));

    let stats = router.stats();
    assert_eq!(stats.repair_fanout, 0, "sigma_shard_repair_fanout_total");
    assert_eq!(
        stats.repair_skipped, shards as u64,
        "sigma_shard_repair_skipped_total"
    );
    assert_eq!(stats.repair_dirty_seeds, 0);
    assert_eq!(stats.engines.operator_repairs, 0);
    assert_eq!(stats.engines.rows_repaired, 0);
}

#[test]
fn more_shards_than_nodes_pads_idle_engines_without_panicking() {
    let graph = random_graph(6, 3, 13);
    let fixture = serving_fixture(&graph, 3, 13);
    let shards = 16;
    let router = ShardRouter::new(
        &fixture.snapshot,
        &ShardRouterConfig {
            shards,
            engine: engine_config(6),
        },
    )
    .expect("16 shards over 6 nodes must construct");
    assert_eq!(router.num_shards(), shards);
    assert_eq!(router.num_nodes(), 6);

    let reference = InferenceEngine::new(&fixture.snapshot, engine_config(6)).unwrap();
    let nodes: Vec<usize> = (0..6).collect();
    let routed = router.predict_batch(&nodes).expect("batch");
    let expected = reference.predict_batch(&nodes).expect("reference batch");
    for (a, b) in routed.iter().zip(&expected) {
        assert_bitwise_eq(a, b);
    }
    // Empty-range tail shards exist but never serve.
    let stats = router.stats();
    assert_eq!(stats.per_shard.len(), shards);
    let idle = stats
        .per_shard
        .iter()
        .zip(router.plan().ranges())
        .filter(|(s, range)| range.is_empty() && s.nodes_served == 0)
        .count();
    assert!(
        idle >= shards - 6,
        "at least {} tail shards must stay idle, saw {idle}",
        shards - 6
    );
    assert_eq!(stats.engines.nodes_served, 6);
    assert_eq!(stats.queries_routed, 6);
    assert_eq!(stats.batches_routed, 1);
}

#[test]
fn router_preserves_the_typed_error_surface() {
    let graph = random_graph(12, 4, 3);
    let fixture = serving_fixture(&graph, 4, 3);

    // Zero shards is a configuration error, not a panic.
    let err = ShardRouter::new(
        &fixture.snapshot,
        &ShardRouterConfig {
            shards: 0,
            engine: engine_config(12),
        },
    )
    .unwrap_err();
    assert!(
        matches!(err, ServeError::ShardConfig { shards: 0, .. }),
        "zero shards must surface as ShardConfig, got {err}"
    );
    assert!(err.to_string().contains("shard"));

    // An empty mapped fleet is equally typed.
    let err = ShardRouter::from_mapped(Vec::new(), engine_config(12)).unwrap_err();
    assert!(matches!(err, ServeError::ShardConfig { shards: 0, .. }));

    // Out-of-range queries return InvalidQuery from both entry points.
    let router = ShardRouter::new(
        &fixture.snapshot,
        &ShardRouterConfig {
            shards: 3,
            engine: engine_config(12),
        },
    )
    .unwrap();
    for err in [
        router.predict(12).unwrap_err(),
        router.predict_batch(&[0, 1, 99]).unwrap_err(),
    ] {
        match err {
            ServeError::InvalidQuery { node, num_nodes } => {
                assert!(node >= 12);
                assert_eq!(num_nodes, 12);
            }
            other => panic!("expected InvalidQuery, got {other}"),
        }
    }
    // A rejected batch serves nothing and routes nothing.
    assert_eq!(router.stats().queries_routed, 0);
}

#[test]
fn edge_update_fanout_invalidates_exactly_what_one_engine_would() {
    let graph = random_graph(40, 6, 21);
    let fixture = serving_fixture(&graph, 5, 21);
    let shards = 5;
    let router = ShardRouter::new(
        &fixture.snapshot,
        &ShardRouterConfig {
            shards,
            engine: engine_config(40),
        },
    )
    .unwrap();
    let reference = InferenceEngine::new(&fixture.snapshot, engine_config(40)).unwrap();

    // Warm every cache on both sides so invalidation counts are comparable.
    let nodes: Vec<usize> = (0..40).collect();
    let routed = router.predict_batch(&nodes).unwrap();
    let expected = reference.predict_batch(&nodes).unwrap();
    for (a, b) in routed.iter().zip(&expected) {
        assert_bitwise_eq(a, b);
    }
    assert_eq!(router.cached_rows(), reference.cached_rows());

    // One real edit: the router invalidates the same number of cached rows
    // as the single engine, marks the same nodes stale, and skips every
    // shard the footprint provably misses.
    let (u, v) = graph.edges().next().expect("graph has edges");
    let updates = [EdgeUpdate::Delete(u, v)];
    let router_invalidated = router.apply_edge_updates(&updates).unwrap();
    let engine_invalidated = reference.apply_edge_updates(&updates).unwrap();
    assert_eq!(router_invalidated, engine_invalidated);
    assert_eq!(router.stale_nodes(), reference.stale_nodes());
    assert!(
        !router.stale_nodes().is_empty(),
        "a real edit marks staleness"
    );

    let stats = router.stats();
    assert_eq!(
        stats.edge_update_fanout + stats.edge_update_skipped,
        shards as u64,
        "every shard is either fanned to or skipped"
    );
    assert!(
        stats.edge_update_fanout >= 1,
        "the owner shard must be touched"
    );
}
