//! End-to-end integration tests: dataset generation → precomputation →
//! training → evaluation, across crates.

use sigma::{ContextBuilder, ModelHyperParams, ModelKind, TrainConfig, Trainer};
use sigma_datasets::{generate, DatasetPreset, GeneratorConfig};
use sigma_simrank::PprConfig;

fn quick_trainer(epochs: usize) -> Trainer {
    Trainer::new(TrainConfig {
        epochs,
        learning_rate: 0.03,
        weight_decay: 1e-4,
        patience: 0,
        record_every: 5,
        ..TrainConfig::default()
    })
}

#[test]
fn sigma_end_to_end_on_heterophilous_preset() {
    let data = DatasetPreset::Texas.build(1.0, 1).unwrap();
    let split = data.default_split(1).unwrap();
    let ctx = ContextBuilder::new(data)
        .with_simrank_topk(16)
        .build()
        .unwrap();
    let mut model = ModelKind::Sigma
        .build(&ctx, &ModelHyperParams::small(), 1)
        .unwrap();
    let report = quick_trainer(80)
        .train(model.as_mut(), &ctx, &split, 1)
        .unwrap();
    // On the Texas-like preset with 5 classes, random guessing is ~20%;
    // SIGMA should comfortably beat it.
    assert!(
        report.test_accuracy > 0.3,
        "SIGMA test accuracy too low: {}",
        report.test_accuracy
    );
    assert!(report.final_train_loss.is_finite());
    assert!(report.precompute_time > std::time::Duration::ZERO);
}

#[test]
fn sigma_beats_gcn_under_strong_heterophily() {
    // Structured heterophily with weak features: the regime the paper targets.
    // GCN's uniform local smoothing mixes classes; SIGMA's global SimRank
    // aggregation keeps them apart. Homophily 0.05 keeps the margin robust
    // across RNG streams (at 0.1 the structured wiring is informative enough
    // for a 2-layer GCN to occasionally tie SIGMA on a lucky seed).
    let cfg = GeneratorConfig::new(400, 10.0, 4, 16)
        .with_homophily(0.05)
        .with_feature_snr(0.6, 1.0)
        .with_name("hetero-e2e");
    let data = generate(&cfg, 3).unwrap();
    assert!(data.node_homophily().unwrap() < 0.3);
    let split = data.default_split(3).unwrap();
    let ctx = ContextBuilder::new(data)
        .with_simrank_topk(16)
        .build()
        .unwrap();

    let trainer = quick_trainer(100);
    let hyper = ModelHyperParams::small();

    let mut best_sigma = 0.0f32;
    let mut best_gcn = 0.0f32;
    for seed in [1, 2] {
        let mut sigma_model = ModelKind::Sigma.build(&ctx, &hyper, seed).unwrap();
        let sigma_report = trainer
            .train(sigma_model.as_mut(), &ctx, &split, seed)
            .unwrap();
        best_sigma = best_sigma.max(sigma_report.test_accuracy);

        let mut gcn_model = ModelKind::Gcn(2).build(&ctx, &hyper, seed).unwrap();
        let gcn_report = trainer
            .train(gcn_model.as_mut(), &ctx, &split, seed)
            .unwrap();
        best_gcn = best_gcn.max(gcn_report.test_accuracy);
    }
    assert!(
        best_sigma > best_gcn,
        "SIGMA ({best_sigma}) should beat GCN ({best_gcn}) under heterophily"
    );
}

#[test]
fn homophilous_graphs_are_learnable_by_everyone() {
    let cfg = GeneratorConfig::new(300, 8.0, 3, 16)
        .with_homophily(0.85)
        .with_feature_snr(1.5, 1.0)
        .with_name("homo-e2e");
    let data = generate(&cfg, 4).unwrap();
    let split = data.default_split(4).unwrap();
    let ctx = ContextBuilder::new(data)
        .with_simrank_topk(16)
        .with_two_hop()
        .with_ppr(PprConfig {
            top_k: Some(16),
            ..PprConfig::default()
        })
        .build()
        .unwrap();
    let trainer = quick_trainer(60);
    for kind in [
        ModelKind::Sigma,
        ModelKind::Gcn(2),
        ModelKind::Linkx,
        ModelKind::PprGo,
    ] {
        let mut model = kind.build(&ctx, &ModelHyperParams::small(), 4).unwrap();
        let report = trainer.train(model.as_mut(), &ctx, &split, 4).unwrap();
        assert!(
            report.test_accuracy > 0.5,
            "{} accuracy too low on homophilous graph: {}",
            kind.name(),
            report.test_accuracy
        );
    }
}

#[test]
fn all_table_v_models_run_on_one_dataset() {
    let data = DatasetPreset::Texas.build(0.8, 9).unwrap();
    let split = data.default_split(9).unwrap();
    let ctx = ContextBuilder::new(data)
        .with_simrank_topk(8)
        .with_two_hop()
        .with_ppr(PprConfig {
            top_k: Some(8),
            ..PprConfig::default()
        })
        .build()
        .unwrap();
    let trainer = quick_trainer(5);
    for kind in ModelKind::TABLE_V {
        let mut model = kind.build(&ctx, &ModelHyperParams::small(), 9).unwrap();
        let report = trainer.train(model.as_mut(), &ctx, &split, 9).unwrap();
        assert!(
            report.final_train_loss.is_finite(),
            "{} diverged",
            kind.name()
        );
        assert!(report.best_val_accuracy >= 0.0 && report.best_val_accuracy <= 1.0);
    }
}

#[test]
fn learnable_alpha_reports_a_convergent_value() {
    let data = DatasetPreset::Chameleon.build(0.5, 6).unwrap();
    let split = data.default_split(6).unwrap();
    let ctx = ContextBuilder::new(data)
        .with_simrank_topk(16)
        .build()
        .unwrap();
    let hyper = ModelHyperParams::small()
        .with_learnable_alpha(true)
        .with_alpha(0.5);
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(6);
    let mut model = sigma::SigmaModel::new(&ctx, &hyper, &mut rng).unwrap();
    let _ = quick_trainer(40)
        .train(&mut model as &mut dyn sigma::Model, &ctx, &split, 6)
        .unwrap();
    let alpha = model.alpha();
    assert!((0.0..=1.0).contains(&alpha));
    assert!(
        (alpha - 0.5).abs() > 1e-4,
        "alpha never moved from its initialisation"
    );
}
