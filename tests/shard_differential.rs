//! Cross-crate integration: the shard-generic differential oracle.
//!
//! An N-shard `ShardRouter` must be bitwise indistinguishable from a
//! single `InferenceEngine` — logits, labels, `most_similar` answers (ids
//! *and* score bits), operator rows, cache attribution, per-shard
//! hit/eviction accounting — through edit + incremental-repair traces, at
//! every shard count and every thread count, on both the decoded (owned)
//! and mapped (zero-copy v2) shard paths. The oracle
//! (`sigma_testutil::replay_differential_sharded`) asserts all of that per
//! batch, interleaving top-k similarity queries before and after each
//! repair round; this suite sweeps the dimensions and additionally pins
//! the *economics*: repair fan-out on a large sparse graph must be
//! footprint-sparse, measured through the router's `sigma_shard_*`
//! counters.

use sigma_testutil::{random_graph, random_trace, replay_differential_sharded, TraceShape};

/// The tentpole sweep dimensions: shard counts including 1 (the router
/// degenerates to a façade over one engine) and 7 (odd, so ranges never
/// align with batch structure), thread counts covering the serial and
/// parallel kernel configurations.
const SHARD_COUNTS: &[usize] = &[1, 2, 4, 7];
const THREAD_COUNTS: &[usize] = &[1, 4];

fn sweep(mapped: bool, seed: u64) {
    let graph = random_graph(32, 10, seed);
    let shape = TraceShape {
        batches: 3,
        batch_len: 2,
        delete_probability: 0.4,
        readd_probability: 0.3,
    };
    let trace = random_trace(&graph, shape, seed);
    for &threads in THREAD_COUNTS {
        sigma_parallel::set_global_threads(threads);
        for &shards in SHARD_COUNTS {
            let report = replay_differential_sharded(&graph, &trace, 6, seed, shards, mapped);
            assert_eq!(
                report.rounds,
                trace.len(),
                "shards={shards} threads={threads} mapped={mapped}"
            );
            assert_eq!(report.shards, shards);
            assert!(
                report.repair_fanout > 0,
                "shards={shards} threads={threads} mapped={mapped}: trace repaired nothing"
            );
        }
    }
}

#[test]
fn router_is_bitwise_equal_to_one_engine_across_shards_and_threads() {
    sweep(false, 41);
}

#[test]
fn mapped_router_is_bitwise_equal_to_one_engine_across_shards_and_threads() {
    sweep(true, 43);
}

#[test]
fn more_shards_than_nodes_still_replays_exactly() {
    // 12 nodes behind 16 shards: the plan pads empty tail shards, which
    // must construct, receive zero traffic, and never repair.
    let graph = random_graph(12, 4, 11);
    let trace = random_trace(
        &graph,
        TraceShape {
            batches: 2,
            batch_len: 1,
            delete_probability: 0.5,
            readd_probability: 0.0,
        },
        11,
    );
    let report = replay_differential_sharded(&graph, &trace, 4, 11, 16, false);
    assert_eq!(report.rounds, trace.len());
    // At least the 4 always-empty tail shards are skipped every round.
    assert!(report.repair_skipped >= (trace.len() * 4) as u64);
}

#[test]
fn repair_fanout_is_footprint_sparse_on_the_incremental_repair_fixture() {
    // The 200-node fixture from tests/incremental_repair.rs: large and
    // sparse, so a localised edit's dirty row set covers a small
    // neighbourhood — most of 7 shards must be skipped, proven via the
    // sigma_shard_* fan-out counters the oracle folds into its report.
    let num_nodes = 200;
    let graph = random_graph(num_nodes, 15, 2024);
    let shape = TraceShape {
        batches: 4,
        batch_len: 2,
        delete_probability: 0.4,
        readd_probability: 0.3,
    };
    let trace = random_trace(&graph, shape, 2024);
    let shards = 7;
    let report = replay_differential_sharded(&graph, &trace, 6, 2024, shards, false);

    assert_eq!(report.rounds, 4);
    assert_eq!(report.num_nodes, num_nodes);
    assert_eq!(
        report.repair_fanout + report.repair_skipped,
        (report.rounds * shards) as u64,
        "every shard-round is either repaired or skipped"
    );
    // Footprint sparsity: localised edits must not fan out to the whole
    // fleet. (Correctness of every skip is asserted inside the oracle —
    // skipped ranges provably miss the reference dirty sets — so this
    // bound is purely about the economics.)
    assert!(
        report.repair_skipped > 0,
        "no shard was ever skipped: repair fan-out is not footprint-sparse \
         (fanout={}, skipped={})",
        report.repair_fanout,
        report.repair_skipped
    );
    // And the average repair touches well under half the rows, matching
    // the single-engine locality bound.
    let avg_patched = report.operator_rows_patched as f64 / report.rounds as f64;
    assert!(
        avg_patched < num_nodes as f64 / 2.0,
        "repair is not local: {avg_patched:.1} rows patched per round on {num_nodes} nodes"
    );
}
