//! Cross-crate pipeline tests: consistency of operators, timings, ablations
//! and the efficiency claims that span `sigma-graph`, `sigma-simrank`,
//! `sigma-nn` and the core crate.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sigma::{
    complexity, AggregatorKind, ContextBuilder, Model, ModelHyperParams, ModelKind, SigmaModel,
    TrainConfig, Trainer,
};
use sigma_datasets::DatasetPreset;
use sigma_graph::rescale_edges;
use sigma_simrank::{PprConfig, SimRankConfig};

#[test]
fn simrank_operator_in_context_matches_standalone_localpush() {
    let data = DatasetPreset::Texas.build(1.0, 2).unwrap();
    let cfg = SimRankConfig::default().with_top_k(8);
    let standalone = sigma_simrank::LocalPush::new(&data.graph, cfg)
        .unwrap()
        .run_to_operator();
    let ctx = ContextBuilder::new(data).with_simrank(cfg).build().unwrap();
    let from_ctx = ctx.simrank().unwrap();
    assert_eq!(from_ctx.shape(), standalone.shape());
    assert_eq!(from_ctx.nnz(), standalone.nnz());
}

#[test]
fn topk_controls_operator_density_and_aggregation_cost() {
    let data = DatasetPreset::Chameleon.build(0.6, 3).unwrap();
    let small_k = ContextBuilder::new(data.clone())
        .with_simrank(SimRankConfig::default().with_top_k(4))
        .build()
        .unwrap();
    let large_k = ContextBuilder::new(data)
        .with_simrank(SimRankConfig::default().with_top_k(64))
        .build()
        .unwrap();
    let nnz_small = small_k.simrank().unwrap().nnz();
    let nnz_large = large_k.simrank().unwrap().nnz();
    assert!(nnz_small <= nnz_large);
    assert!(nnz_small <= 4 * small_k.num_nodes());
}

#[test]
fn edge_rescaling_feeds_the_full_pipeline() {
    // The Fig. 5 path: rescale edges, rebuild the dataset, retrain.
    let data = DatasetPreset::Pokec.build(0.5, 4).unwrap();
    let original_edges = data.num_edges();
    let smaller_graph = rescale_edges(&data.graph, original_edges / 2, 4).unwrap();
    assert_eq!(smaller_graph.num_edges(), original_edges / 2);
    let smaller = sigma_datasets::Dataset {
        name: "pokec-rescaled".to_string(),
        graph: smaller_graph,
        features: data.features.clone(),
        labels: data.labels.clone(),
        num_classes: data.num_classes,
    };
    let split = smaller.default_split(4).unwrap();
    let ctx = ContextBuilder::new(smaller)
        .with_simrank_topk(8)
        .build()
        .unwrap();
    let mut model = ModelKind::Sigma
        .build(&ctx, &ModelHyperParams::small(), 4)
        .unwrap();
    let report = Trainer::new(TrainConfig {
        epochs: 5,
        patience: 0,
        ..TrainConfig::default()
    })
    .train(model.as_mut(), &ctx, &split, 4)
    .unwrap();
    assert!(report.final_train_loss.is_finite());
}

#[test]
fn sigma_aggregation_time_is_smaller_than_glognn() {
    // The Table VII qualitative claim: per-epoch aggregation cost of SIGMA
    // (top-k constant operator) is below GloGNN's iterative multi-hop
    // aggregation on the same graph and budget.
    let data = DatasetPreset::Penn94.build(1.0, 5).unwrap();
    let split = data.default_split(5).unwrap();
    let ctx = ContextBuilder::new(data)
        .with_simrank_topk(16)
        .build()
        .unwrap();
    let trainer = Trainer::new(TrainConfig {
        epochs: 20,
        patience: 0,
        ..TrainConfig::default()
    });
    let hyper = ModelHyperParams::small();

    let mut sigma_model = ModelKind::Sigma.build(&ctx, &hyper, 5).unwrap();
    let sigma_report = trainer
        .train(sigma_model.as_mut(), &ctx, &split, 5)
        .unwrap();
    let mut glognn_model = ModelKind::GloGnn.build(&ctx, &hyper, 5).unwrap();
    let glognn_report = trainer
        .train(glognn_model.as_mut(), &ctx, &split, 5)
        .unwrap();

    assert!(
        sigma_report.aggregation_time < glognn_report.aggregation_time,
        "SIGMA agg {:?} should be below GloGNN agg {:?}",
        sigma_report.aggregation_time,
        glognn_report.aggregation_time
    );
}

#[test]
fn ablation_variants_all_train_and_expose_their_aggregator() {
    let data = DatasetPreset::ArxivYear.build(0.4, 6).unwrap();
    let split = data.default_split(6).unwrap();
    let ctx = ContextBuilder::new(data)
        .with_simrank_topk(8)
        .with_ppr(PprConfig {
            top_k: Some(8),
            ..PprConfig::default()
        })
        .build()
        .unwrap();
    let trainer = Trainer::new(TrainConfig {
        epochs: 5,
        patience: 0,
        ..TrainConfig::default()
    });
    for aggregator in [
        AggregatorKind::SimRank,
        AggregatorKind::SimRankTimesA,
        AggregatorKind::Ppr,
        AggregatorKind::None,
    ] {
        let mut rng = StdRng::seed_from_u64(6);
        let mut model =
            SigmaModel::with_aggregator(&ctx, &ModelHyperParams::small(), aggregator, &mut rng)
                .unwrap();
        assert_eq!(model.aggregator(), aggregator);
        let report = trainer
            .train(&mut model as &mut dyn Model, &ctx, &split, 6)
            .unwrap();
        assert!(
            report.final_train_loss.is_finite(),
            "{aggregator:?} diverged"
        );
    }
}

#[test]
fn complexity_model_is_consistent_with_preset_statistics() {
    // Evaluate Table III on every large-scale preset's *paper* statistics.
    // SIGMA's aggregation must always beat the quadratic/attention-style
    // baselines, and it must beat every baseline (including GloGNN's
    // edge-linear aggregation) on the dense graphs the paper highlights
    // (average degree well above SIGMA's top-k / (k₂·l_norm) break-even).
    for preset in DatasetPreset::LARGE {
        let stats = preset.stats();
        let params = complexity::CostParams::typical(stats.paper_nodes, stats.paper_edges, 64);
        let rows = complexity::table3_rows(&params);
        let sigma_row = rows.iter().find(|r| r.model == "SIGMA").unwrap();
        for row in &rows {
            if matches!(row.model, "Geom-GCN" | "GPNN" | "U-GCN" | "WR-GAT") {
                assert!(
                    sigma_row.aggregation < row.aggregation,
                    "{}: SIGMA should beat {}",
                    stats.name,
                    row.model
                );
            }
        }
        let avg_degree = stats.paper_edges as f64 * 2.0 / stats.paper_nodes as f64;
        if avg_degree > 20.0 {
            let glognn = rows.iter().find(|r| r.model == "GloGNN").unwrap();
            assert!(
                sigma_row.aggregation < glognn.aggregation,
                "{}: SIGMA should beat GloGNN on dense graphs (avg degree {avg_degree:.1})",
                stats.name
            );
        }
    }
}
