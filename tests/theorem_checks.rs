//! Empirical checks of the paper's theoretical claims.
//!
//! * Theorem III.2: SimRank aggregation decomposes into pairwise-random-walk
//!   meeting probabilities (checked by Monte-Carlo estimation).
//! * Corollary III.3 / Table II: SimRank assigns higher scores to intra-class
//!   pairs than inter-class pairs on heterophilous graphs.
//! * Theorem III.4: the SIGMA output exhibits the grouping effect — nodes
//!   with similar features and similar neighbourhood structure end up with
//!   similar embeddings.
//! * Lemma III.5: LocalPush meets its `‖Ŝ − S‖_max < ε` guarantee.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sigma::{ContextBuilder, Model, ModelHyperParams, SigmaModel};
use sigma_datasets::{generate, GeneratorConfig};
use sigma_graph::Graph;
use sigma_simrank::{exact_simrank, pairwise_walk_simrank, LocalPush, SimRankConfig};

fn heterophilous_dataset(seed: u64) -> sigma_datasets::Dataset {
    let cfg = GeneratorConfig::new(150, 8.0, 3, 12)
        .with_homophily(0.15)
        .with_feature_snr(1.0, 1.0)
        .with_name("theorem-check");
    generate(&cfg, seed).unwrap()
}

#[test]
fn theorem_3_2_pairwise_walk_decomposition_matches_simrank() {
    // On a small structured graph, the Monte-Carlo estimate of
    // Σ_ℓ c^ℓ P(first meeting at ℓ) must agree with the fixed-point SimRank.
    let g = Graph::from_edges(
        8,
        &[
            (0, 2),
            (1, 2),
            (0, 3),
            (1, 3),
            (2, 4),
            (3, 5),
            (4, 6),
            (5, 6),
            (6, 7),
        ],
    )
    .unwrap();
    let exact = exact_simrank(
        &g,
        &SimRankConfig {
            epsilon: 0.001,
            ..SimRankConfig::default()
        },
    )
    .unwrap();
    for (u, v) in [(0usize, 1usize), (2, 3), (4, 5), (0, 7)] {
        let estimate = pairwise_walk_simrank(&g, u, v, 0.6, 40, 30_000, 17).unwrap();
        assert!(
            (estimate - exact.get(u, v) as f64).abs() < 0.04,
            "pair ({u},{v}): MC {estimate} vs exact {}",
            exact.get(u, v)
        );
    }
}

#[test]
fn corollary_3_3_intra_class_scores_exceed_inter_class_scores() {
    // The Table II observation on a synthetic heterophilous graph.
    let data = heterophilous_dataset(21);
    assert!(data.node_homophily().unwrap() < 0.35);
    let s = exact_simrank(&data.graph, &SimRankConfig::default()).unwrap();
    let mut intra = Vec::new();
    let mut inter = Vec::new();
    for u in 0..data.num_nodes() {
        for v in (u + 1)..data.num_nodes() {
            let score = s.get(u, v);
            if score <= 0.0 {
                continue;
            }
            if data.labels[u] == data.labels[v] {
                intra.push(score as f64);
            } else {
                inter.push(score as f64);
            }
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(
        mean(&intra) > mean(&inter) * 1.05,
        "intra-class mean {} should exceed inter-class mean {}",
        mean(&intra),
        mean(&inter)
    );
}

#[test]
fn lemma_3_5_localpush_error_bound_holds_on_generated_graphs() {
    let data = heterophilous_dataset(33);
    let cfg = SimRankConfig::default();
    let exact = exact_simrank(&data.graph, &cfg).unwrap();
    let approx = LocalPush::new(&data.graph, cfg).unwrap().run();
    let mut max_err = 0.0f32;
    for u in 0..data.num_nodes() {
        for v in 0..data.num_nodes() {
            if u == v {
                continue;
            }
            max_err = max_err.max((approx.get(u, v) - exact.get(u, v)).abs());
        }
    }
    assert!(
        max_err < cfg.epsilon as f32 + 0.02,
        "LocalPush max error {max_err} exceeds epsilon {}",
        cfg.epsilon
    );
}

#[test]
fn theorem_3_4_sigma_output_exhibits_grouping_effect() {
    // Structurally equivalent twin nodes with identical features must receive
    // nearly identical SIGMA embeddings, and far more similar embeddings than
    // an arbitrary pair of different-class nodes.
    let data = heterophilous_dataset(55);
    let n = data.num_nodes();
    // Build twins: two extra nodes wired to the same neighbours with the same
    // features and the same label.
    let base: usize = 0;
    let mut edges: Vec<(usize, usize)> = data.graph.edges().collect();
    let twin_a = n;
    let twin_b = n + 1;
    let anchor_neighbors: Vec<usize> = data
        .graph
        .neighbors(base)
        .iter()
        .map(|&x| x as usize)
        .collect();
    for &nb in &anchor_neighbors {
        edges.push((twin_a, nb));
        edges.push((twin_b, nb));
    }
    let graph = Graph::from_edges(n + 2, &edges).unwrap();
    let mut features = sigma_matrix::DenseMatrix::zeros(n + 2, data.feature_dim());
    for u in 0..n {
        features.row_mut(u).copy_from_slice(data.features.row(u));
    }
    let base_row = data.features.row(base).to_vec();
    features.row_mut(twin_a).copy_from_slice(&base_row);
    features.row_mut(twin_b).copy_from_slice(&base_row);
    let mut labels = data.labels.clone();
    labels.push(labels[base]);
    labels.push(labels[base]);
    let twin_dataset = sigma_datasets::Dataset {
        name: "twins".to_string(),
        graph,
        features,
        labels: labels.clone(),
        num_classes: data.num_classes,
    };

    let ctx = ContextBuilder::new(twin_dataset)
        .with_simrank_topk(16)
        .build()
        .unwrap();
    let hyper = ModelHyperParams::small().with_dropout(0.0);
    let mut rng = StdRng::seed_from_u64(5);
    let mut model = SigmaModel::new(&ctx, &hyper, &mut rng).unwrap();
    let z = model.forward(&ctx, false, &mut rng).unwrap();

    let twin_distance = z.row_distance(twin_a, twin_b);
    // Compare against the average distance between the twin and nodes of a
    // different class.
    let mut other_distances = Vec::new();
    for u in 0..n {
        if labels[u] != labels[twin_a] {
            other_distances.push(z.row_distance(twin_a, u));
        }
    }
    let mean_other = other_distances.iter().sum::<f32>() / other_distances.len() as f32;
    assert!(
        twin_distance < mean_other * 0.5,
        "grouping effect violated: twin distance {twin_distance} vs mean other-class distance {mean_other}"
    );
}
