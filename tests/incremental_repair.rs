//! Cross-crate integration: a long dynamic-serving scenario driven through
//! the `sigma-testutil` differential oracle.
//!
//! A pokec-shaped graph takes a multi-batch stream of insertions and
//! deletions; after every batch the long-lived engine is patched by
//! `InferenceEngine::repair_from` and checked — operator rows, served
//! logits, cache counters — against a from-scratch rebuild. On a graph this
//! size the repair region must also be a small fraction of the graph, which
//! pins the economics of the repair path, not just its correctness.

use sigma_testutil::{random_graph, random_trace, replay_differential, TraceShape};

#[test]
fn long_edit_stream_repairs_exactly_and_locally() {
    // Large and sparse: the push horizon around an edit covers only a small
    // neighbourhood of the 200-node ring-plus-chords topology.
    let num_nodes = 200;
    let graph = random_graph(num_nodes, 15, 2024);
    let shape = TraceShape {
        batches: 4,
        batch_len: 2,
        delete_probability: 0.4,
        readd_probability: 0.3,
    };
    let trace = random_trace(&graph, shape, 2024);
    let report = replay_differential(&graph, &trace, 6, 2024);

    assert_eq!(report.rounds, 4);
    assert_eq!(report.num_nodes, num_nodes);
    // Correctness is asserted inside the oracle; here we pin locality: the
    // average repair must touch well under half the operator rows.
    let avg_patched = report.operator_rows_patched as f64 / report.rounds as f64;
    assert!(
        avg_patched < num_nodes as f64 / 2.0,
        "repair is not local: {avg_patched:.1} rows patched per round on {num_nodes} nodes"
    );
    // Embedding repair is strictly first-order: at most two rows per edit.
    assert!(report.embedding_rows_patched <= report.rounds * shape.batch_len * 2);
    assert!(report.full_recompute_pushes > 0);
}

#[test]
fn repair_survives_densification_of_a_sparse_region() {
    // Repeated insertions around one hub: the repair region grows with the
    // hub's reach but the differential contract must keep holding.
    let graph = random_graph(40, 5, 7);
    let trace: Vec<Vec<sigma_simrank::EdgeUpdate>> = (0..3)
        .map(|round| {
            (0..3)
                .map(|i| sigma_simrank::EdgeUpdate::Insert(0, 3 + 3 * round + i))
                .collect()
        })
        .collect();
    let report = replay_differential(&graph, &trace, 5, 7);
    assert_eq!(report.rounds, 3);
    assert!(report.operator_rows_patched > 0);
}
