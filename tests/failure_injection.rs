//! Failure-injection tests: every user-facing entry point must reject
//! malformed input with a typed error (never a panic), and models must refuse
//! to run against a context that lacks the operators they need.

use sigma::{ContextBuilder, ModelHyperParams, ModelKind, SigmaError, TrainConfig, Trainer};
use sigma_datasets::{generate, DatasetPreset, GeneratorConfig, Split};
use sigma_graph::Graph;
use sigma_matrix::CsrMatrix;
use sigma_simrank::{DynamicSimRank, EdgeUpdate, SimRankConfig};

fn tiny_dataset() -> sigma_datasets::Dataset {
    generate(&GeneratorConfig::new(40, 4.0, 2, 6).with_homophily(0.3), 0).unwrap()
}

#[test]
fn graph_construction_rejects_out_of_bounds_edges() {
    let err = Graph::from_edges(3, &[(0, 9)]).unwrap_err();
    assert!(err.to_string().contains("out of bounds"));
}

#[test]
fn edge_list_parser_reports_line_numbers_not_panics() {
    let err = sigma_graph::read_edge_list("nodes 4\n0 1\nbroken line\n".as_bytes()).unwrap_err();
    let rendered = err.to_string();
    assert!(rendered.contains("line 3"), "unhelpful error: {rendered}");
}

#[test]
fn generator_rejects_degenerate_configurations() {
    assert!(generate(&GeneratorConfig::new(0, 4.0, 2, 4), 0).is_err());
    assert!(generate(&GeneratorConfig::new(20, 4.0, 0, 4), 0).is_err());
    assert!(generate(&GeneratorConfig::new(20, 4.0, 2, 4).with_homophily(1.7), 0).is_err());
}

#[test]
fn splits_reject_invalid_fractions() {
    let labels = vec![0usize, 1, 0, 1, 0, 1, 0, 1];
    assert!(Split::stratified(&labels, 0.9, 0.4, 0).is_err());
    assert!(Split::stratified(&labels, 0.0, 0.5, 0).is_err());
}

#[test]
fn models_requiring_missing_operators_fail_to_build() {
    // The context has no SimRank, PPR or 2-hop operator.
    let ctx = ContextBuilder::new(tiny_dataset()).build().unwrap();
    let hyper = ModelHyperParams::small();
    for kind in [
        ModelKind::Sigma,
        ModelKind::SigmaIterative(2),
        ModelKind::PprGo,
        ModelKind::MixHop,
        ModelKind::H2Gcn,
    ] {
        let err = match kind.build(&ctx, &hyper, 0) {
            Ok(_) => panic!("{} built without its required operator", kind.name()),
            Err(err) => err,
        };
        assert!(
            matches!(err, SigmaError::MissingOperator { .. }),
            "{} should report a missing operator, got {err}",
            kind.name()
        );
    }
    // Models that only need the adjacency still build fine.
    assert!(ModelKind::Gat.build(&ctx, &hyper, 0).is_ok());
    assert!(ModelKind::AcmGcn.build(&ctx, &hyper, 0).is_ok());
    assert!(ModelKind::Linkx.build(&ctx, &hyper, 0).is_ok());
}

#[test]
fn invalid_hyper_parameters_are_rejected_for_every_model() {
    let ctx = ContextBuilder::new(tiny_dataset())
        .with_simrank_topk(8)
        .build()
        .unwrap();
    let bad = ModelHyperParams::small().with_alpha(2.0);
    for kind in ModelKind::TABLE_V {
        assert!(
            kind.build(&ctx, &bad, 0).is_err(),
            "{} accepted alpha = 2.0",
            kind.name()
        );
    }
}

#[test]
fn mismatched_external_operator_is_rejected() {
    let err = ContextBuilder::new(tiny_dataset())
        .with_simrank_operator(CsrMatrix::identity(7))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("simrank_operator"));
}

#[test]
fn trainer_rejects_zero_epochs() {
    let data = tiny_dataset();
    let split = data.default_split(0).unwrap();
    let ctx = ContextBuilder::new(data)
        .with_simrank_topk(8)
        .build()
        .unwrap();
    let mut model = ModelKind::Sigma
        .build(&ctx, &ModelHyperParams::small(), 0)
        .unwrap();
    let trainer = Trainer::new(TrainConfig {
        epochs: 0,
        ..TrainConfig::default()
    });
    assert!(trainer.train(model.as_mut(), &ctx, &split, 0).is_err());
}

#[test]
fn dynamic_simrank_surfaces_bad_edits_and_configs() {
    let graph = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
    let mut maintainer =
        DynamicSimRank::new(graph, SimRankConfig::default().with_top_k(4), 3).unwrap();
    assert!(maintainer.apply(EdgeUpdate::Insert(0, 77)).is_err());
    assert!(maintainer.apply(EdgeUpdate::Delete(9, 0)).is_err());
    // Valid edits still work afterwards.
    maintainer.apply(EdgeUpdate::Insert(0, 5)).unwrap();
    assert!(maintainer.graph().has_edge(0, 5));
    assert!(DynamicSimRank::new(
        Graph::from_edges(2, &[(0, 1)]).unwrap(),
        SimRankConfig {
            decay: -0.3,
            epsilon: 0.1,
            top_k: None
        },
        1
    )
    .is_err());
}

#[test]
fn preset_scaling_never_produces_an_unusable_dataset() {
    // Even at aggressive down-scaling the presets stay trainable: non-empty
    // splits, consistent dimensions, finite features.
    for preset in [
        DatasetPreset::Texas,
        DatasetPreset::Pokec,
        DatasetPreset::SnapPatents,
    ] {
        let data = preset.build(0.05, 3).unwrap();
        assert!(data.num_nodes() >= data.num_classes * 4);
        assert!(data.features.is_finite());
        let split = data.default_split(3).unwrap();
        assert!(!split.train.is_empty());
        assert!(!split.test.is_empty());
        let ctx = ContextBuilder::new(data)
            .with_simrank_topk(4)
            .build()
            .unwrap();
        assert!(ctx.simrank().is_some());
    }
}

#[test]
fn corrupt_shard_snapshot_names_the_failing_shard_in_a_typed_error() {
    // A shard fleet where one mapping fails its deferred `verify()`: the
    // router must refuse to construct with `ServeError::Shard` naming the
    // bad shard's index — never a panic, never a silently smaller fleet.
    use sigma_serve::{EngineConfig, MappedSnapshot, ServeError, ShardRouter, SnapshotError};
    use sigma_testutil::{random_graph, serving_fixture};
    use std::sync::Arc;

    let fixture = serving_fixture(&random_graph(24, 8, 99), 5, 99);
    let mut image = Vec::new();
    fixture.snapshot.write_to(&mut image).unwrap();

    // Flip one byte inside the FEAT payload. The v2 layout is fixed: a
    // 16-byte prelude, then 32-byte table entries of
    // `tag[8] offset[8] len[8] crc[4] pad[4]`.
    let count = u32::from_le_bytes(image[12..16].try_into().unwrap()) as usize;
    let feat_offset = (0..count)
        .map(|i| 16 + i * 32)
        .find(|&p| &image[p..p + 8] == b"FEAT    ")
        .map(|p| u64::from_le_bytes(image[p + 8..p + 16].try_into().unwrap()) as usize)
        .expect("snapshot has a FEAT section");
    let mut corrupt = image.clone();
    corrupt[feat_offset + 3] ^= 0x40;

    let config = EngineConfig {
        cache_capacity: 24,
        workers: 0,
        max_chunk: 64,
    };
    for bad_shard in [0usize, 2] {
        let snapshots: Vec<Arc<MappedSnapshot>> = (0..4)
            .map(|shard| {
                let bytes: &[u8] = if shard == bad_shard { &corrupt } else { &image };
                // Open only runs the O(#sections) header pass, so the
                // corruption stays latent until the router verifies.
                Arc::new(MappedSnapshot::from_bytes(bytes).expect("payload damage opens fine"))
            })
            .collect();
        let err = ShardRouter::from_mapped(snapshots, config).unwrap_err();
        let rendered = err.to_string();
        match err {
            ServeError::Shard { shard, source } => {
                assert_eq!(shard, bad_shard, "error must name the corrupt shard");
                assert!(
                    matches!(
                        *source,
                        ServeError::Snapshot(SnapshotError::ChecksumMismatch { ref tag })
                            if tag == "FEAT"
                    ),
                    "expected a FEAT checksum failure, got {source}"
                );
            }
            other => panic!("expected ServeError::Shard, got {other}"),
        }
        assert!(
            rendered.contains(&format!("shard {bad_shard}")),
            "display must name the shard: {rendered}"
        );
        assert!(
            rendered.contains("checksum"),
            "display keeps the cause: {rendered}"
        );
    }

    // A clean fleet from the same image constructs fine.
    let snapshots: Vec<Arc<MappedSnapshot>> = (0..4)
        .map(|_| Arc::new(MappedSnapshot::from_bytes(&image).unwrap()))
        .collect();
    assert!(ShardRouter::from_mapped(snapshots, config).is_ok());
}
