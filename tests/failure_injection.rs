//! Failure-injection tests: every user-facing entry point must reject
//! malformed input with a typed error (never a panic), and models must refuse
//! to run against a context that lacks the operators they need.

use sigma::{ContextBuilder, ModelHyperParams, ModelKind, SigmaError, TrainConfig, Trainer};
use sigma_datasets::{generate, DatasetPreset, GeneratorConfig, Split};
use sigma_graph::Graph;
use sigma_matrix::CsrMatrix;
use sigma_simrank::{DynamicSimRank, EdgeUpdate, SimRankConfig};

fn tiny_dataset() -> sigma_datasets::Dataset {
    generate(&GeneratorConfig::new(40, 4.0, 2, 6).with_homophily(0.3), 0).unwrap()
}

#[test]
fn graph_construction_rejects_out_of_bounds_edges() {
    let err = Graph::from_edges(3, &[(0, 9)]).unwrap_err();
    assert!(err.to_string().contains("out of bounds"));
}

#[test]
fn edge_list_parser_reports_line_numbers_not_panics() {
    let err = sigma_graph::read_edge_list("nodes 4\n0 1\nbroken line\n".as_bytes()).unwrap_err();
    let rendered = err.to_string();
    assert!(rendered.contains("line 3"), "unhelpful error: {rendered}");
}

#[test]
fn generator_rejects_degenerate_configurations() {
    assert!(generate(&GeneratorConfig::new(0, 4.0, 2, 4), 0).is_err());
    assert!(generate(&GeneratorConfig::new(20, 4.0, 0, 4), 0).is_err());
    assert!(generate(&GeneratorConfig::new(20, 4.0, 2, 4).with_homophily(1.7), 0).is_err());
}

#[test]
fn splits_reject_invalid_fractions() {
    let labels = vec![0usize, 1, 0, 1, 0, 1, 0, 1];
    assert!(Split::stratified(&labels, 0.9, 0.4, 0).is_err());
    assert!(Split::stratified(&labels, 0.0, 0.5, 0).is_err());
}

#[test]
fn models_requiring_missing_operators_fail_to_build() {
    // The context has no SimRank, PPR or 2-hop operator.
    let ctx = ContextBuilder::new(tiny_dataset()).build().unwrap();
    let hyper = ModelHyperParams::small();
    for kind in [
        ModelKind::Sigma,
        ModelKind::SigmaIterative(2),
        ModelKind::PprGo,
        ModelKind::MixHop,
        ModelKind::H2Gcn,
    ] {
        let err = match kind.build(&ctx, &hyper, 0) {
            Ok(_) => panic!("{} built without its required operator", kind.name()),
            Err(err) => err,
        };
        assert!(
            matches!(err, SigmaError::MissingOperator { .. }),
            "{} should report a missing operator, got {err}",
            kind.name()
        );
    }
    // Models that only need the adjacency still build fine.
    assert!(ModelKind::Gat.build(&ctx, &hyper, 0).is_ok());
    assert!(ModelKind::AcmGcn.build(&ctx, &hyper, 0).is_ok());
    assert!(ModelKind::Linkx.build(&ctx, &hyper, 0).is_ok());
}

#[test]
fn invalid_hyper_parameters_are_rejected_for_every_model() {
    let ctx = ContextBuilder::new(tiny_dataset())
        .with_simrank_topk(8)
        .build()
        .unwrap();
    let bad = ModelHyperParams::small().with_alpha(2.0);
    for kind in ModelKind::TABLE_V {
        assert!(
            kind.build(&ctx, &bad, 0).is_err(),
            "{} accepted alpha = 2.0",
            kind.name()
        );
    }
}

#[test]
fn mismatched_external_operator_is_rejected() {
    let err = ContextBuilder::new(tiny_dataset())
        .with_simrank_operator(CsrMatrix::identity(7))
        .build()
        .unwrap_err();
    assert!(err.to_string().contains("simrank_operator"));
}

#[test]
fn trainer_rejects_zero_epochs() {
    let data = tiny_dataset();
    let split = data.default_split(0).unwrap();
    let ctx = ContextBuilder::new(data)
        .with_simrank_topk(8)
        .build()
        .unwrap();
    let mut model = ModelKind::Sigma
        .build(&ctx, &ModelHyperParams::small(), 0)
        .unwrap();
    let trainer = Trainer::new(TrainConfig {
        epochs: 0,
        ..TrainConfig::default()
    });
    assert!(trainer.train(model.as_mut(), &ctx, &split, 0).is_err());
}

#[test]
fn dynamic_simrank_surfaces_bad_edits_and_configs() {
    let graph = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]).unwrap();
    let mut maintainer =
        DynamicSimRank::new(graph, SimRankConfig::default().with_top_k(4), 3).unwrap();
    assert!(maintainer.apply(EdgeUpdate::Insert(0, 77)).is_err());
    assert!(maintainer.apply(EdgeUpdate::Delete(9, 0)).is_err());
    // Valid edits still work afterwards.
    maintainer.apply(EdgeUpdate::Insert(0, 5)).unwrap();
    assert!(maintainer.graph().has_edge(0, 5));
    assert!(DynamicSimRank::new(
        Graph::from_edges(2, &[(0, 1)]).unwrap(),
        SimRankConfig {
            decay: -0.3,
            epsilon: 0.1,
            top_k: None
        },
        1
    )
    .is_err());
}

#[test]
fn preset_scaling_never_produces_an_unusable_dataset() {
    // Even at aggressive down-scaling the presets stay trainable: non-empty
    // splits, consistent dimensions, finite features.
    for preset in [
        DatasetPreset::Texas,
        DatasetPreset::Pokec,
        DatasetPreset::SnapPatents,
    ] {
        let data = preset.build(0.05, 3).unwrap();
        assert!(data.num_nodes() >= data.num_classes * 4);
        assert!(data.features.is_finite());
        let split = data.default_split(3).unwrap();
        assert!(!split.train.is_empty());
        assert!(!split.test.is_empty());
        let ctx = ContextBuilder::new(data)
            .with_simrank_topk(4)
            .build()
            .unwrap();
        assert!(ctx.simrank().is_some());
    }
}
