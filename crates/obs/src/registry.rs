//! The process-wide metric registry and its exporters.
//!
//! Metrics register themselves here (statics lazily on first touch,
//! per-engine metrics at construction via `Arc`/`Weak`), and exporters pull
//! one coherent [`MetricsSnapshot`] out: Prometheus-style text exposition
//! ([`MetricsSnapshot::to_prometheus`]) or JSON
//! ([`MetricsSnapshot::to_json`]). Registration is cold-path (a mutex push);
//! the hot path only ever touches the metric's own atomics.
//!
//! Several sources may register under the same name (e.g. two engines both
//! exporting `sigma_serve_nodes_served_total`); a snapshot merges them —
//! counters and gauges by sum, histograms by their associative bucket-wise
//! merge — so the exposition is one time series per name. Per-`Arc` sources
//! are held as `Weak` and pruned once the owner drops.

use crate::histogram::{Histogram, HistogramSnapshot};
use crate::{Counter, Gauge};
use std::collections::BTreeMap;
use std::sync::{Mutex, Weak};

enum Slot {
    StaticCounter(&'static Counter),
    StaticGauge(&'static Gauge),
    StaticHistogram(&'static Histogram),
    ArcCounter(Weak<Counter>),
    ArcGauge(Weak<Gauge>),
    ArcHistogram(Weak<Histogram>),
}

impl Slot {
    /// `None` when the owning `Arc` has been dropped.
    fn read(&self) -> Option<MetricValue> {
        match self {
            Slot::StaticCounter(c) => Some(MetricValue::Counter(c.get())),
            Slot::StaticGauge(g) => Some(MetricValue::Gauge(g.get())),
            Slot::StaticHistogram(h) => Some(MetricValue::Histogram(h.snapshot())),
            Slot::ArcCounter(w) => w.upgrade().map(|c| MetricValue::Counter(c.get())),
            Slot::ArcGauge(w) => w.upgrade().map(|g| MetricValue::Gauge(g.get())),
            Slot::ArcHistogram(w) => w.upgrade().map(|h| MetricValue::Histogram(h.snapshot())),
        }
    }

    fn is_dead(&self) -> bool {
        match self {
            Slot::ArcCounter(w) => w.strong_count() == 0,
            Slot::ArcGauge(w) => w.strong_count() == 0,
            Slot::ArcHistogram(w) => w.strong_count() == 0,
            _ => false,
        }
    }
}

struct Entry {
    name: &'static str,
    /// Optional Prometheus-style label set (e.g. `worker="3"`), rendered as
    /// `name{label}` in both exporters.
    label: Option<String>,
    help: &'static str,
    slot: Slot,
}

/// A registry of metric sources. Use [`Registry::global`] everywhere except
/// tests that need isolation.
#[derive(Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

static GLOBAL: Registry = Registry::new();

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Self {
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The process-wide registry all instrumentation registers into.
    pub fn global() -> &'static Registry {
        &GLOBAL
    }

    fn push(&self, name: &'static str, label: Option<String>, help: &'static str, slot: Slot) {
        self.entries
            .lock()
            .expect("metric registry poisoned")
            .push(Entry {
                name,
                label,
                help,
                slot,
            });
    }

    /// Registers a `static` counter.
    pub fn register_counter(&self, name: &'static str, help: &'static str, c: &'static Counter) {
        self.push(name, None, help, Slot::StaticCounter(c));
    }

    /// Registers a `static` counter with a label set (`key="value"` text).
    pub fn register_counter_labeled(
        &self,
        name: &'static str,
        label: String,
        help: &'static str,
        c: &'static Counter,
    ) {
        self.push(name, Some(label), help, Slot::StaticCounter(c));
    }

    /// Registers a `static` gauge.
    pub fn register_gauge(&self, name: &'static str, help: &'static str, g: &'static Gauge) {
        self.push(name, None, help, Slot::StaticGauge(g));
    }

    /// Registers a `static` histogram.
    pub fn register_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        h: &'static Histogram,
    ) {
        self.push(name, None, help, Slot::StaticHistogram(h));
    }

    /// Registers a shared counter; the registry holds a `Weak` and the entry
    /// disappears from snapshots once the last owner drops.
    pub fn register_arc_counter(
        &self,
        name: &'static str,
        help: &'static str,
        c: &std::sync::Arc<Counter>,
    ) {
        self.push(
            name,
            None,
            help,
            Slot::ArcCounter(std::sync::Arc::downgrade(c)),
        );
    }

    /// Registers a shared gauge (see [`Registry::register_arc_counter`]).
    pub fn register_arc_gauge(
        &self,
        name: &'static str,
        help: &'static str,
        g: &std::sync::Arc<Gauge>,
    ) {
        self.push(
            name,
            None,
            help,
            Slot::ArcGauge(std::sync::Arc::downgrade(g)),
        );
    }

    /// Registers a shared histogram (see [`Registry::register_arc_counter`]).
    pub fn register_arc_histogram(
        &self,
        name: &'static str,
        help: &'static str,
        h: &std::sync::Arc<Histogram>,
    ) {
        self.push(
            name,
            None,
            help,
            Slot::ArcHistogram(std::sync::Arc::downgrade(h)),
        );
    }

    /// Reads every live source into one merged snapshot and prunes sources
    /// whose owners have dropped.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut entries = self.entries.lock().expect("metric registry poisoned");
        entries.retain(|e| !e.slot.is_dead());
        let mut merged: BTreeMap<(&'static str, Option<String>), (&'static str, MetricValue)> =
            BTreeMap::new();
        for entry in entries.iter() {
            let Some(value) = entry.slot.read() else {
                continue;
            };
            let key = (entry.name, entry.label.clone());
            match merged.get_mut(&key) {
                None => {
                    merged.insert(key, (entry.help, value));
                }
                Some((_, existing)) => existing.merge(value),
            }
        }
        drop(entries);
        MetricsSnapshot {
            entries: merged
                .into_iter()
                .map(|((name, label), (help, value))| SnapshotEntry {
                    name: name.to_string(),
                    label,
                    help,
                    value,
                })
                .collect(),
        }
    }
}

/// One exported value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotone counter.
    Counter(u64),
    /// Signed instantaneous value.
    Gauge(i64),
    /// Log-scale sample distribution.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// Merges a same-name source into this one: counters and gauges add,
    /// histograms merge bucket-wise. Mismatched kinds keep the first value
    /// (cannot happen unless a name is registered under two kinds).
    fn merge(&mut self, other: MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => *a = a.merged(&b),
            _ => {}
        }
    }
}

/// One named metric inside a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotEntry {
    /// Metric name (Prometheus-style `snake_case`, `_total` for counters).
    pub name: String,
    /// Optional label text (`key="value"`), rendered as `name{label}`.
    pub label: Option<String>,
    /// One-line human description.
    pub help: &'static str,
    /// The merged value.
    pub value: MetricValue,
}

impl SnapshotEntry {
    fn full_name(&self) -> String {
        match &self.label {
            Some(label) => format!("{}{{{}}}", self.name, label),
            None => self.name.clone(),
        }
    }
}

/// A coherent point-in-time copy of every registered metric, sorted by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// The exported metrics, sorted by `(name, label)`.
    pub entries: Vec<SnapshotEntry>,
}

impl MetricsSnapshot {
    /// Looks a metric up by bare name (first label if several).
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.entries
            .iter()
            .find(|e| e.name == name)
            .map(|e| &e.value)
    }

    /// Convenience: the value of a counter metric, 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        match self.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Number of exported metrics.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Prometheus text exposition (histograms as `summary`-style quantiles).
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_header: Option<&str> = None;
        for entry in &self.entries {
            if last_header != Some(entry.name.as_str()) {
                let kind = match entry.value {
                    MetricValue::Counter(_) => "counter",
                    MetricValue::Gauge(_) => "gauge",
                    MetricValue::Histogram(_) => "summary",
                };
                out.push_str(&format!("# HELP {} {}\n", entry.name, entry.help));
                out.push_str(&format!("# TYPE {} {}\n", entry.name, kind));
                last_header = Some(entry.name.as_str());
            }
            match &entry.value {
                MetricValue::Counter(v) => out.push_str(&format!("{} {v}\n", entry.full_name())),
                MetricValue::Gauge(v) => out.push_str(&format!("{} {v}\n", entry.full_name())),
                MetricValue::Histogram(h) => {
                    for (q, label) in [(0.5, "0.5"), (0.95, "0.95"), (0.99, "0.99")] {
                        out.push_str(&format!(
                            "{}{{quantile=\"{label}\"}} {}\n",
                            entry.name,
                            h.quantile(q)
                        ));
                    }
                    out.push_str(&format!("{}_sum {}\n", entry.name, h.sum));
                    out.push_str(&format!("{}_count {}\n", entry.name, h.count));
                }
            }
        }
        out
    }

    /// JSON object grouping metrics by kind; histograms export count, sum,
    /// mean and the p50/p95/p99 bucket upper bounds (not raw buckets).
    pub fn to_json(&self) -> String {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut histograms = Vec::new();
        for entry in &self.entries {
            let name = entry.full_name().replace('"', "'");
            match &entry.value {
                MetricValue::Counter(v) => counters.push(format!("    \"{name}\": {v}")),
                MetricValue::Gauge(v) => gauges.push(format!("    \"{name}\": {v}")),
                MetricValue::Histogram(h) => histograms.push(format!(
                    "    \"{name}\": {{\"count\": {}, \"sum\": {}, \"mean\": {:.3}, \
                     \"p50\": {}, \"p95\": {}, \"p99\": {}}}",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.quantile(0.5),
                    h.quantile(0.95),
                    h.quantile(0.99),
                )),
            }
        }
        format!(
            "{{\n  \"counters\": {{\n{}\n  }},\n  \"gauges\": {{\n{}\n  }},\n  \
             \"histograms\": {{\n{}\n  }}\n}}\n",
            counters.join(",\n"),
            gauges.join(",\n"),
            histograms.join(",\n")
        )
    }
}
