//! Zero-cost-when-disabled static metric declarations.
//!
//! Instrumented crates declare their metrics as `static`s:
//!
//! ```
//! use sigma_obs::StaticCounter;
//! static SPMM_CALLS: StaticCounter =
//!     StaticCounter::new("sigma_spmm_calls_total", "spmm kernel invocations");
//! SPMM_CALLS.inc();
//! ```
//!
//! With the `obs` feature on, the first touch registers the metric with
//! [`crate::Registry::global`] (a `Once` fast path — one atomic load — plus
//! the metric's own relaxed atomic op). With the feature off every type
//! here is a ZST whose methods are empty `#[inline(always)]` bodies: the
//! instrumentation compiles away entirely, which is what keeps the hot
//! kernels free of registry code in `--no-default-features` builds.

#[cfg(feature = "obs")]
mod enabled {
    use crate::registry::Registry;
    use crate::{Counter, Gauge, Histogram};
    use std::sync::Once;

    /// A lazily-registered monotone counter living in a `static`.
    pub struct StaticCounter {
        name: &'static str,
        help: &'static str,
        inner: Counter,
        registered: Once,
    }

    impl StaticCounter {
        /// Declares a counter under a Prometheus-style name.
        pub const fn new(name: &'static str, help: &'static str) -> Self {
            Self {
                name,
                help,
                inner: Counter::new(),
                registered: Once::new(),
            }
        }

        #[inline]
        fn ensure_registered(&'static self) {
            self.registered.call_once(|| {
                Registry::global().register_counter(self.name, self.help, &self.inner);
            });
        }

        /// Adds 1.
        #[inline]
        pub fn inc(&'static self) {
            self.add(1);
        }

        /// Adds `n`.
        #[inline]
        pub fn add(&'static self, n: u64) {
            self.ensure_registered();
            self.inner.add(n);
        }

        /// Current value.
        pub fn get(&'static self) -> u64 {
            self.inner.get()
        }
    }

    /// A lazily-registered gauge living in a `static`.
    pub struct StaticGauge {
        name: &'static str,
        help: &'static str,
        inner: Gauge,
        registered: Once,
    }

    impl StaticGauge {
        /// Declares a gauge under a Prometheus-style name.
        pub const fn new(name: &'static str, help: &'static str) -> Self {
            Self {
                name,
                help,
                inner: Gauge::new(),
                registered: Once::new(),
            }
        }

        #[inline]
        fn ensure_registered(&'static self) {
            self.registered.call_once(|| {
                Registry::global().register_gauge(self.name, self.help, &self.inner);
            });
        }

        /// Adds `n` (may be negative).
        #[inline]
        pub fn add(&'static self, n: i64) {
            self.ensure_registered();
            self.inner.add(n);
        }

        /// Subtracts `n`.
        #[inline]
        pub fn sub(&'static self, n: i64) {
            self.add(-n);
        }

        /// Current value.
        pub fn get(&'static self) -> i64 {
            self.inner.get()
        }
    }

    /// A lazily-registered log-scale histogram living in a `static`.
    pub struct StaticHistogram {
        name: &'static str,
        help: &'static str,
        inner: Histogram,
        registered: Once,
    }

    impl StaticHistogram {
        /// Declares a histogram under a Prometheus-style name.
        pub const fn new(name: &'static str, help: &'static str) -> Self {
            Self {
                name,
                help,
                inner: Histogram::new(),
                registered: Once::new(),
            }
        }

        /// Records one sample.
        #[inline]
        pub fn record(&'static self, value: u64) {
            self.registered.call_once(|| {
                Registry::global().register_histogram(self.name, self.help, &self.inner);
            });
            self.inner.record(value);
        }

        /// Samples recorded so far.
        pub fn count(&'static self) -> u64 {
            self.inner.count()
        }
    }

    /// A fixed-size family of counters distinguished by an integer label
    /// (e.g. per-worker busy time: `sigma_pool_worker_busy_ns{worker="3"}`).
    /// Slots beyond `N - 1` fold into the last slot.
    pub struct StaticCounterFamily<const N: usize> {
        name: &'static str,
        label_key: &'static str,
        help: &'static str,
        slots: [Counter; N],
        registered: [Once; N],
    }

    impl<const N: usize> StaticCounterFamily<N> {
        /// Declares a counter family; each touched slot registers as
        /// `name{label_key="<slot>"}`.
        pub const fn new(name: &'static str, label_key: &'static str, help: &'static str) -> Self {
            #[allow(clippy::declare_interior_mutable_const)]
            const ZERO: Counter = Counter::new();
            #[allow(clippy::declare_interior_mutable_const)]
            const ONCE: Once = Once::new();
            Self {
                name,
                label_key,
                help,
                slots: [ZERO; N],
                registered: [ONCE; N],
            }
        }

        /// Adds `n` to `slot` (clamped to the last slot).
        #[inline]
        pub fn add(&'static self, slot: usize, n: u64) {
            let slot = slot.min(N - 1);
            self.registered[slot].call_once(|| {
                Registry::global().register_counter_labeled(
                    self.name,
                    format!("{}=\"{slot}\"", self.label_key),
                    self.help,
                    &self.slots[slot],
                );
            });
            self.slots[slot].add(n);
        }

        /// Current value of `slot` (clamped to the last slot).
        pub fn get(&'static self, slot: usize) -> u64 {
            self.slots[slot.min(N - 1)].get()
        }
    }
}

#[cfg(feature = "obs")]
pub use enabled::{StaticCounter, StaticCounterFamily, StaticGauge, StaticHistogram};

#[cfg(not(feature = "obs"))]
mod disabled {
    /// No-op counter (`obs` feature disabled).
    pub struct StaticCounter;

    impl StaticCounter {
        /// No-op.
        pub const fn new(_name: &'static str, _help: &'static str) -> Self {
            Self
        }

        /// No-op.
        #[inline(always)]
        pub fn inc(&self) {}

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> u64 {
            0
        }
    }

    /// No-op gauge (`obs` feature disabled).
    pub struct StaticGauge;

    impl StaticGauge {
        /// No-op.
        pub const fn new(_name: &'static str, _help: &'static str) -> Self {
            Self
        }

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _n: i64) {}

        /// No-op.
        #[inline(always)]
        pub fn sub(&self, _n: i64) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self) -> i64 {
            0
        }
    }

    /// No-op histogram (`obs` feature disabled).
    pub struct StaticHistogram;

    impl StaticHistogram {
        /// No-op.
        pub const fn new(_name: &'static str, _help: &'static str) -> Self {
            Self
        }

        /// No-op.
        #[inline(always)]
        pub fn record(&self, _value: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn count(&self) -> u64 {
            0
        }
    }

    /// No-op counter family (`obs` feature disabled).
    pub struct StaticCounterFamily<const N: usize>;

    impl<const N: usize> StaticCounterFamily<N> {
        /// No-op.
        pub const fn new(
            _name: &'static str,
            _label_key: &'static str,
            _help: &'static str,
        ) -> Self {
            Self
        }

        /// No-op.
        #[inline(always)]
        pub fn add(&self, _slot: usize, _n: u64) {}

        /// Always 0.
        #[inline(always)]
        pub fn get(&self, _slot: usize) -> u64 {
            0
        }
    }
}

#[cfg(not(feature = "obs"))]
pub use disabled::{StaticCounter, StaticCounterFamily, StaticGauge, StaticHistogram};
