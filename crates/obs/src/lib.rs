//! # sigma-obs
//!
//! The observability layer of the SIGMA reproduction: a lock-free metrics
//! registry (monotone [`Counter`]s, [`Gauge`]s, and fixed-bucket log-scale
//! [`Histogram`]s with p50/p95/p99 derivation and associative merge), a
//! lightweight [`span!`] tracing API backed by bounded per-thread ring
//! buffers, and two exporters — Prometheus-style text exposition
//! ([`prometheus_text`]) and a JSON snapshot
//! ([`MetricsSnapshot::to_json`]).
//!
//! ## Two layers
//!
//! * **Primitives** ([`Counter`], [`Gauge`], [`Histogram`],
//!   [`HistogramSnapshot`], [`Registry`]) are always compiled: plain atomic
//!   data structures for code that *owns* its metrics as part of its API —
//!   the serving engine's `EngineStats` counters, a bench's latency
//!   histogram. They carry no global state of their own.
//! * **Instrumentation** ([`StaticCounter`] & friends, [`span!`],
//!   [`Stopwatch`]) is gated behind the `obs` feature (on by default).
//!   When enabled, statics lazily register with the global [`Registry`] on
//!   first touch and spans record into per-thread ring buffers. When
//!   disabled everything is a no-op ZST — zero registry or ring-buffer code
//!   in the hot kernels, proven determinism-neutral by running the parity
//!   suites in both modes.
//!
//! ## Determinism
//!
//! Instrumentation only ever reads the clock and bumps atomics; it never
//! branches kernel control flow, allocates into kernel data structures, or
//! orders work. Numeric results are bit-identical with `obs` on, off, and
//! at every thread count.

#![deny(missing_docs)]

mod histogram;
mod registry;
mod span;
mod statics;

pub use histogram::{
    bucket_high, bucket_index, bucket_low, Histogram, HistogramSnapshot, NUM_BUCKETS, SUB_BUCKETS,
};
pub use registry::{MetricValue, MetricsSnapshot, Registry, SnapshotEntry};
pub use span::{flush_thread_spans, recent_spans, take_panic_span, SpanGuard, SpanRecord};
pub use statics::{StaticCounter, StaticCounterFamily, StaticGauge, StaticHistogram};

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Whether the instrumentation layer is compiled in. Callers gate optional
/// clock reads with `if sigma_obs::ENABLED { ... }` — a `const`, so the
/// disabled branch folds away entirely.
pub const ENABLED: bool = cfg!(feature = "obs");

/// A monotone counter: relaxed atomic adds, lock-free from any thread.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A zeroed counter (`const`, so it can live in a `static`).
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous value (queue depths, in-flight counts).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A zeroed gauge (`const`, so it can live in a `static`).
    pub const fn new() -> Self {
        Self(AtomicI64::new(0))
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtracts `n`.
    #[inline]
    pub fn sub(&self, n: i64) {
        self.add(-n);
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, n: i64) {
        self.0.store(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Nanoseconds since an arbitrary process-start anchor (monotone, never
/// wraps in practice). All span timestamps share this anchor.
pub fn monotonic_ns() -> u64 {
    static ANCHOR: OnceLock<Instant> = OnceLock::new();
    ANCHOR.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A start/stop timer for feeding latency histograms. With the `obs`
/// feature disabled, [`Stopwatch::start`] does not read the clock and
/// [`Stopwatch::elapsed_ns`] returns 0 — callers gate the `record` on
/// [`ENABLED`] so disabled builds skip the clock entirely.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    #[cfg(feature = "obs")]
    start_ns: u64,
}

impl Stopwatch {
    /// Starts timing (a no-op without the `obs` feature).
    #[inline]
    pub fn start() -> Self {
        Self {
            #[cfg(feature = "obs")]
            start_ns: monotonic_ns(),
        }
    }

    /// Nanoseconds since [`Stopwatch::start`] (0 without `obs`).
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "obs")]
        {
            monotonic_ns().saturating_sub(self.start_ns)
        }
        #[cfg(not(feature = "obs"))]
        {
            0
        }
    }
}

/// A coherent snapshot of every registered metric plus the per-name span
/// duration histograms (`sigma_span_<name>_duration_ns`). Call
/// [`flush_thread_spans`] first if this thread recorded spans that must be
/// visible.
pub fn snapshot() -> MetricsSnapshot {
    #[allow(unused_mut)]
    let mut snap = Registry::global().snapshot();
    #[cfg(feature = "obs")]
    {
        snap.entries.extend(span::span_snapshot_entries());
        snap.entries
            .sort_by(|a, b| (&a.name, &a.label).cmp(&(&b.name, &b.label)));
    }
    snap
}

/// Prometheus text exposition of [`snapshot`] — what a `/metrics` endpoint
/// would serve.
pub fn prometheus_text() -> String {
    snapshot().to_prometheus()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.add(3);
        g.sub(5);
        assert_eq!(g.get(), -2);
        g.set(7);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn registry_merges_same_name_sources() {
        let registry = Registry::new();
        let a = std::sync::Arc::new(Counter::new());
        let b = std::sync::Arc::new(Counter::new());
        registry.register_arc_counter("obs_test_merged_total", "test", &a);
        registry.register_arc_counter("obs_test_merged_total", "test", &b);
        a.add(2);
        b.add(3);
        assert_eq!(registry.snapshot().counter("obs_test_merged_total"), 5);
        // Dropping one owner prunes its contribution.
        drop(b);
        assert_eq!(registry.snapshot().counter("obs_test_merged_total"), 2);
    }

    #[test]
    fn exporters_render_counters_and_histograms() {
        let registry = Registry::new();
        let c = std::sync::Arc::new(Counter::new());
        let h = std::sync::Arc::new(Histogram::new());
        registry.register_arc_counter("obs_test_export_total", "a counter", &c);
        registry.register_arc_histogram("obs_test_export_ns", "a histogram", &h);
        c.add(9);
        for v in [10u64, 20, 30] {
            h.record(v);
        }
        let snap = registry.snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("# TYPE obs_test_export_total counter"));
        assert!(text.contains("obs_test_export_total 9"));
        assert!(text.contains("# TYPE obs_test_export_ns summary"));
        assert!(text.contains("obs_test_export_ns_count 3"));
        assert!(text.contains("quantile=\"0.5\""));
        let json = snap.to_json();
        assert!(json.contains("\"obs_test_export_total\": 9"));
        assert!(json.contains("\"count\": 3"));
    }

    #[cfg(feature = "obs")]
    #[test]
    fn statics_register_on_first_touch() {
        static TOUCHED: StaticCounter =
            StaticCounter::new("obs_test_static_touch_total", "lazily registered");
        static UNTOUCHED: StaticCounter =
            StaticCounter::new("obs_test_static_untouched_total", "never registered");
        let _ = &UNTOUCHED;
        assert!(snapshot().get("obs_test_static_touch_total").is_none());
        TOUCHED.add(11);
        assert_eq!(snapshot().counter("obs_test_static_touch_total"), 11);
        assert!(snapshot().get("obs_test_static_untouched_total").is_none());
    }

    #[cfg(feature = "obs")]
    #[test]
    fn counter_family_labels_slots() {
        static FAMILY: StaticCounterFamily<4> =
            StaticCounterFamily::new("obs_test_family_total", "slot", "per-slot test counter");
        FAMILY.add(1, 5);
        FAMILY.add(9, 2); // clamps into slot 3
        assert_eq!(FAMILY.get(1), 5);
        assert_eq!(FAMILY.get(3), 2);
        let snap = snapshot();
        let labels: Vec<_> = snap
            .entries
            .iter()
            .filter(|e| e.name == "obs_test_family_total")
            .map(|e| e.label.clone().unwrap_or_default())
            .collect();
        assert_eq!(labels, vec!["slot=\"1\"", "slot=\"3\""]);
    }

    #[cfg(feature = "obs")]
    #[test]
    fn spans_record_and_flush() {
        {
            let _span = span!("obs_test_region", 42);
            std::hint::black_box(17 * 3);
        }
        flush_thread_spans();
        let spans = recent_spans();
        assert!(spans
            .iter()
            .any(|s| s.name == "obs_test_region" && s.value == 42));
        let snap = snapshot();
        match snap.get("sigma_span_obs_test_region_duration_ns") {
            Some(MetricValue::Histogram(h)) => assert!(h.count >= 1),
            other => panic!("span histogram missing: {other:?}"),
        }
    }

    #[cfg(feature = "obs")]
    #[test]
    fn panic_span_attributes_innermost() {
        let result = std::panic::catch_unwind(|| {
            let _outer = span!("obs_test_outer");
            let _inner = span!("obs_test_inner");
            panic!("boom");
        });
        assert!(result.is_err());
        assert_eq!(take_panic_span(), Some("obs_test_inner"));
        assert_eq!(take_panic_span(), None, "slot is cleared by take");
    }

    #[cfg(not(feature = "obs"))]
    #[test]
    fn disabled_build_is_inert() {
        assert!(!ENABLED);
        static C: StaticCounter = StaticCounter::new("obs_test_disabled_total", "no-op");
        C.add(5);
        assert_eq!(C.get(), 0);
        // The macro must not evaluate its arguments.
        let _span = span!("never", {
            unreachable!("span! arguments must not run when obs is off")
        });
        assert_eq!(take_panic_span(), None);
        let sw = Stopwatch::start();
        assert_eq!(sw.elapsed_ns(), 0);
    }
}
