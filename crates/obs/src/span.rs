//! The lightweight span API: `span!("spmm", rows)` marks a timed region.
//!
//! A span is an RAII guard holding enter/exit timestamps (nanoseconds since
//! process start, see [`crate::monotonic_ns`]) plus an optional magnitude
//! (`rows`, `nnz`, batch size). On exit the record lands in a **bounded
//! per-thread ring buffer** — no locks, no allocation on the steady state —
//! which is drained into the process-wide recorder when it fills, when the
//! thread exits, or on an explicit [`flush_thread_spans`]. The recorder
//! keeps the most recent records (bounded) and per-name duration
//! histograms, which [`crate::snapshot`] folds into the exported metrics as
//! `sigma_span_<name>_duration_ns`.
//!
//! Panic attribution: when a thread unwinds through a span guard, the
//! innermost span's name is parked in a thread-local slot that
//! [`take_panic_span`] collects — the thread-pool uses this to attach "in
//! span 'spmm'" to a re-raised task panic.
//!
//! With the `obs` feature disabled every type here is a no-op ZST and the
//! `span!` macro expands to a unit guard without evaluating its arguments.

#[cfg(feature = "obs")]
mod enabled {
    use crate::histogram::HistogramSnapshot;
    use crate::monotonic_ns;
    use crate::registry::{MetricValue, SnapshotEntry};
    use std::cell::{Cell, RefCell};
    use std::collections::{BTreeMap, VecDeque};
    use std::sync::Mutex;

    /// Capacity of the per-thread ring buffer; a full ring drains to the
    /// recorder, so records are batched, never dropped.
    pub const RING_CAPACITY: usize = 256;

    /// Most recent span records retained by the process-wide recorder
    /// (older records age out; per-name histograms keep the full history).
    pub const RECENT_CAPACITY: usize = 4096;

    /// One completed span.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SpanRecord {
        /// Static span name (the first `span!` argument).
        pub name: &'static str,
        /// Enter timestamp, ns since process start.
        pub start_ns: u64,
        /// Exit − enter, ns.
        pub duration_ns: u64,
        /// The optional magnitude argument (0 when omitted).
        pub value: u64,
    }

    struct RecorderInner {
        recent: VecDeque<SpanRecord>,
        by_name: BTreeMap<&'static str, HistogramSnapshot>,
    }

    static RECORDER: Mutex<Option<RecorderInner>> = Mutex::new(None);

    fn drain_into_recorder(records: &mut Vec<SpanRecord>) {
        if records.is_empty() {
            return;
        }
        let mut guard = RECORDER.lock().expect("span recorder poisoned");
        let inner = guard.get_or_insert_with(|| RecorderInner {
            recent: VecDeque::with_capacity(RECENT_CAPACITY),
            by_name: BTreeMap::new(),
        });
        for record in records.drain(..) {
            if inner.recent.len() == RECENT_CAPACITY {
                inner.recent.pop_front();
            }
            inner.recent.push_back(record);
            inner
                .by_name
                .entry(record.name)
                .or_insert_with(HistogramSnapshot::empty)
                .record(record.duration_ns);
        }
    }

    /// Ring wrapper whose drop drains pending records (thread exit).
    struct Ring(Vec<SpanRecord>);

    impl Drop for Ring {
        fn drop(&mut self) {
            drain_into_recorder(&mut self.0);
        }
    }

    thread_local! {
        static RING: RefCell<Ring> = RefCell::new(Ring(Vec::with_capacity(RING_CAPACITY)));
        static NAME_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
        static PANIC_SPAN: Cell<Option<&'static str>> = const { Cell::new(None) };
    }

    /// RAII guard for one timed region; created by the `span!` macro.
    #[must_use = "a span measures the scope it is bound to; bind it with `let _span = ...`"]
    pub struct SpanGuard {
        name: &'static str,
        value: u64,
        start_ns: u64,
    }

    impl SpanGuard {
        /// Opens a span (prefer the `span!` macro).
        pub fn enter(name: &'static str, value: u64) -> Self {
            let _ = NAME_STACK.try_with(|s| s.borrow_mut().push(name));
            Self {
                name,
                value,
                start_ns: monotonic_ns(),
            }
        }
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            let end_ns = monotonic_ns();
            let _ = NAME_STACK.try_with(|s| {
                s.borrow_mut().pop();
            });
            if std::thread::panicking() {
                // Park the *innermost* span name for panic attribution (the
                // innermost guard drops first; later, outer guards see the
                // slot taken). Skip the ring: no telemetry mid-unwind.
                let _ = PANIC_SPAN.try_with(|c| {
                    if c.get().is_none() {
                        c.set(Some(self.name));
                    }
                });
                return;
            }
            let record = SpanRecord {
                name: self.name,
                start_ns: self.start_ns,
                duration_ns: end_ns.saturating_sub(self.start_ns),
                value: self.value,
            };
            let _ = RING.try_with(|ring| {
                let mut ring = ring.borrow_mut();
                ring.0.push(record);
                if ring.0.len() >= RING_CAPACITY {
                    drain_into_recorder(&mut ring.0);
                }
            });
        }
    }

    /// Drains the current thread's ring buffer into the recorder so a
    /// snapshot taken right after sees every span this thread completed.
    pub fn flush_thread_spans() {
        let _ = RING.try_with(|ring| drain_into_recorder(&mut ring.borrow_mut().0));
    }

    /// The innermost span that was active on *this thread* when it last
    /// unwound through a span guard, clearing the slot. Used by the thread
    /// pool to attribute task panics.
    pub fn take_panic_span() -> Option<&'static str> {
        PANIC_SPAN.try_with(|c| c.take()).unwrap_or(None)
    }

    /// The most recent completed spans, oldest first (bounded at
    /// [`RECENT_CAPACITY`]; call [`flush_thread_spans`] first for
    /// same-thread completeness).
    pub fn recent_spans() -> Vec<SpanRecord> {
        RECORDER
            .lock()
            .expect("span recorder poisoned")
            .as_ref()
            .map(|inner| inner.recent.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Per-name duration histograms as snapshot entries
    /// (`sigma_span_<name>_duration_ns`), appended by [`crate::snapshot`].
    pub fn span_snapshot_entries() -> Vec<SnapshotEntry> {
        RECORDER
            .lock()
            .expect("span recorder poisoned")
            .as_ref()
            .map(|inner| {
                inner
                    .by_name
                    .iter()
                    .map(|(name, hist)| SnapshotEntry {
                        name: format!("sigma_span_{name}_duration_ns"),
                        label: None,
                        help: "span duration in nanoseconds",
                        value: MetricValue::Histogram(hist.clone()),
                    })
                    .collect()
            })
            .unwrap_or_default()
    }
}

#[cfg(feature = "obs")]
pub use enabled::{
    flush_thread_spans, recent_spans, span_snapshot_entries, take_panic_span, SpanGuard, SpanRecord,
};

#[cfg(not(feature = "obs"))]
mod disabled {
    /// One completed span (no-op build: never produced).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SpanRecord {
        /// Static span name.
        pub name: &'static str,
        /// Enter timestamp, ns since process start.
        pub start_ns: u64,
        /// Exit − enter, ns.
        pub duration_ns: u64,
        /// Magnitude argument.
        pub value: u64,
    }

    /// No-op span guard (`obs` feature disabled).
    #[derive(Debug, Clone, Copy)]
    pub struct SpanGuard;

    impl SpanGuard {
        /// No-op.
        #[inline(always)]
        pub fn enter(_name: &'static str, _value: u64) -> Self {
            SpanGuard
        }

        /// No-op guard without evaluating any argument (what the disabled
        /// `span!` macro expands to).
        #[inline(always)]
        pub fn disabled() -> Self {
            SpanGuard
        }
    }

    /// No-op.
    #[inline(always)]
    pub fn flush_thread_spans() {}

    /// Always `None`.
    #[inline(always)]
    pub fn take_panic_span() -> Option<&'static str> {
        None
    }

    /// Always empty.
    #[inline(always)]
    pub fn recent_spans() -> Vec<SpanRecord> {
        Vec::new()
    }
}

#[cfg(not(feature = "obs"))]
pub use disabled::{flush_thread_spans, recent_spans, take_panic_span, SpanGuard, SpanRecord};

/// Opens a timed span over the enclosing scope: bind the guard to a local
/// (`let _span = span!("spmm", rows);`) and the region from that statement
/// to the end of the scope is recorded under the given static name, with an
/// optional `u64` magnitude. With the `obs` feature disabled this expands
/// to a unit guard and the arguments are **not evaluated**.
#[cfg(feature = "obs")]
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::SpanGuard::enter($name, 0)
    };
    ($name:expr, $value:expr) => {
        $crate::SpanGuard::enter($name, $value as u64)
    };
}

/// Disabled-build `span!`: a unit guard, arguments not evaluated.
#[cfg(not(feature = "obs"))]
#[macro_export]
macro_rules! span {
    ($name:expr $(, $value:expr)?) => {
        $crate::SpanGuard::disabled()
    };
}
