//! Fixed-bucket log-scale latency histograms.
//!
//! The layout is HDR-style log-linear: values below [`SUB_BUCKETS`] map to
//! their own exact bucket, and every power-of-two octave above that is cut
//! into [`SUB_BUCKETS`] linear sub-buckets keyed by the top mantissa bits.
//! The bucket count is fixed at compile time ([`NUM_BUCKETS`], ~4 KiB of
//! `AtomicU64` per histogram), recording is a single relaxed `fetch_add`
//! (lock-free, wait-free, safe from any thread), and the relative width of
//! any bucket is at most `1 / SUB_BUCKETS` — so a quantile read off the
//! bucket edges is within 12.5% of the exact order statistic.
//!
//! Quantiles use the nearest-rank definition: `q` maps to rank
//! `ceil(q·count)` (clamped to `[1, count]`), and the reported value is the
//! inclusive upper bound of the bucket holding that rank. The exact rank-th
//! smallest recorded value provably lies inside that bucket's `[low, high]`
//! range — the property the oracle tests in `tests/histogram.rs` pin down.
//!
//! Merging two histograms is a bucket-wise add, which makes it associative
//! and commutative (also proptested): per-thread or per-engine histograms
//! can be combined in any order without changing any derived quantile.

use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave (and the size of the exact
/// small-value region). Must be a power of two.
pub const SUB_BUCKETS: usize = 8;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros(); // 3

/// Total number of buckets: one exact bucket per value in
/// `0..SUB_BUCKETS`, then `SUB_BUCKETS` sub-buckets for each of the
/// `64 - SUB_BITS` remaining octaves (exponents `SUB_BITS..=63`) of the
/// `u64` range.
pub const NUM_BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// Index of the bucket covering `value`. Monotone non-decreasing in `value`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        value as usize
    } else {
        let exp = 63 - value.leading_zeros(); // >= SUB_BITS
        let mantissa = (value >> (exp - SUB_BITS)) & (SUB_BUCKETS as u64 - 1);
        SUB_BUCKETS + ((exp - SUB_BITS) as usize) * SUB_BUCKETS + mantissa as usize
    }
}

/// Smallest value mapping to bucket `index`.
#[inline]
pub fn bucket_low(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        index as u64
    } else {
        let offset = index - SUB_BUCKETS;
        let exp = (offset / SUB_BUCKETS) as u32; // octave above the exact region
        let mantissa = (offset % SUB_BUCKETS) as u64;
        (SUB_BUCKETS as u64 + mantissa) << exp
    }
}

/// Largest value mapping to bucket `index` (inclusive).
#[inline]
pub fn bucket_high(index: usize) -> u64 {
    if index + 1 >= NUM_BUCKETS {
        u64::MAX
    } else {
        bucket_low(index + 1) - 1
    }
}

/// A lock-free log-scale histogram of `u64` samples (latencies in
/// nanoseconds, sizes, ratios — any non-negative magnitude).
///
/// `const`-constructible so it can live in a `static`; recording from any
/// number of threads concurrently never loses counts (each sample is one
/// relaxed `fetch_add` on its bucket plus the `count`/`sum` totals).
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Self {
            buckets: [ZERO; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating on overflow is impossible with fetch_add; wrapping after
        // 2^64 ns (~584 years of accumulated latency) is acceptable.
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the bucket contents.
    ///
    /// Loads are relaxed and per-bucket, so a snapshot taken while writers
    /// are active may be *mutually* inconsistent (a sample's bucket
    /// increment observed but not yet its `count` increment, or vice versa);
    /// each individual cell is still an actually-attained monotone value,
    /// and a snapshot taken after writers quiesce is exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

/// Plain-data copy of a [`Histogram`]: mergeable, queryable, serialisable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Per-bucket sample counts (`NUM_BUCKETS` entries).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: vec![0; NUM_BUCKETS],
        }
    }

    /// Records a sample into this plain snapshot (single-threaded
    /// accumulation, e.g. the span recorder under its own lock).
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.wrapping_add(value);
    }

    /// Bucket-wise merge: the histogram of the union of both sample sets.
    ///
    /// Associative and commutative (bucket-wise `u64` addition), so
    /// per-thread or per-engine histograms combine in any order.
    pub fn merged(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets = self
            .buckets
            .iter()
            .zip(other.buckets.iter())
            .map(|(&a, &b)| a + b)
            .collect();
        HistogramSnapshot {
            count: self.count + other.count,
            sum: self.sum.wrapping_add(other.sum),
            buckets,
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// The `[low, high]` value range of the bucket holding the nearest-rank
    /// `q`-quantile (`q` clamped to `[0, 1]`); `None` when empty.
    ///
    /// The exact rank-th smallest recorded sample lies inside the returned
    /// range: with `rank = max(1, ceil(q·count))`, the number of samples
    /// `<= high` is at least `rank` and the number `< low` is below it.
    pub fn quantile_bounds(&self, q: f64) -> Option<(u64, u64)> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if cumulative >= rank {
                return Some((bucket_low(i), bucket_high(i)));
            }
        }
        // Unreachable when `count` matches the bucket totals; guard against
        // torn concurrent snapshots by falling back to the last non-empty
        // bucket.
        let last = self.buckets.iter().rposition(|&c| c > 0)?;
        Some((bucket_low(last), bucket_high(last)))
    }

    /// Nearest-rank `q`-quantile, reported as the upper bound of its bucket
    /// (conservative for latency reporting; exact for values below
    /// [`SUB_BUCKETS`]). Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.quantile_bounds(q).map(|(_, high)| high).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_maps_small_values_exactly() {
        for v in 0..SUB_BUCKETS as u64 {
            let i = bucket_index(v);
            assert_eq!(bucket_low(i), v);
            assert_eq!(bucket_high(i), v);
        }
    }

    #[test]
    fn buckets_are_contiguous_and_monotone() {
        for i in 0..NUM_BUCKETS - 1 {
            assert_eq!(bucket_high(i) + 1, bucket_low(i + 1), "gap after {i}");
        }
        assert_eq!(bucket_high(NUM_BUCKETS - 1), u64::MAX);
        for v in [0u64, 1, 7, 8, 9, 255, 256, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(bucket_low(i) <= v && v <= bucket_high(i), "value {v}");
        }
    }

    #[test]
    fn bucket_width_is_bounded() {
        for i in SUB_BUCKETS..NUM_BUCKETS - 1 {
            let (low, high) = (bucket_low(i), bucket_high(i));
            let width = high - low + 1;
            assert!(
                (width as f64) <= (low as f64) / (SUB_BUCKETS as f64) + 1.0,
                "bucket {i} [{low}, {high}] wider than low/{SUB_BUCKETS}"
            );
        }
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.sum, 5050);
        let (low, high) = snap.quantile_bounds(0.5).unwrap();
        assert!(low <= 50 && 50 <= high, "p50 of 1..=100 in [{low}, {high}]");
        let (low, high) = snap.quantile_bounds(0.99).unwrap();
        assert!(low <= 99 && 99 <= high, "p99 of 1..=100 in [{low}, {high}]");
        assert_eq!(snap.quantile_bounds(0.0).unwrap().0, 1);
    }

    #[test]
    fn empty_histogram_quantiles() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.quantile_bounds(0.5), None);
        assert_eq!(snap.quantile(0.99), 0);
        assert_eq!(snap.mean(), 0.0);
    }
}
