//! Histogram math guarantees (satellite of the sigma-obs PR):
//!
//! * merge is associative and commutative (proptest),
//! * p50/p95/p99 are within one bucket of an exact sorted-vector oracle —
//!   the nearest-rank order statistic lies inside the `[low, high]` range of
//!   the bucket the histogram reports (proptest),
//! * concurrent recording never loses counts (multi-thread hammer).
//!
//! These tests exercise the always-compiled primitives, so they run (and
//! must pass) with and without the `obs` feature.

use proptest::prelude::*;
use sigma_obs::{bucket_high, bucket_index, bucket_low, Histogram, HistogramSnapshot, NUM_BUCKETS};

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// The exact nearest-rank quantile of a sorted sample vector.
fn oracle_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let (sa, sb) = (snapshot_of(&a), snapshot_of(&b));
        prop_assert_eq!(sa.merged(&sb), sb.merged(&sa));
    }

    #[test]
    fn merge_is_associative(
        a in proptest::collection::vec(0u64..1_000_000, 0..150),
        b in proptest::collection::vec(0u64..1_000_000, 0..150),
        c in proptest::collection::vec(0u64..1_000_000, 0..150),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));
        prop_assert_eq!(sa.merged(&sb).merged(&sc), sa.merged(&sb.merged(&sc)));
    }

    #[test]
    fn merge_equals_recording_the_union(
        a in proptest::collection::vec(0u64..1_000_000, 0..200),
        b in proptest::collection::vec(0u64..1_000_000, 0..200),
    ) {
        let merged = snapshot_of(&a).merged(&snapshot_of(&b));
        let mut union = a.clone();
        union.extend_from_slice(&b);
        prop_assert_eq!(merged, snapshot_of(&union));
    }

    #[test]
    fn quantiles_bracket_the_sorted_oracle(
        mut values in proptest::collection::vec(0u64..u64::MAX / 2, 1..400),
    ) {
        let snap = snapshot_of(&values);
        values.sort_unstable();
        for q in [0.5, 0.95, 0.99] {
            let exact = oracle_quantile(&values, q);
            let (low, high) = snap.quantile_bounds(q).expect("non-empty");
            prop_assert!(
                low <= exact && exact <= high,
                "q={q}: oracle {exact} outside histogram bucket [{low}, {high}]"
            );
            // "Within one bucket": the reported value is the bucket's upper
            // bound, so it never underestimates and overestimates by less
            // than the bucket width.
            prop_assert_eq!(snap.quantile(q), high);
        }
    }

    #[test]
    fn bucket_bounds_invert_the_index(v in proptest::any::<u64>()) {
        let i = bucket_index(v);
        prop_assert!(i < NUM_BUCKETS);
        prop_assert!(bucket_low(i) <= v && v <= bucket_high(i));
        // Monotone: the next value up never maps to an earlier bucket.
        if v < u64::MAX {
            prop_assert!(bucket_index(v + 1) >= i);
        }
    }
}

#[test]
fn concurrent_recording_never_loses_counts() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 50_000;
    let h = Histogram::new();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let h = &h;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread across buckets; deterministic per-thread values
                    // so the expected sum is exactly computable.
                    h.record(((t * PER_THREAD + i) % 10_000) as u64);
                }
            });
        }
    });
    let snap = h.snapshot();
    assert_eq!(snap.count, (THREADS * PER_THREAD) as u64);
    let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|x| (x % 10_000) as u64).sum();
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(
        snap.buckets.iter().sum::<u64>(),
        (THREADS * PER_THREAD) as u64,
        "every sample landed in exactly one bucket"
    );
}
