//! Dynamic micro-batching for single-node predicts.
//!
//! SIGMA's row-sliced kernel amortises per-call overhead across the rows of
//! one batch (`kernel_row_slice` measures exactly this), so concurrent
//! `POST /v1/predict` requests are worth coalescing: the first arrival arms
//! a configurable window, everything that lands within it is drained into
//! **one** engine `predict_batch` call, and the per-request predictions are
//! scattered back to their waiting connections in submission order.
//!
//! Robustness rules:
//!
//! * the pending queue is **bounded** — a full queue sheds the new arrival
//!   with [`SubmitError::Shed`] (`429` on the wire), never grows without
//!   limit;
//! * entries whose deadline expired while queued are answered
//!   [`BatchFailure::Deadline`] (`504`) at flush time, *before* the engine
//!   sees them — an overloaded window never spends kernel time on requests
//!   nobody is waiting for;
//! * an engine error fails every request of that flush with the same
//!   shared cause (the engine itself is unpoisoned — errors here are
//!   query-shaped, not state-shaped).

use crate::backend::Backend;
use crate::metrics::DaemonMetrics;
use sigma_serve::{Prediction, ServeError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a coalesced predict did not produce a prediction.
#[derive(Debug, Clone)]
pub enum BatchFailure {
    /// The request's deadline expired while it waited in the queue.
    Deadline,
    /// The engine call serving this flush failed; the cause is shared by
    /// every request of the flush.
    Engine(Arc<ServeError>),
    /// The batcher stopped while the request was queued (terminal drain at
    /// shutdown) — the request was never served.
    Stopped,
}

/// The reply a waiting connection receives.
pub type BatchReply = Result<Prediction, BatchFailure>;

/// Why a submit was refused synchronously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded pending queue is full — shed with `429`.
    Shed,
    /// The batcher has shut down.
    Stopped,
}

struct Pending {
    node: usize,
    deadline: Instant,
    reply: mpsc::Sender<BatchReply>,
}

struct Inner {
    queue: Mutex<Vec<Pending>>,
    arrived: Condvar,
    stop: AtomicBool,
    capacity: usize,
}

/// The coalescing front end over a [`Backend`]; owned by the daemon, one
/// flusher thread.
pub struct MicroBatcher {
    inner: Arc<Inner>,
    /// The flusher's join handle, behind a lock so [`MicroBatcher::shutdown`]
    /// works through `&self` (the shutdown-race regression test shuts down
    /// from one thread while another submits).
    flusher: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl MicroBatcher {
    /// Starts the flusher thread. `window` is how long the first arrival
    /// waits for company; `max_batch` caps one flush; `capacity` bounds the
    /// pending queue.
    pub fn start(
        backend: Arc<Backend>,
        metrics: Arc<DaemonMetrics>,
        window: Duration,
        max_batch: usize,
        capacity: usize,
    ) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Vec::new()),
            arrived: Condvar::new(),
            stop: AtomicBool::new(false),
            capacity,
        });
        let flusher_inner = inner.clone();
        let flusher = std::thread::Builder::new()
            .name("sigma-daemon-batcher".into())
            .spawn(move || flusher_loop(flusher_inner, backend, metrics, window, max_batch))
            .expect("spawn micro-batcher thread");
        Self {
            inner,
            flusher: Mutex::new(Some(flusher)),
        }
    }

    /// Enqueues one node; the returned receiver yields the prediction (or
    /// failure) when its flush completes.
    pub fn submit(
        &self,
        node: usize,
        deadline: Instant,
    ) -> Result<mpsc::Receiver<BatchReply>, SubmitError> {
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.inner.queue.lock().expect("batcher queue poisoned");
            // `stop` must be checked *under the queue lock*: the flusher's
            // decision to exit is taken under this same lock (empty queue
            // and `stop` observed together), so in the mutex's total order
            // either this push precedes that final check — and is drained
            // before the flusher exits — or this section follows it, in
            // which case the `stop` store is visible here and the caller is
            // refused. Checking before the lock (as this once did) left a
            // window where a late push was never flushed and the connection
            // hung in `rx.recv()` forever.
            if self.inner.stop.load(Ordering::Acquire) {
                return Err(SubmitError::Stopped);
            }
            if queue.len() >= self.inner.capacity {
                return Err(SubmitError::Shed);
            }
            queue.push(Pending {
                node,
                deadline,
                reply: tx,
            });
        }
        self.inner.arrived.notify_one();
        Ok(rx)
    }

    /// Stops the flusher after it drains everything already queued.
    /// Idempotent and callable from any thread.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.arrived.notify_all();
        let handle = self
            .flusher
            .lock()
            .expect("batcher flusher handle poisoned")
            .take();
        if let Some(handle) = handle {
            let _ = handle.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn flusher_loop(
    inner: Arc<Inner>,
    backend: Arc<Backend>,
    metrics: Arc<DaemonMetrics>,
    window: Duration,
    max_batch: usize,
) {
    let mut previous_drain_full = false;
    'run: loop {
        // Wait for the first arrival (or shutdown), and observe whether the
        // queue is already ripe (≥ one full batch waiting).
        let ripe = {
            let mut queue = inner.queue.lock().expect("batcher queue poisoned");
            if queue.is_empty() {
                // The burst is over — the next first arrival deserves a
                // fresh coalescing window.
                previous_drain_full = false;
            }
            while queue.is_empty() {
                if inner.stop.load(Ordering::Acquire) {
                    break 'run;
                }
                let (guard, _) = inner
                    .arrived
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("batcher queue poisoned");
                queue = guard;
            }
            queue.len() >= max_batch
        };
        // Arm the coalescing window: everything arriving within it joins
        // this flush. A zero window degenerates to per-arrival flushing.
        // Skip the window entirely when the previous drain was full or the
        // queue already holds a full batch — those leftovers are ripe, and
        // re-arming would add one window of latency per extra `max_batch`
        // chunk of a burst.
        if !window.is_zero() && !previous_drain_full && !ripe {
            std::thread::sleep(window);
        }
        let drained: Vec<Pending> = {
            let mut queue = inner.queue.lock().expect("batcher queue poisoned");
            let take = queue.len().min(max_batch);
            queue.drain(..take).collect()
        };
        previous_drain_full = !drained.is_empty() && drained.len() == max_batch;
        if drained.is_empty() {
            continue;
        }
        flush(&backend, &metrics, drained);
    }
    // Terminal drain: the loop only exits after observing an empty queue
    // together with `stop` under the lock, and `submit` refuses once `stop`
    // is visible under that same lock — so leftovers here should be
    // impossible. Belt and braces: anything found anyway is answered with a
    // terminal failure instead of being leaked with its sender alive (which
    // would hang the waiting connection forever).
    let leftovers: Vec<Pending> = {
        let mut queue = inner.queue.lock().expect("batcher queue poisoned");
        queue.drain(..).collect()
    };
    for pending in leftovers {
        let _ = pending.reply.send(Err(BatchFailure::Stopped));
    }
}

/// Serves one drained batch: expired entries are answered `Deadline`
/// without engine work; the rest ride one `predict_batch` call.
fn flush(backend: &Backend, metrics: &DaemonMetrics, drained: Vec<Pending>) {
    let now = Instant::now();
    let mut live: Vec<Pending> = Vec::with_capacity(drained.len());
    for pending in drained {
        if now >= pending.deadline {
            metrics.deadline_shed.inc();
            let _ = pending.reply.send(Err(BatchFailure::Deadline));
        } else {
            live.push(pending);
        }
    }
    if live.is_empty() {
        return;
    }
    let nodes: Vec<usize> = live.iter().map(|p| p.node).collect();
    metrics.batch_flushes.inc();
    metrics.coalesced_predicts.add(live.len() as u64);
    if sigma_obs::ENABLED {
        metrics.batch_size.record(live.len() as u64);
    }
    match backend.predict_batch(&nodes) {
        Ok(predictions) => {
            for (pending, prediction) in live.into_iter().zip(predictions) {
                let _ = pending.reply.send(Ok(prediction));
            }
        }
        Err(e) => {
            let shared = Arc::new(e);
            for pending in live {
                let _ = pending
                    .reply
                    .send(Err(BatchFailure::Engine(shared.clone())));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sigma_serve::{EngineConfig, InferenceEngine};
    use sigma_testutil::{random_graph, serving_fixture};

    fn backend() -> Arc<Backend> {
        let fixture = serving_fixture(&random_graph(12, 6, 7), 4, 7);
        let engine =
            InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine");
        Arc::new(Backend::Engine(Arc::new(engine)))
    }

    /// Regression for the shutdown race: `submit` once checked `stop`
    /// *before* taking the queue lock, so a push could land after the
    /// flusher observed an empty queue and exited — never flushed, its
    /// sender alive inside the queue, the waiting connection hung in
    /// `rx.recv()` forever. With the check under the lock, every accepted
    /// submit is answered and every refused one returns `Stopped`; this
    /// loops the race and fails by timeout (not deadlock) on the old code.
    #[test]
    fn submit_racing_shutdown_never_hangs() {
        let backend = backend();
        let metrics = Arc::new(DaemonMetrics::new());
        for _ in 0..2000 {
            let batcher =
                MicroBatcher::start(backend.clone(), metrics.clone(), Duration::ZERO, 8, 64);
            std::thread::scope(|s| {
                let b = &batcher;
                s.spawn(move || b.shutdown());
                match b.submit(0, Instant::now() + Duration::from_secs(5)) {
                    Ok(rx) => {
                        // Any reply is fine — a prediction, a deadline, or
                        // the terminal `Stopped`. Silence is the bug.
                        let _reply = rx
                            .recv_timeout(Duration::from_secs(5))
                            .expect("an accepted submit must be answered, not hang");
                    }
                    Err(SubmitError::Stopped) => {}
                    Err(SubmitError::Shed) => panic!("an empty queue cannot shed"),
                }
            });
        }
    }

    /// Regression for the re-armed window: a burst of 3×`max_batch`
    /// requests used to pay the full coalescing window per chunk (~3
    /// windows total) because the flusher slept again before draining
    /// already-ripe leftovers. Fixed, the burst pays one window and the
    /// leftover chunks drain back to back.
    #[test]
    fn overfull_queue_drains_without_rearming_the_window() {
        let window = Duration::from_millis(150);
        let batcher = MicroBatcher::start(backend(), Arc::new(DaemonMetrics::new()), window, 4, 64);
        let deadline = Instant::now() + Duration::from_secs(30);
        let start = Instant::now();
        let receivers: Vec<_> = (0..12)
            .map(|i| batcher.submit(i % 12, deadline).expect("queue has room"))
            .collect();
        for rx in receivers {
            let reply = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("flusher answers every submit");
            assert!(reply.is_ok(), "healthy engine serves every node");
        }
        let elapsed = start.elapsed();
        // Old behaviour: three armed windows ≥ 450ms. Fixed: one window
        // plus flush time. 375ms splits the two with wide margins both
        // ways, so the assertion stays robust on slow CI machines.
        assert!(
            elapsed < Duration::from_millis(375),
            "a 3-chunk burst must not re-arm the {window:?} window per chunk (took {elapsed:?})"
        );
    }

    /// Shutdown drains whatever is already queued before the flusher
    /// exits: accepted submits are answered even when shutdown lands
    /// between acceptance and the first flush.
    #[test]
    fn shutdown_answers_everything_already_queued() {
        let batcher = MicroBatcher::start(
            backend(),
            Arc::new(DaemonMetrics::new()),
            Duration::from_millis(500),
            4,
            64,
        );
        let deadline = Instant::now() + Duration::from_secs(30);
        let receivers: Vec<_> = (0..6)
            .map(|i| batcher.submit(i, deadline).expect("queue has room"))
            .collect();
        batcher.shutdown();
        for rx in receivers {
            let _reply = rx
                .recv_timeout(Duration::from_secs(10))
                .expect("queued submits are answered through shutdown");
        }
        assert!(matches!(
            batcher.submit(0, deadline),
            Err(SubmitError::Stopped)
        ));
    }
}
