//! Dynamic micro-batching for single-node predicts.
//!
//! SIGMA's row-sliced kernel amortises per-call overhead across the rows of
//! one batch (`kernel_row_slice` measures exactly this), so concurrent
//! `POST /v1/predict` requests are worth coalescing: the first arrival arms
//! a configurable window, everything that lands within it is drained into
//! **one** engine `predict_batch` call, and the per-request predictions are
//! scattered back to their waiting connections in submission order.
//!
//! Robustness rules:
//!
//! * the pending queue is **bounded** — a full queue sheds the new arrival
//!   with [`SubmitError::Shed`] (`429` on the wire), never grows without
//!   limit;
//! * entries whose deadline expired while queued are answered
//!   [`BatchFailure::Deadline`] (`504`) at flush time, *before* the engine
//!   sees them — an overloaded window never spends kernel time on requests
//!   nobody is waiting for;
//! * an engine error fails every request of that flush with the same
//!   shared cause (the engine itself is unpoisoned — errors here are
//!   query-shaped, not state-shaped).

use crate::backend::Backend;
use crate::metrics::DaemonMetrics;
use sigma_serve::{Prediction, ServeError};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Why a coalesced predict did not produce a prediction.
#[derive(Debug, Clone)]
pub enum BatchFailure {
    /// The request's deadline expired while it waited in the queue.
    Deadline,
    /// The engine call serving this flush failed; the cause is shared by
    /// every request of the flush.
    Engine(Arc<ServeError>),
}

/// The reply a waiting connection receives.
pub type BatchReply = Result<Prediction, BatchFailure>;

/// Why a submit was refused synchronously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The bounded pending queue is full — shed with `429`.
    Shed,
    /// The batcher has shut down.
    Stopped,
}

struct Pending {
    node: usize,
    deadline: Instant,
    reply: mpsc::Sender<BatchReply>,
}

struct Inner {
    queue: Mutex<Vec<Pending>>,
    arrived: Condvar,
    stop: AtomicBool,
    capacity: usize,
}

/// The coalescing front end over a [`Backend`]; owned by the daemon, one
/// flusher thread.
pub struct MicroBatcher {
    inner: Arc<Inner>,
    flusher: Option<std::thread::JoinHandle<()>>,
}

impl MicroBatcher {
    /// Starts the flusher thread. `window` is how long the first arrival
    /// waits for company; `max_batch` caps one flush; `capacity` bounds the
    /// pending queue.
    pub fn start(
        backend: Arc<Backend>,
        metrics: Arc<DaemonMetrics>,
        window: Duration,
        max_batch: usize,
        capacity: usize,
    ) -> Self {
        let inner = Arc::new(Inner {
            queue: Mutex::new(Vec::new()),
            arrived: Condvar::new(),
            stop: AtomicBool::new(false),
            capacity,
        });
        let flusher_inner = inner.clone();
        let flusher = std::thread::Builder::new()
            .name("sigma-daemon-batcher".into())
            .spawn(move || flusher_loop(flusher_inner, backend, metrics, window, max_batch))
            .expect("spawn micro-batcher thread");
        Self {
            inner,
            flusher: Some(flusher),
        }
    }

    /// Enqueues one node; the returned receiver yields the prediction (or
    /// failure) when its flush completes.
    pub fn submit(
        &self,
        node: usize,
        deadline: Instant,
    ) -> Result<mpsc::Receiver<BatchReply>, SubmitError> {
        if self.inner.stop.load(Ordering::Acquire) {
            return Err(SubmitError::Stopped);
        }
        let (tx, rx) = mpsc::channel();
        {
            let mut queue = self.inner.queue.lock().expect("batcher queue poisoned");
            if queue.len() >= self.inner.capacity {
                return Err(SubmitError::Shed);
            }
            queue.push(Pending {
                node,
                deadline,
                reply: tx,
            });
        }
        self.inner.arrived.notify_one();
        Ok(rx)
    }

    /// Stops the flusher after it drains everything already queued.
    pub fn shutdown(&mut self) {
        self.inner.stop.store(true, Ordering::Release);
        self.inner.arrived.notify_all();
        if let Some(handle) = self.flusher.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for MicroBatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn flusher_loop(
    inner: Arc<Inner>,
    backend: Arc<Backend>,
    metrics: Arc<DaemonMetrics>,
    window: Duration,
    max_batch: usize,
) {
    loop {
        // Wait for the first arrival (or shutdown).
        {
            let mut queue = inner.queue.lock().expect("batcher queue poisoned");
            while queue.is_empty() {
                if inner.stop.load(Ordering::Acquire) {
                    return;
                }
                let (guard, _) = inner
                    .arrived
                    .wait_timeout(queue, Duration::from_millis(50))
                    .expect("batcher queue poisoned");
                queue = guard;
            }
        }
        // Arm the coalescing window: everything arriving within it joins
        // this flush. A zero window degenerates to per-arrival flushing.
        if !window.is_zero() {
            std::thread::sleep(window);
        }
        let drained: Vec<Pending> = {
            let mut queue = inner.queue.lock().expect("batcher queue poisoned");
            let take = queue.len().min(max_batch);
            queue.drain(..take).collect()
        };
        if drained.is_empty() {
            continue;
        }
        flush(&backend, &metrics, drained);
    }
}

/// Serves one drained batch: expired entries are answered `Deadline`
/// without engine work; the rest ride one `predict_batch` call.
fn flush(backend: &Backend, metrics: &DaemonMetrics, drained: Vec<Pending>) {
    let now = Instant::now();
    let mut live: Vec<Pending> = Vec::with_capacity(drained.len());
    for pending in drained {
        if now >= pending.deadline {
            metrics.deadline_shed.inc();
            let _ = pending.reply.send(Err(BatchFailure::Deadline));
        } else {
            live.push(pending);
        }
    }
    if live.is_empty() {
        return;
    }
    let nodes: Vec<usize> = live.iter().map(|p| p.node).collect();
    metrics.batch_flushes.inc();
    metrics.coalesced_predicts.add(live.len() as u64);
    if sigma_obs::ENABLED {
        metrics.batch_size.record(live.len() as u64);
    }
    match backend.predict_batch(&nodes) {
        Ok(predictions) => {
            for (pending, prediction) in live.into_iter().zip(predictions) {
                let _ = pending.reply.send(Ok(prediction));
            }
        }
        Err(e) => {
            let shared = Arc::new(e);
            for pending in live {
                let _ = pending
                    .reply
                    .send(Err(BatchFailure::Engine(shared.clone())));
            }
        }
    }
}
