//! The daemon's model-agnostic serving backend.
//!
//! The wire surface is designed for any model family that reduces to
//! SIGMA's precompute-then-row-slice pattern (GloGNN-style global
//! aggregation collapses to the same `Z = row_slice(S)·H` serve step), so
//! handlers talk to a [`Backend`] rather than a concrete engine. Today two
//! backends exist: a single [`InferenceEngine`] and an in-process
//! [`ShardRouter`] fleet — both already proven bitwise-equal to each other
//! by the shard differential oracle, which is what lets the daemon treat
//! them interchangeably.

use sigma_serve::{
    EngineStats, InferenceEngine, MappedSnapshot, Prediction, Result, ServeSnapshot, ShardRouter,
    SimilarNode,
};
use sigma_simrank::{DynamicSimRank, EdgeUpdate};
use std::sync::Arc;

/// What one `POST /v1/repair` round did, backend-agnostic.
#[derive(Debug, Clone, Default)]
pub struct RepairSummary {
    /// Whether the round degenerated to a whole-operator install.
    pub full_refresh: bool,
    /// Operator rows patched (globally, across shards).
    pub operator_rows: usize,
    /// Embedding rows re-encoded (summed across shards).
    pub embedding_rows: usize,
    /// `(shards touched, shards skipped)` — `None` for a single engine.
    pub fanout: Option<(usize, usize)>,
}

/// A serving backend the daemon can front.
pub enum Backend {
    /// One inference engine.
    Engine(Arc<InferenceEngine>),
    /// An in-process shard-router fleet.
    Router(Arc<ShardRouter>),
}

impl Backend {
    /// Number of nodes served (valid query ids are `0..num_nodes`).
    pub fn num_nodes(&self) -> usize {
        match self {
            Backend::Engine(e) => e.num_nodes(),
            Backend::Router(r) => r.num_nodes(),
        }
    }

    /// Number of classes per prediction.
    pub fn num_classes(&self) -> usize {
        match self {
            Backend::Engine(e) => e.num_classes(),
            Backend::Router(r) => r.num_classes(),
        }
    }

    /// Serves one node.
    pub fn predict(&self, node: usize) -> Result<Prediction> {
        match self {
            Backend::Engine(e) => e.predict(node),
            Backend::Router(r) => r.predict(node),
        }
    }

    /// Serves a batch in request order.
    pub fn predict_batch(&self, nodes: &[usize]) -> Result<Vec<Prediction>> {
        match self {
            Backend::Engine(e) => e.predict_batch(nodes),
            Backend::Router(r) => r.predict_batch(nodes),
        }
    }

    /// Top-`k` most similar nodes, ranked off the operator row (routed to
    /// the row-owner shard on a router backend).
    pub fn most_similar(&self, node: usize, k: usize) -> Result<Vec<SimilarNode>> {
        match self {
            Backend::Engine(e) => e.most_similar(node, k),
            Backend::Router(r) => r.most_similar(node, k),
        }
    }

    /// Serves a batch of `(node, k)` similarity queries in request order.
    pub fn most_similar_batch(&self, queries: &[(usize, usize)]) -> Result<Vec<Vec<SimilarNode>>> {
        match self {
            Backend::Engine(e) => e.most_similar_batch(queries),
            Backend::Router(r) => r.most_similar_batch(queries),
        }
    }

    /// Applies edge updates to the staleness tracker; returns cached rows
    /// invalidated.
    pub fn apply_edge_updates(&self, updates: &[EdgeUpdate]) -> Result<usize> {
        match self {
            Backend::Engine(e) => e.apply_edge_updates(updates),
            Backend::Router(r) => r.apply_edge_updates(updates),
        }
    }

    /// Drives one incremental repair round from `maintainer`.
    pub fn repair_from(&self, maintainer: &mut DynamicSimRank) -> Result<RepairSummary> {
        match self {
            Backend::Engine(e) => {
                let repair = e.repair_from(maintainer)?;
                Ok(RepairSummary {
                    full_refresh: repair.full_refresh,
                    operator_rows: repair.operator_rows.len(),
                    embedding_rows: repair.embedding_rows.len(),
                    fanout: None,
                })
            }
            Backend::Router(r) => {
                let repair = r.repair_from(maintainer)?;
                Ok(RepairSummary {
                    full_refresh: repair.full_refresh,
                    operator_rows: repair.operator_rows.len(),
                    embedding_rows: repair
                        .shard_repairs
                        .iter()
                        .flatten()
                        .map(|s| s.embedding_rows.len())
                        .sum(),
                    fanout: Some((repair.fanout, repair.skipped)),
                })
            }
        }
    }

    /// Whether `POST /v1/reload` can serve this backend (single engines
    /// only — a sharded fleet reloads per shard, through whatever wire the
    /// shards themselves will eventually expose).
    pub fn supports_reload(&self) -> bool {
        matches!(self, Backend::Engine(_))
    }

    /// Hot-reloads a decoded snapshot (engine backends only; callers gate
    /// on [`Backend::supports_reload`]).
    pub fn hot_reload(&self, snapshot: &ServeSnapshot) -> Result<()> {
        match self {
            Backend::Engine(e) => e.hot_reload(snapshot),
            Backend::Router(_) => unreachable!("gated by supports_reload"),
        }
    }

    /// Hot-reloads a mapped v2 snapshot zero-copy (engine backends only).
    pub fn hot_reload_mapped(&self, snapshot: Arc<MappedSnapshot>) -> Result<()> {
        match self {
            Backend::Engine(e) => e.hot_reload_mapped(snapshot),
            Backend::Router(_) => unreachable!("gated by supports_reload"),
        }
    }

    /// The backend's engine counters (summed across shards for a router).
    pub fn engine_stats(&self) -> EngineStats {
        match self {
            Backend::Engine(e) => e.stats(),
            Backend::Router(r) => r.stats().engines,
        }
    }
}
