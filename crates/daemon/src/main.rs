//! The `sigma-daemon` binary: load a snapshot, serve it, drain on stdin
//! EOF or SIGTERM-via-closed-stdin.
//!
//! ```text
//! sigma-daemon <snapshot-path> [--port N] [--workers N] [--shards N]
//!              [--window-us N] [--deadline-ms N] [--queue N] [--debug]
//! ```
//!
//! The process serves until stdin reaches EOF (the conventional
//! supervisor-friendly shutdown signal for a process with no signal
//! handling of its own), then drains gracefully and exits 0.

use sigma_daemon::{Backend, Daemon, DaemonConfig};
use sigma_serve::{
    EngineConfig, InferenceEngine, MappedSnapshot, ServeSnapshot, ShardRouter, ShardRouterConfig,
};
use std::io::Read;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: sigma-daemon <snapshot-path> [--port N] [--workers N] [--shards N] \
         [--window-us N] [--deadline-ms N] [--queue N] [--debug]"
    );
    std::process::exit(2);
}

fn parse_flag(args: &mut std::iter::Peekable<std::env::Args>, what: &str) -> usize {
    match args.next().map(|v| v.parse::<usize>()) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("sigma-daemon: {what} needs an integer argument");
            std::process::exit(2);
        }
    }
}

fn main() {
    let mut args = std::env::args().peekable();
    let _argv0 = args.next();
    let mut snapshot_path: Option<String> = None;
    let mut config = DaemonConfig::default();
    let mut shards = 1usize;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--port" => config.port = parse_flag(&mut args, "--port") as u16,
            "--workers" => config.workers = parse_flag(&mut args, "--workers"),
            "--shards" => shards = parse_flag(&mut args, "--shards"),
            "--window-us" => {
                config.micro_batch_window_us = parse_flag(&mut args, "--window-us") as u64
            }
            "--deadline-ms" => {
                config.default_deadline_ms = parse_flag(&mut args, "--deadline-ms") as u64
            }
            "--queue" => config.queue_capacity = parse_flag(&mut args, "--queue"),
            "--debug" => config.debug_endpoints = true,
            "--help" | "-h" => usage(),
            other if snapshot_path.is_none() && !other.starts_with('-') => {
                snapshot_path = Some(other.to_string())
            }
            other => {
                eprintln!("sigma-daemon: unknown argument {other}");
                usage();
            }
        }
    }
    let snapshot_path = snapshot_path.unwrap_or_else(|| usage());

    // Prefer the zero-copy mapped open; fall back to the eager v1 decoder.
    let backend = match build_backend(&snapshot_path, shards) {
        Ok(backend) => backend,
        Err(e) => {
            eprintln!("sigma-daemon: failed to load {snapshot_path}: {e}");
            std::process::exit(1);
        }
    };

    let daemon = match Daemon::start(backend, None, config) {
        Ok(daemon) => daemon,
        Err(e) => {
            eprintln!("sigma-daemon: failed to start: {e}");
            std::process::exit(1);
        }
    };
    println!("sigma-daemon listening on http://{}", daemon.local_addr());

    // Block until the supervisor closes stdin, then drain.
    let mut sink = Vec::new();
    let _ = std::io::stdin().read_to_end(&mut sink);
    let report = daemon.shutdown();
    if report.drained_cleanly {
        eprintln!("sigma-daemon: drained cleanly");
    } else {
        eprintln!(
            "sigma-daemon: drain deadline hit; {} queued connection(s) answered 503",
            report.queued_rejected
        );
    }
}

fn build_backend(path: &str, shards: usize) -> Result<Backend, sigma_serve::ServeError> {
    if shards > 1 {
        let config = ShardRouterConfig {
            shards,
            engine: EngineConfig::default(),
        };
        // A sharded backend plans its shards from one decoded snapshot
        // (the per-shard mapped path wants pre-sharded snapshot files).
        let router = ShardRouter::new(&ServeSnapshot::load(path)?, &config)?;
        return Ok(Backend::Router(Arc::new(router)));
    }
    let engine = match MappedSnapshot::open(path) {
        Ok(mapped) => InferenceEngine::from_mapped(Arc::new(mapped), EngineConfig::default())?,
        Err(_) => InferenceEngine::new(&ServeSnapshot::load(path)?, EngineConfig::default())?,
    };
    Ok(Backend::Engine(Arc::new(engine)))
}
