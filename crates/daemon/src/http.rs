//! A minimal-but-strict HTTP/1.1 layer over `std` sockets.
//!
//! No network crates exist in this offline environment, so the daemon
//! hand-rolls the thin slice of HTTP/1.1 it needs: request-line + headers +
//! `Content-Length` bodies in, fixed-length responses out. Strictness is the
//! point — every limit is explicit and every violation is a typed
//! [`HttpError`] that maps to one status code, so the fault-injection suite
//! can assert the full surface:
//!
//! * request line and header lines are capped ([`HttpLimits::max_line_bytes`]),
//! * header count is capped ([`HttpLimits::max_headers`]),
//! * bodies are capped *before* they are read
//!   ([`HttpLimits::max_body_bytes`]) — an oversized `Content-Length` is
//!   rejected without buffering a byte,
//! * socket read/write timeouts are set by the caller, and a timed-out read
//!   surfaces as [`HttpError::Timeout`] (a slow-loris peer costs one worker
//!   at most one timeout window),
//! * `Transfer-Encoding` (chunked or otherwise) is refused outright — every
//!   daemon payload is small and fixed-length.

use std::fmt;
use std::io::{self, BufRead, Write};

/// Parsing limits, all enforced before unbounded buffering can happen.
#[derive(Debug, Clone, Copy)]
pub struct HttpLimits {
    /// Longest accepted request line or single header line, in bytes.
    pub max_line_bytes: usize,
    /// Maximum number of headers per request.
    pub max_headers: usize,
    /// Largest accepted `Content-Length`.
    pub max_body_bytes: usize,
}

impl Default for HttpLimits {
    fn default() -> Self {
        Self {
            max_line_bytes: 8 * 1024,
            max_headers: 64,
            max_body_bytes: 1024 * 1024,
        }
    }
}

/// One parsed request. Header names are lowercased at parse time.
#[derive(Debug, Clone)]
pub struct Request {
    /// The method token, verbatim (`GET`, `POST`, …).
    pub method: String,
    /// The request target (path only; the daemon serves no query strings).
    pub path: String,
    /// `(lowercased-name, value)` pairs in arrival order.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
    /// Whether the client asked for the connection to close after this
    /// exchange (`Connection: close`, or HTTP/1.0 without keep-alive).
    pub close: bool,
}

impl Request {
    /// First header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(k, _)| *k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Every way reading a request can fail, each mapped to one status code by
/// [`HttpError::status`].
#[derive(Debug)]
pub enum HttpError {
    /// Clean EOF before the first request byte — the keep-alive peer hung
    /// up; not an error on the wire, no response is owed.
    Closed,
    /// The socket read timed out mid-request (slow-loris) → `408`.
    Timeout,
    /// The peer hung up mid-request (e.g. a truncated body) → `400`.
    Truncated {
        /// Which structure was cut short.
        what: &'static str,
    },
    /// A request or header line exceeded the byte cap → `431`.
    LineTooLong {
        /// The configured cap.
        limit: usize,
    },
    /// More headers than the cap → `431`.
    TooManyHeaders {
        /// The configured cap.
        limit: usize,
    },
    /// `Content-Length` exceeds the body cap → `413` (rejected before any
    /// body byte is buffered).
    BodyTooLarge {
        /// The configured cap.
        limit: usize,
        /// What the peer declared.
        declared: usize,
    },
    /// The request line is not `METHOD TARGET HTTP/1.x` → `400`.
    BadRequestLine,
    /// A header line has no `:` separator or a malformed name → `400`.
    BadHeader,
    /// `Content-Length` is present but not a valid integer → `400`.
    BadContentLength,
    /// Any `Transfer-Encoding` (the daemon only accepts fixed-length
    /// bodies) → `501`.
    UnsupportedTransferEncoding,
    /// An HTTP version other than 1.0/1.1 → `505`.
    UnsupportedVersion,
    /// A hard socket error; the connection is unusable, no response is
    /// attempted.
    Io(io::Error),
}

impl HttpError {
    /// The status code this parse failure answers with (`None` when the
    /// connection is already gone and no response is possible).
    pub fn status(&self) -> Option<u16> {
        match self {
            HttpError::Closed | HttpError::Io(_) => None,
            HttpError::Timeout => Some(408),
            HttpError::Truncated { .. } => Some(400),
            HttpError::LineTooLong { .. } | HttpError::TooManyHeaders { .. } => Some(431),
            HttpError::BodyTooLarge { .. } => Some(413),
            HttpError::BadRequestLine | HttpError::BadHeader | HttpError::BadContentLength => {
                Some(400)
            }
            HttpError::UnsupportedTransferEncoding => Some(501),
            HttpError::UnsupportedVersion => Some(505),
        }
    }
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Closed => write!(f, "peer closed the connection"),
            HttpError::Timeout => write!(f, "socket read timed out mid-request"),
            HttpError::Truncated { what } => write!(f, "peer hung up mid-{what}"),
            HttpError::LineTooLong { limit } => {
                write!(f, "request/header line exceeds {limit} bytes")
            }
            HttpError::TooManyHeaders { limit } => write!(f, "more than {limit} headers"),
            HttpError::BodyTooLarge { limit, declared } => {
                write!(
                    f,
                    "declared body of {declared} bytes exceeds the {limit}-byte cap"
                )
            }
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::BadHeader => write!(f, "malformed header line"),
            HttpError::BadContentLength => write!(f, "malformed Content-Length"),
            HttpError::UnsupportedTransferEncoding => {
                write!(
                    f,
                    "Transfer-Encoding is not supported (fixed-length bodies only)"
                )
            }
            HttpError::UnsupportedVersion => write!(f, "only HTTP/1.0 and HTTP/1.1 are served"),
            HttpError::Io(e) => write!(f, "socket error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Whether an I/O failure is a read timeout (the two kinds platforms use
/// for `SO_RCVTIMEO` expiry).
fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn map_io(e: io::Error) -> HttpError {
    if is_timeout(&e) {
        HttpError::Timeout
    } else {
        HttpError::Io(e)
    }
}

/// Reads one `\n`-terminated line of at most `max` bytes (the terminator is
/// stripped, along with a trailing `\r`). `Ok(None)` means clean EOF before
/// any byte of this line.
fn read_line<R: BufRead>(reader: &mut R, max: usize) -> Result<Option<Vec<u8>>, HttpError> {
    let mut line: Vec<u8> = Vec::new();
    loop {
        let buf = match reader.fill_buf() {
            Ok(buf) => buf,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(map_io(e)),
        };
        if buf.is_empty() {
            if line.is_empty() {
                return Ok(None);
            }
            return Err(HttpError::Truncated { what: "header" });
        }
        match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => {
                if line.len() + pos > max {
                    return Err(HttpError::LineTooLong { limit: max });
                }
                line.extend_from_slice(&buf[..pos]);
                reader.consume(pos + 1);
                if line.last() == Some(&b'\r') {
                    line.pop();
                }
                return Ok(Some(line));
            }
            None => {
                let take = buf.len();
                if line.len() + take > max {
                    return Err(HttpError::LineTooLong { limit: max });
                }
                line.extend_from_slice(buf);
                reader.consume(take);
            }
        }
    }
}

/// Reads and validates one request. [`HttpError::Closed`] distinguishes the
/// peer hanging up between requests (normal keep-alive teardown) from every
/// actual protocol violation.
pub fn read_request<R: BufRead>(reader: &mut R, limits: &HttpLimits) -> Result<Request, HttpError> {
    let line = match read_line(reader, limits.max_line_bytes)? {
        None => return Err(HttpError::Closed),
        Some(line) => line,
    };
    let line = std::str::from_utf8(&line).map_err(|_| HttpError::BadRequestLine)?;
    let mut parts = line.split(' ');
    let (method, target, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(t), Some(v), None) if !m.is_empty() && !t.is_empty() => (m, t, v),
        _ => return Err(HttpError::BadRequestLine),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(HttpError::BadRequestLine);
    }
    let http10 = match version {
        "HTTP/1.1" => false,
        "HTTP/1.0" => true,
        _ => return Err(HttpError::UnsupportedVersion),
    };

    let mut headers: Vec<(String, String)> = Vec::new();
    loop {
        let line = match read_line(reader, limits.max_line_bytes)? {
            None => return Err(HttpError::Truncated { what: "header" }),
            Some(line) => line,
        };
        if line.is_empty() {
            break;
        }
        if headers.len() == limits.max_headers {
            return Err(HttpError::TooManyHeaders {
                limit: limits.max_headers,
            });
        }
        let line = std::str::from_utf8(&line).map_err(|_| HttpError::BadHeader)?;
        let (name, value) = line.split_once(':').ok_or(HttpError::BadHeader)?;
        if name.is_empty() || name.contains(' ') {
            return Err(HttpError::BadHeader);
        }
        headers.push((name.to_ascii_lowercase(), value.trim().to_string()));
    }

    let find = |name: &str| {
        headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    };
    if find("transfer-encoding").is_some() {
        return Err(HttpError::UnsupportedTransferEncoding);
    }
    let content_length = match find("content-length") {
        None => 0usize,
        Some(v) => v
            .parse::<usize>()
            .map_err(|_| HttpError::BadContentLength)?,
    };
    if content_length > limits.max_body_bytes {
        return Err(HttpError::BodyTooLarge {
            limit: limits.max_body_bytes,
            declared: content_length,
        });
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        let mut read = 0usize;
        while read < content_length {
            match reader.read(&mut body[read..]) {
                Ok(0) => return Err(HttpError::Truncated { what: "body" }),
                Ok(n) => read += n,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(map_io(e)),
            }
        }
    }

    let connection = find("connection").map(|v| v.to_ascii_lowercase());
    let close = match connection.as_deref() {
        Some("close") => true,
        Some("keep-alive") => false,
        _ => http10,
    };
    Ok(Request {
        method: method.to_string(),
        path: target.to_string(),
        headers,
        body,
        close,
    })
}

/// One response, written with [`write_response`].
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Response body.
    pub body: Vec<u8>,
    /// Extra headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Whether to advertise (and perform) connection close.
    pub close: bool,
}

impl Response {
    /// A JSON response with the given status.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A plain-text response with the given status.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; version=0.0.4",
            body: body.into_bytes(),
            extra_headers: Vec::new(),
            close: false,
        }
    }

    /// A JSON error envelope: `{"error": <kind>, "detail": <detail>}`.
    pub fn error(status: u16, kind: &str, detail: &str) -> Self {
        Self::json(
            status,
            format!(
                "{{\"error\": {}, \"detail\": {}}}",
                crate::json::quote(kind),
                crate::json::quote(detail)
            ),
        )
    }
}

/// The canonical reason phrase for every status the daemon emits.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// Serialises `response` (status line, `Content-Length`, body) and flushes.
pub fn write_response<W: Write>(writer: &mut W, response: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\n",
        response.status,
        reason(response.status),
        response.content_type,
        response.body.len()
    );
    for (name, value) in &response.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if response.close {
        head.push_str("connection: close\r\n");
    }
    head.push_str("\r\n");
    writer.write_all(head.as_bytes())?;
    writer.write_all(&response.body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &[u8]) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw), &HttpLimits::default())
    }

    #[test]
    fn parses_a_post_with_body() {
        let req = parse(
            b"POST /v1/predict HTTP/1.1\r\nHost: x\r\nContent-Length: 11\r\n\r\n{\"node\": 3}",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/predict");
        assert_eq!(req.header("host"), Some("x"));
        assert_eq!(req.body, b"{\"node\": 3}");
        assert!(!req.close);
    }

    #[test]
    fn connection_semantics() {
        let req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(req.close);
        let req = parse(b"GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(req.close, "HTTP/1.0 defaults to close");
        let req = parse(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n").unwrap();
        assert!(!req.close);
    }

    #[test]
    fn typed_rejections() {
        assert!(matches!(parse(b""), Err(HttpError::Closed)));
        assert!(matches!(
            parse(b"GET /\r\n\r\n"),
            Err(HttpError::BadRequestLine)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/2\r\n\r\n"),
            Err(HttpError::UnsupportedVersion)
        ));
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nno-colon-here\r\n\r\n"),
            Err(HttpError::BadHeader)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n"),
            Err(HttpError::BadContentLength)
        ));
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"),
            Err(HttpError::UnsupportedTransferEncoding)
        ));
        // Truncated body: declared 10 bytes, supplied 3.
        assert!(matches!(
            parse(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc"),
            Err(HttpError::Truncated { what: "body" })
        ));
        // Headers cut off mid-flight.
        assert!(matches!(
            parse(b"GET / HTTP/1.1\r\nHost: x\r\n"),
            Err(HttpError::Truncated { what: "header" })
        ));
    }

    #[test]
    fn limits_are_enforced_before_buffering() {
        let limits = HttpLimits {
            max_line_bytes: 32,
            max_headers: 2,
            max_body_bytes: 8,
        };
        let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(64));
        assert!(matches!(
            read_request(&mut BufReader::new(long.as_bytes()), &limits),
            Err(HttpError::LineTooLong { limit: 32 })
        ));
        let many = b"GET / HTTP/1.1\r\na: 1\r\nb: 2\r\nc: 3\r\n\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(&many[..]), &limits),
            Err(HttpError::TooManyHeaders { limit: 2 })
        ));
        let big = b"POST / HTTP/1.1\r\nContent-Length: 100000\r\n\r\n";
        assert!(matches!(
            read_request(&mut BufReader::new(&big[..]), &limits),
            Err(HttpError::BodyTooLarge {
                limit: 8,
                declared: 100000
            })
        ));
    }

    #[test]
    fn writes_a_response() {
        let mut out = Vec::new();
        let mut resp = Response::json(200, "{\"ok\": true}".into());
        resp.extra_headers.push(("retry-after", "1".into()));
        resp.close = true;
        write_response(&mut out, &resp).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("content-length: 12\r\n"));
        assert!(text.contains("retry-after: 1\r\n"));
        assert!(text.contains("connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\": true}"));
    }

    #[test]
    fn every_error_has_a_stable_status() {
        assert_eq!(HttpError::Closed.status(), None);
        assert_eq!(HttpError::Timeout.status(), Some(408));
        assert_eq!(HttpError::Truncated { what: "body" }.status(), Some(400));
        assert_eq!(HttpError::LineTooLong { limit: 1 }.status(), Some(431));
        assert_eq!(
            HttpError::BodyTooLarge {
                limit: 1,
                declared: 2
            }
            .status(),
            Some(413)
        );
        assert_eq!(HttpError::UnsupportedTransferEncoding.status(), Some(501));
        assert_eq!(HttpError::UnsupportedVersion.status(), Some(505));
    }
}
