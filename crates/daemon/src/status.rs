//! The single table mapping every typed serve-layer failure to an HTTP
//! status code.
//!
//! Both functions match **exhaustively, with no wildcard arm**: adding a
//! variant to [`ServeError`] or [`SnapshotError`] without deciding its
//! status is a compile error in this crate, and the unit test below pins
//! each mapping so an accidental re-route fails loudly. Everything the
//! daemon returns for an engine failure flows through here — handlers never
//! pick status codes ad hoc.

use sigma_serve::{ServeError, SnapshotError};

/// A machine-readable kind token for response bodies (`{"error": <kind>}`),
/// stable across releases where the human-readable `Display` text is not.
pub fn kind_for(error: &ServeError) -> &'static str {
    match error {
        ServeError::Io(_) => "io",
        ServeError::Corrupt { .. } => "corrupt_snapshot",
        ServeError::UnsupportedVersion { .. } => "unsupported_snapshot_version",
        ServeError::InvalidQuery { .. } => "invalid_query",
        ServeError::NoOperator => "no_operator",
        ServeError::OperatorMismatch { .. } => "operator_mismatch",
        ServeError::WorkerConfig { .. } => "worker_config",
        ServeError::ShardConfig { .. } => "shard_config",
        ServeError::Shard { source, .. } => kind_for(source),
        ServeError::Snapshot(_) => "snapshot_format",
        ServeError::Model(_) => "model",
        ServeError::Matrix(_) => "matrix",
        ServeError::Nn(_) => "nn",
        ServeError::SimRank(_) => "simrank",
    }
}

/// HTTP status for a [`ServeError`].
///
/// The split is three-way: the *client's request* named something the
/// served graph does not have (`404`), the *client's payload* is unusable
/// against the current state (`409`/`422`), or the *server side* failed
/// (`5xx`). A sharded failure takes the status of its underlying cause —
/// which shard failed is detail for the body, not for the code.
pub fn status_for(error: &ServeError) -> u16 {
    match error {
        // The request addressed a node outside the served graph.
        ServeError::InvalidQuery { .. } => 404,
        // The request is well-formed but conflicts with the serving state:
        // an operator-less engine has no similarity rows to rank (mirrors
        // the daemon's own `no_maintainer` 409 for /v1/repair).
        ServeError::NoOperator => 409,
        // The offered artifact (snapshot, operator, payload) cannot apply
        // to the serving state it was offered to.
        ServeError::OperatorMismatch { .. } => 409,
        // The offered artifact is self-inconsistent or unreadable.
        ServeError::Corrupt { .. } => 422,
        ServeError::UnsupportedVersion { .. } => 422,
        ServeError::Snapshot(e) => status_for_snapshot(e),
        // Server-side failures: configuration and engine internals.
        ServeError::Io(_) => 500,
        ServeError::WorkerConfig { .. } => 500,
        ServeError::ShardConfig { .. } => 500,
        ServeError::Model(_) => 500,
        ServeError::Matrix(_) => 500,
        ServeError::Nn(_) => 500,
        ServeError::SimRank(_) => 500,
        // A shard failure is whatever its cause is.
        ServeError::Shard { source, .. } => status_for(source),
    }
}

/// HTTP status for a [`SnapshotError`] (all reached through
/// `POST /v1/reload` pointing at a bad file).
///
/// Structural defects of the *offered file* are `422` — the request was
/// well-formed but the entity it names cannot be processed. The one
/// server-side case is [`SnapshotError::UnsupportedPlatform`]: the file may
/// be fine, this host just cannot map it.
pub fn status_for_snapshot(error: &SnapshotError) -> u16 {
    match error {
        SnapshotError::Truncated { .. } => 422,
        SnapshotError::BadMagic => 422,
        SnapshotError::UnsupportedVersion { .. } => 422,
        SnapshotError::Misaligned { .. } => 422,
        SnapshotError::Overlap { .. } => 422,
        SnapshotError::DuplicateSection { .. } => 422,
        SnapshotError::MissingSection { .. } => 422,
        SnapshotError::SectionSize { .. } => 422,
        SnapshotError::ChecksumMismatch { .. } => 422,
        SnapshotError::InvalidCsr { .. } => 422,
        SnapshotError::Meta { .. } => 422,
        SnapshotError::UnsupportedPlatform { .. } => 500,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn io() -> std::io::Error {
        std::io::Error::other("x")
    }

    /// One instance of every `ServeError` variant with its pinned status.
    /// A new variant fails `status_for`'s exhaustive match at compile time;
    /// this test additionally fails if an existing mapping is re-routed.
    #[test]
    fn serve_error_table_is_pinned() {
        let table: Vec<(ServeError, u16, &str)> = vec![
            (ServeError::Io(io()), 500, "io"),
            (
                ServeError::Corrupt { reason: "r".into() },
                422,
                "corrupt_snapshot",
            ),
            (
                ServeError::UnsupportedVersion {
                    found: 9,
                    supported: 2,
                },
                422,
                "unsupported_snapshot_version",
            ),
            (
                ServeError::InvalidQuery {
                    node: 7,
                    num_nodes: 3,
                },
                404,
                "invalid_query",
            ),
            (ServeError::NoOperator, 409, "no_operator"),
            (
                ServeError::OperatorMismatch {
                    got: (1, 2),
                    expected: 3,
                },
                409,
                "operator_mismatch",
            ),
            (
                ServeError::WorkerConfig {
                    workers: 9,
                    pool_threads: 1,
                    reason: "r",
                },
                500,
                "worker_config",
            ),
            (
                ServeError::ShardConfig {
                    shards: 0,
                    reason: "r".into(),
                },
                500,
                "shard_config",
            ),
            (
                ServeError::Shard {
                    shard: 2,
                    source: Box::new(ServeError::InvalidQuery {
                        node: 9,
                        num_nodes: 4,
                    }),
                },
                404,
                "invalid_query",
            ),
            (
                ServeError::Snapshot(SnapshotError::BadMagic),
                422,
                "snapshot_format",
            ),
        ];
        for (error, status, kind) in &table {
            assert_eq!(status_for(error), *status, "status of {error}");
            assert_eq!(kind_for(error), *kind, "kind of {error}");
        }
    }

    /// Every `SnapshotError` variant with its pinned status.
    #[test]
    fn snapshot_error_table_is_pinned() {
        let table: Vec<(SnapshotError, u16)> = vec![
            (SnapshotError::Truncated { what: "w".into() }, 422),
            (SnapshotError::BadMagic, 422),
            (SnapshotError::UnsupportedVersion { found: 1 }, 422),
            (SnapshotError::UnsupportedPlatform { reason: "r" }, 500),
            (
                SnapshotError::Misaligned {
                    tag: "T".into(),
                    offset: 1,
                },
                422,
            ),
            (
                SnapshotError::Overlap {
                    a: "A".into(),
                    b: "B".into(),
                },
                422,
            ),
            (SnapshotError::DuplicateSection { tag: "T".into() }, 422),
            (SnapshotError::MissingSection { tag: "T" }, 422),
            (
                SnapshotError::SectionSize {
                    tag: "T".into(),
                    expected: 1,
                    actual: 2,
                },
                422,
            ),
            (SnapshotError::ChecksumMismatch { tag: "T".into() }, 422),
            (
                SnapshotError::InvalidCsr {
                    section: "adjacency",
                    detail: "d".into(),
                },
                422,
            ),
            (SnapshotError::Meta { reason: "r".into() }, 422),
        ];
        for (error, status) in &table {
            assert_eq!(status_for_snapshot(error), *status, "status of {error}");
        }
        // Nested through ServeError, the snapshot status wins.
        assert_eq!(
            status_for(&ServeError::Snapshot(SnapshotError::UnsupportedPlatform {
                reason: "big-endian host"
            })),
            500
        );
    }
}
