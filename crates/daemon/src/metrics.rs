//! Daemon-level metric families, following the engine's `EngineMetrics`
//! idiom: plain relaxed atomics that are always functional (so
//! [`crate::Daemon::stats`] works with the `obs` feature off), additionally
//! registered with the process-wide [`Registry`] under `sigma_daemon_*`
//! names when `obs` is on — where they appear in the `GET /metrics`
//! exposition the daemon itself serves.

use sigma_obs::{Counter, Gauge, Histogram, Registry};
use std::sync::Arc;

/// Live daemon counters; snapshot with [`DaemonMetrics::snapshot`].
pub struct DaemonMetrics {
    /// Connections accepted into the admission queue.
    pub connections_accepted: Arc<Counter>,
    /// Connections refused with `429` because the queue was full.
    pub connections_shed: Arc<Counter>,
    /// Requests fully parsed off a connection.
    pub requests: Arc<Counter>,
    /// Responses written, by status class index (2→2xx, 4→4xx, 5→5xx).
    pub responses_2xx: Arc<Counter>,
    /// 4xx responses written.
    pub responses_4xx: Arc<Counter>,
    /// 5xx responses written.
    pub responses_5xx: Arc<Counter>,
    /// Requests shed with `504` because their deadline expired before any
    /// engine work was done.
    pub deadline_shed: Arc<Counter>,
    /// Requests shed with `429` at the micro-batch queue.
    pub batch_shed: Arc<Counter>,
    /// Malformed requests rejected with a typed 4xx/5xx parse status.
    pub parse_rejects: Arc<Counter>,
    /// Slow-loris style read timeouts (`408` or silent close).
    pub read_timeouts: Arc<Counter>,
    /// Connection-handler panics contained (connection killed, process
    /// alive).
    pub handler_panics: Arc<Counter>,
    /// Single-node predicts that went through the micro-batcher.
    pub coalesced_predicts: Arc<Counter>,
    /// Micro-batch flushes (engine `predict_batch` calls made on behalf of
    /// coalesced predicts).
    pub batch_flushes: Arc<Counter>,
    /// Snapshot hot reloads served through `POST /v1/reload`.
    pub reloads: Arc<Counter>,
    /// Queued connections awaiting a worker (admission queue depth).
    pub queue_depth: Arc<Gauge>,
    /// Requests currently being served by workers.
    pub inflight: Arc<Gauge>,
    /// End-to-end request wall time (parse → response flushed), ns.
    pub request_ns: Arc<Histogram>,
    /// Coalesced micro-batch sizes (1 = a predict that rode alone).
    pub batch_size: Arc<Histogram>,
}

/// A torn-but-monotone snapshot of [`DaemonMetrics`] — same per-field
/// guarantees as the engine's `EngineStats` (each field individually exact
/// and monotone; no cross-field consistency while traffic is in flight).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DaemonStats {
    /// Connections accepted into the admission queue.
    pub connections_accepted: u64,
    /// Connections refused with `429` (queue full).
    pub connections_shed: u64,
    /// Requests fully parsed.
    pub requests: u64,
    /// 2xx responses written.
    pub responses_2xx: u64,
    /// 4xx responses written.
    pub responses_4xx: u64,
    /// 5xx responses written.
    pub responses_5xx: u64,
    /// Requests shed with `504` before engine work.
    pub deadline_shed: u64,
    /// Requests shed with `429` at the micro-batch queue.
    pub batch_shed: u64,
    /// Typed parse rejections.
    pub parse_rejects: u64,
    /// Read timeouts observed.
    pub read_timeouts: u64,
    /// Handler panics contained.
    pub handler_panics: u64,
    /// Predicts served through the micro-batcher.
    pub coalesced_predicts: u64,
    /// Micro-batch flushes.
    pub batch_flushes: u64,
    /// Hot reloads applied.
    pub reloads: u64,
    /// Current admission-queue depth.
    pub queue_depth: i64,
    /// Requests currently in flight.
    pub inflight: i64,
}

impl DaemonMetrics {
    /// Fresh counters, registered with the global registry when `obs` is
    /// compiled in.
    pub fn new() -> Self {
        let metrics = Self {
            connections_accepted: Arc::new(Counter::new()),
            connections_shed: Arc::new(Counter::new()),
            requests: Arc::new(Counter::new()),
            responses_2xx: Arc::new(Counter::new()),
            responses_4xx: Arc::new(Counter::new()),
            responses_5xx: Arc::new(Counter::new()),
            deadline_shed: Arc::new(Counter::new()),
            batch_shed: Arc::new(Counter::new()),
            parse_rejects: Arc::new(Counter::new()),
            read_timeouts: Arc::new(Counter::new()),
            handler_panics: Arc::new(Counter::new()),
            coalesced_predicts: Arc::new(Counter::new()),
            batch_flushes: Arc::new(Counter::new()),
            reloads: Arc::new(Counter::new()),
            queue_depth: Arc::new(Gauge::new()),
            inflight: Arc::new(Gauge::new()),
            request_ns: Arc::new(Histogram::new()),
            batch_size: Arc::new(Histogram::new()),
        };
        if sigma_obs::ENABLED {
            let registry = Registry::global();
            registry.register_arc_counter(
                "sigma_daemon_connections_accepted_total",
                "connections admitted into the bounded queue",
                &metrics.connections_accepted,
            );
            registry.register_arc_counter(
                "sigma_daemon_connections_shed_total",
                "connections refused with 429 because the admission queue was full",
                &metrics.connections_shed,
            );
            registry.register_arc_counter(
                "sigma_daemon_requests_total",
                "requests fully parsed off accepted connections",
                &metrics.requests,
            );
            registry.register_arc_counter(
                "sigma_daemon_responses_2xx_total",
                "successful responses written",
                &metrics.responses_2xx,
            );
            registry.register_arc_counter(
                "sigma_daemon_responses_4xx_total",
                "client-error responses written",
                &metrics.responses_4xx,
            );
            registry.register_arc_counter(
                "sigma_daemon_responses_5xx_total",
                "server-error responses written",
                &metrics.responses_5xx,
            );
            registry.register_arc_counter(
                "sigma_daemon_deadline_shed_total",
                "requests shed with 504 before any engine work",
                &metrics.deadline_shed,
            );
            registry.register_arc_counter(
                "sigma_daemon_batch_shed_total",
                "requests shed with 429 at the micro-batch queue",
                &metrics.batch_shed,
            );
            registry.register_arc_counter(
                "sigma_daemon_parse_rejects_total",
                "malformed requests rejected with a typed status",
                &metrics.parse_rejects,
            );
            registry.register_arc_counter(
                "sigma_daemon_read_timeouts_total",
                "socket reads that timed out mid-request (slow-loris defence)",
                &metrics.read_timeouts,
            );
            registry.register_arc_counter(
                "sigma_daemon_handler_panics_total",
                "connection-handler panics contained without killing the process",
                &metrics.handler_panics,
            );
            registry.register_arc_counter(
                "sigma_daemon_coalesced_predicts_total",
                "single-node predicts served through the micro-batcher",
                &metrics.coalesced_predicts,
            );
            registry.register_arc_counter(
                "sigma_daemon_batch_flushes_total",
                "micro-batch flushes (one engine predict_batch per flush)",
                &metrics.batch_flushes,
            );
            registry.register_arc_counter(
                "sigma_daemon_reloads_total",
                "snapshot hot reloads served through POST /v1/reload",
                &metrics.reloads,
            );
            registry.register_arc_gauge(
                "sigma_daemon_queue_depth",
                "connections waiting in the admission queue",
                &metrics.queue_depth,
            );
            registry.register_arc_gauge(
                "sigma_daemon_inflight_requests",
                "requests currently being served",
                &metrics.inflight,
            );
            registry.register_arc_histogram(
                "sigma_daemon_request_ns",
                "end-to-end request wall time in nanoseconds",
                &metrics.request_ns,
            );
            registry.register_arc_histogram(
                "sigma_daemon_batch_size",
                "coalesced micro-batch sizes",
                &metrics.batch_size,
            );
        }
        metrics
    }

    /// Independent relaxed loads of every counter.
    pub fn snapshot(&self) -> DaemonStats {
        DaemonStats {
            connections_accepted: self.connections_accepted.get(),
            connections_shed: self.connections_shed.get(),
            requests: self.requests.get(),
            responses_2xx: self.responses_2xx.get(),
            responses_4xx: self.responses_4xx.get(),
            responses_5xx: self.responses_5xx.get(),
            deadline_shed: self.deadline_shed.get(),
            batch_shed: self.batch_shed.get(),
            parse_rejects: self.parse_rejects.get(),
            read_timeouts: self.read_timeouts.get(),
            handler_panics: self.handler_panics.get(),
            coalesced_predicts: self.coalesced_predicts.get(),
            batch_flushes: self.batch_flushes.get(),
            reloads: self.reloads.get(),
            queue_depth: self.queue_depth.get(),
            inflight: self.inflight.get(),
        }
    }

    /// Bumps the response-class counter for `status`.
    pub fn count_response(&self, status: u16) {
        match status / 100 {
            2 => self.responses_2xx.inc(),
            4 => self.responses_4xx.inc(),
            5 => self.responses_5xx.inc(),
            _ => {}
        }
    }
}

impl Default for DaemonMetrics {
    fn default() -> Self {
        Self::new()
    }
}
