//! The daemon proper: acceptor, bounded admission queue, worker pool,
//! request dispatch, and graceful drain.
//!
//! Thread model (no async runtime — the whole daemon is `std` threads over
//! blocking sockets):
//!
//! * **acceptor** — polls a non-blocking listener; every accepted socket
//!   either enters the bounded admission queue or is shed on the spot with
//!   `429` + `Retry-After` (admission control happens *before* a worker is
//!   tied up);
//! * **workers** (`DaemonConfig::workers` of them) — pop connections, run a
//!   keep-alive request loop, and dispatch. Each request executes under
//!   [`std::panic::catch_unwind`]: a handler panic kills *that connection*
//!   (with a best-effort `500`), bumps `handler_panics`, and the worker —
//!   and the process — live on;
//! * **micro-batcher** — one flusher coalescing concurrent single-node
//!   predicts (see [`crate::batch`]).
//!
//! Deadlines: each request gets `min(x-sigma-deadline-ms, default)` of
//! budget measured from the instant its bytes finished parsing. A request
//! found expired is shed with `504` **before any engine work** — under
//! overload the daemon spends kernel time only on requests someone is still
//! waiting for.
//!
//! Drain: [`Daemon::shutdown`] stops the acceptor, waits up to the drain
//! deadline for queued + in-flight work to finish (responses during a drain
//! advertise `connection: close`), then hard-stops: workers exit at their
//! next loop edge and any connection still queued is answered `503`.

use crate::backend::Backend;
use crate::batch::{BatchFailure, MicroBatcher, SubmitError};
use crate::http::{self, HttpError, HttpLimits, Request, Response};
use crate::json::{self, Json};
use crate::metrics::{DaemonMetrics, DaemonStats};
use crate::status::{kind_for, status_for};
use sigma_serve::{MappedSnapshot, Prediction, ServeError, ServeSnapshot, SnapshotError};
use sigma_simrank::{DynamicSimRank, EdgeUpdate};
use std::collections::VecDeque;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tunables for one daemon instance. `Default` is sized for tests and small
/// deployments; production configs mostly raise `workers` and
/// `queue_capacity`.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Port to bind on `127.0.0.1` (0 = OS-assigned, read back via
    /// [`Daemon::local_addr`]).
    pub port: u16,
    /// Worker threads serving accepted connections.
    pub workers: usize,
    /// Admission-queue bound: connections waiting for a worker beyond this
    /// are shed with `429`.
    pub queue_capacity: usize,
    /// Default per-request deadline when the client sends no
    /// `x-sigma-deadline-ms` header.
    pub default_deadline_ms: u64,
    /// How long [`Daemon::shutdown`] waits for queued + in-flight work
    /// before hard-stopping.
    pub drain_deadline_ms: u64,
    /// Socket read timeout — bounds how long a slow-loris writer can hold a
    /// worker (also the keep-alive idle timeout).
    pub read_timeout_ms: u64,
    /// Socket write timeout — bounds slow readers.
    pub write_timeout_ms: u64,
    /// Wire limits (request line, header count, body bytes).
    pub limits: HttpLimits,
    /// Micro-batch coalescing window for `POST /v1/predict`, in
    /// microseconds. `0` disables coalescing (predicts hit the engine
    /// directly from the worker thread).
    pub micro_batch_window_us: u64,
    /// Largest coalesced batch one flush may serve.
    pub micro_batch_max: usize,
    /// Bound on predicts waiting in the micro-batch queue.
    pub micro_batch_capacity: usize,
    /// Upper bound on `nodes` per `POST /v1/predict_batch`.
    pub max_batch_nodes: usize,
    /// Enables `POST /v1/panic` (fault injection for the e2e suite).
    pub debug_endpoints: bool,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        Self {
            port: 0,
            workers: 4,
            queue_capacity: 64,
            default_deadline_ms: 2_000,
            drain_deadline_ms: 5_000,
            read_timeout_ms: 5_000,
            write_timeout_ms: 5_000,
            limits: HttpLimits::default(),
            micro_batch_window_us: 200,
            micro_batch_max: 64,
            micro_batch_capacity: 256,
            max_batch_nodes: 4_096,
            debug_endpoints: false,
        }
    }
}

/// Why the daemon failed to start.
#[derive(Debug)]
pub enum DaemonError {
    /// Binding or configuring the listener failed.
    Io(std::io::Error),
    /// The configuration is unusable as given.
    Config(&'static str),
}

impl std::fmt::Display for DaemonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DaemonError::Io(e) => write!(f, "daemon io: {e}"),
            DaemonError::Config(reason) => write!(f, "daemon config: {reason}"),
        }
    }
}

impl std::error::Error for DaemonError {}

impl From<std::io::Error> for DaemonError {
    fn from(e: std::io::Error) -> Self {
        DaemonError::Io(e)
    }
}

/// What [`Daemon::shutdown`] observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Whether all queued + in-flight work finished inside the drain
    /// deadline.
    pub drained_cleanly: bool,
    /// Connections still queued at hard-stop, answered `503`.
    pub queued_rejected: usize,
}

struct Shared {
    config: DaemonConfig,
    backend: Arc<Backend>,
    maintainer: Option<Mutex<DynamicSimRank>>,
    metrics: Arc<DaemonMetrics>,
    batcher: Option<MicroBatcher>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_arrived: Condvar,
    /// Soft stop: acceptor closes, responses advertise close, drain begins.
    draining: AtomicBool,
    /// Hard stop: workers exit at the next loop edge.
    hard_stop: AtomicBool,
}

/// A running serving daemon. Dropping it performs a full
/// [`Daemon::shutdown`].
pub struct Daemon {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Daemon {
    /// Binds `127.0.0.1:port` and starts the acceptor, workers, and
    /// micro-batcher.
    pub fn start(
        backend: Backend,
        maintainer: Option<DynamicSimRank>,
        config: DaemonConfig,
    ) -> Result<Daemon, DaemonError> {
        if config.workers == 0 {
            return Err(DaemonError::Config("workers must be >= 1"));
        }
        if config.queue_capacity == 0 {
            return Err(DaemonError::Config("queue_capacity must be >= 1"));
        }
        if config.micro_batch_max == 0 || config.micro_batch_capacity == 0 {
            return Err(DaemonError::Config("micro-batch sizing must be >= 1"));
        }
        let listener = TcpListener::bind(("127.0.0.1", config.port))?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;

        let backend = Arc::new(backend);
        let metrics = Arc::new(DaemonMetrics::new());
        let batcher = if config.micro_batch_window_us > 0 {
            Some(MicroBatcher::start(
                backend.clone(),
                metrics.clone(),
                Duration::from_micros(config.micro_batch_window_us),
                config.micro_batch_max,
                config.micro_batch_capacity,
            ))
        } else {
            None
        };
        let shared = Arc::new(Shared {
            config: config.clone(),
            backend,
            maintainer: maintainer.map(Mutex::new),
            metrics,
            batcher,
            queue: Mutex::new(VecDeque::new()),
            queue_arrived: Condvar::new(),
            draining: AtomicBool::new(false),
            hard_stop: AtomicBool::new(false),
        });

        let acceptor = {
            let shared = shared.clone();
            std::thread::Builder::new()
                .name("sigma-daemon-accept".into())
                .spawn(move || acceptor_loop(shared, listener))
                .map_err(DaemonError::Io)?
        };
        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let shared = shared.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("sigma-daemon-worker-{i}"))
                    .spawn(move || worker_loop(shared))
                    .map_err(DaemonError::Io)?,
            );
        }
        Ok(Daemon {
            shared,
            local_addr,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address (useful with `port: 0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A snapshot of the daemon's own counters.
    pub fn stats(&self) -> DaemonStats {
        self.shared.metrics.snapshot()
    }

    /// Stops accepting, drains queued + in-flight work within the drain
    /// deadline, then hard-stops and joins every thread.
    pub fn shutdown(mut self) -> DrainReport {
        self.shutdown_inner()
    }

    fn shutdown_inner(&mut self) -> DrainReport {
        self.shared.draining.store(true, Ordering::Release);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
        // Drain phase: nothing new is arriving; wait for the queue to empty
        // and in-flight requests to finish.
        let deadline = Instant::now() + Duration::from_millis(self.shared.config.drain_deadline_ms);
        let drained_cleanly = loop {
            let queued = self
                .shared
                .queue
                .lock()
                .expect("daemon queue poisoned")
                .len();
            let inflight = self.shared.metrics.inflight.get();
            if queued == 0 && inflight == 0 {
                break true;
            }
            if Instant::now() >= deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(2));
        };
        self.shared.hard_stop.store(true, Ordering::Release);
        self.shared.queue_arrived.notify_all();
        // Anything still queued past the deadline gets a clean 503 instead
        // of a silent RST.
        let leftovers: Vec<TcpStream> = {
            let mut queue = self.shared.queue.lock().expect("daemon queue poisoned");
            queue.drain(..).collect()
        };
        let queued_rejected = leftovers.len();
        for mut stream in leftovers {
            self.shared.metrics.queue_depth.add(-1);
            let mut resp = Response::error(503, "draining", "daemon is shutting down");
            resp.close = true;
            let _ = http::write_response(&mut stream, &resp);
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        // The batcher drains its own queue before stopping (MicroBatcher
        // shutdown runs on drop of Shared's field when the last Arc goes,
        // but workers are gone now so trigger it deterministically).
        // Safety: we are the only Daemon over this Shared.
        DrainReport {
            drained_cleanly,
            queued_rejected,
        }
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            let _ = self.shutdown_inner();
        }
    }
}

fn acceptor_loop(shared: Arc<Shared>, listener: TcpListener) {
    let read_timeout = Duration::from_millis(shared.config.read_timeout_ms.max(1));
    let write_timeout = Duration::from_millis(shared.config.write_timeout_ms.max(1));
    while !shared.draining.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_read_timeout(Some(read_timeout));
                let _ = stream.set_write_timeout(Some(write_timeout));
                let _ = stream.set_nodelay(true);
                let shed = {
                    let mut queue = shared.queue.lock().expect("daemon queue poisoned");
                    if queue.len() >= shared.config.queue_capacity {
                        Some(stream)
                    } else {
                        queue.push_back(stream);
                        None
                    }
                };
                match shed {
                    None => {
                        shared.metrics.connections_accepted.inc();
                        shared.metrics.queue_depth.add(1);
                        shared.queue_arrived.notify_one();
                    }
                    Some(mut stream) => {
                        // Shed at the door: the worker pool never sees this
                        // connection, so overload cannot consume engine
                        // time.
                        shared.metrics.connections_shed.inc();
                        let mut resp =
                            Response::error(429, "admission_queue_full", "daemon at capacity");
                        resp.extra_headers.push(("retry-after", "1".to_string()));
                        resp.close = true;
                        shared.metrics.count_response(resp.status);
                        let _ = http::write_response(&mut stream, &resp);
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

fn worker_loop(shared: Arc<Shared>) {
    loop {
        let stream = {
            let mut queue = shared.queue.lock().expect("daemon queue poisoned");
            loop {
                if shared.hard_stop.load(Ordering::Acquire) {
                    return;
                }
                if let Some(stream) = queue.pop_front() {
                    shared.metrics.queue_depth.add(-1);
                    break stream;
                }
                let (guard, _) = shared
                    .queue_arrived
                    .wait_timeout(queue, Duration::from_millis(25))
                    .expect("daemon queue poisoned");
                queue = guard;
            }
        };
        handle_connection(&shared, stream);
    }
}

/// Runs the keep-alive request loop for one admitted connection.
fn handle_connection(shared: &Shared, stream: TcpStream) {
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(clone) => clone,
        Err(_) => return,
    });
    let mut writer = stream;
    loop {
        if shared.hard_stop.load(Ordering::Acquire) {
            return;
        }
        let request = http::read_request(&mut reader, &shared.config.limits);
        let arrival = Instant::now();
        let request = match request {
            Ok(request) => request,
            Err(HttpError::Closed) => return,
            Err(HttpError::Io(_)) => return,
            Err(e) => {
                match e {
                    HttpError::Timeout => shared.metrics.read_timeouts.inc(),
                    _ => shared.metrics.parse_rejects.inc(),
                }
                if let Some(status) = e.status() {
                    let mut resp = Response::error(status, "bad_request", &e.to_string());
                    resp.close = true;
                    shared.metrics.count_response(resp.status);
                    let _ = http::write_response(&mut writer, &resp);
                }
                return;
            }
        };
        shared.metrics.requests.inc();
        shared.metrics.inflight.add(1);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handle_request(shared, &request, arrival)
        }));
        shared.metrics.inflight.add(-1);
        match outcome {
            Ok(mut resp) => {
                // Drains and client wishes both force close; a handler can
                // also force it (e.g. after a state-changing failure).
                resp.close = resp.close
                    || request.close
                    || shared.draining.load(Ordering::Acquire)
                    || shared.hard_stop.load(Ordering::Acquire);
                shared.metrics.count_response(resp.status);
                if sigma_obs::ENABLED {
                    shared
                        .metrics
                        .request_ns
                        .record(arrival.elapsed().as_nanos() as u64);
                }
                if http::write_response(&mut writer, &resp).is_err() {
                    return;
                }
                if resp.close {
                    return;
                }
            }
            Err(_) => {
                // The panic is contained to this connection: respond 500 if
                // we still can (headers are never streamed early, so we
                // can), close, and let the worker carry on.
                shared.metrics.handler_panics.inc();
                let mut resp = Response::error(500, "handler_panic", "request handler panicked");
                resp.close = true;
                shared.metrics.count_response(resp.status);
                let _ = http::write_response(&mut writer, &resp);
                return;
            }
        }
    }
}

/// Parses the per-request deadline: `min(header, default)` of budget from
/// `arrival`. A malformed header is a `400`, not a silent default.
fn request_deadline(
    shared: &Shared,
    request: &Request,
    arrival: Instant,
) -> Result<Instant, Response> {
    let default_ms = shared.config.default_deadline_ms;
    let budget_ms = match request.header("x-sigma-deadline-ms") {
        None => default_ms,
        Some(raw) => match raw.trim().parse::<u64>() {
            Ok(0) | Err(_) => {
                return Err(Response::error(
                    400,
                    "bad_deadline",
                    "x-sigma-deadline-ms must be a positive integer",
                ))
            }
            Ok(ms) => ms,
        },
    };
    Ok(arrival + Duration::from_millis(budget_ms))
}

/// Sheds the request with `504` if its deadline has already expired —
/// called immediately before any engine work.
fn check_deadline(shared: &Shared, deadline: Instant) -> Option<Response> {
    if Instant::now() >= deadline {
        shared.metrics.deadline_shed.inc();
        Some(Response::error(
            504,
            "deadline_expired",
            "deadline expired before the engine was invoked",
        ))
    } else {
        None
    }
}

fn handle_request(shared: &Shared, request: &Request, arrival: Instant) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/predict") => handle_predict(shared, request, arrival),
        ("POST", "/v1/predict_batch") => handle_predict_batch(shared, request, arrival),
        ("POST", "/v1/similar") => handle_similar(shared, request, arrival),
        ("POST", "/v1/edges") => handle_edges(shared, request, arrival),
        ("POST", "/v1/repair") => handle_repair(shared, request, arrival),
        ("POST", "/v1/reload") => handle_reload(shared, request),
        ("GET", "/v1/stats") => handle_stats(shared),
        ("GET", "/metrics") => handle_metrics(),
        ("GET", "/healthz") => handle_healthz(shared),
        ("POST", "/v1/panic") if shared.config.debug_endpoints => {
            panic!("injected panic (debug endpoint)")
        }
        (
            _,
            "/v1/predict" | "/v1/predict_batch" | "/v1/similar" | "/v1/edges" | "/v1/repair"
            | "/v1/reload" | "/v1/stats" | "/metrics" | "/healthz",
        ) => Response::error(405, "method_not_allowed", "wrong method for this path"),
        _ => Response::error(404, "unknown_path", "no such endpoint"),
    }
}

/// Parses the request body as a JSON object, mapping parse failures to a
/// typed `400`.
fn parse_body(request: &Request) -> Result<Json, Response> {
    json::parse(&request.body)
        .map_err(|e| Response::error(400, "bad_json", &format!("request body: {e}")))
}

fn engine_error(error: &ServeError) -> Response {
    Response::error(status_for(error), kind_for(error), &error.to_string())
}

fn prediction_json(p: &Prediction) -> String {
    let mut out = String::with_capacity(64 + 16 * p.logits.len());
    prediction_json_into(&mut out, p);
    out
}

fn prediction_json_into(out: &mut String, p: &Prediction) {
    use std::fmt::Write as _;
    let _ = write!(
        out,
        "{{\"node\": {}, \"label\": {}, \"cached\": {}, \"stale\": {}, \"logits\": [",
        p.node, p.label, p.cached, p.stale
    );
    for (i, logit) in p.logits.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        // Rust's shortest-roundtrip float formatting keeps this bitwise
        // exact across the wire (see json::tests::float_roundtrip_is_bitwise).
        let _ = write!(out, "{logit}");
    }
    out.push_str("]}");
}

fn handle_predict(shared: &Shared, request: &Request, arrival: Instant) -> Response {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(resp) => return resp,
    };
    let node = match body.get("node").and_then(Json::as_index) {
        Some(node) => node,
        None => {
            return Response::error(
                400,
                "bad_json",
                "field `node` (non-negative integer) required",
            )
        }
    };
    let deadline = match request_deadline(shared, request, arrival) {
        Ok(deadline) => deadline,
        Err(resp) => return resp,
    };
    if let Some(resp) = check_deadline(shared, deadline) {
        return resp;
    }
    match &shared.batcher {
        Some(batcher) => match batcher.submit(node, deadline) {
            Ok(rx) => match rx.recv() {
                Ok(Ok(p)) => Response::json(200, prediction_json(&p)),
                Ok(Err(BatchFailure::Deadline)) => Response::error(
                    504,
                    "deadline_expired",
                    "deadline expired in the micro-batch queue",
                ),
                Ok(Err(BatchFailure::Engine(e))) => engine_error(&e),
                Ok(Err(BatchFailure::Stopped)) | Err(_) => {
                    Response::error(503, "batcher_stopped", "daemon is shutting down")
                }
            },
            Err(SubmitError::Shed) => {
                shared.metrics.batch_shed.inc();
                let mut resp =
                    Response::error(429, "batch_queue_full", "micro-batch queue at capacity");
                resp.extra_headers.push(("retry-after", "1".to_string()));
                resp
            }
            Err(SubmitError::Stopped) => {
                Response::error(503, "batcher_stopped", "daemon is shutting down")
            }
        },
        None => match shared.backend.predict(node) {
            Ok(p) => Response::json(200, prediction_json(&p)),
            Err(e) => engine_error(&e),
        },
    }
}

fn handle_predict_batch(shared: &Shared, request: &Request, arrival: Instant) -> Response {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(resp) => return resp,
    };
    let nodes = match body.get("nodes").and_then(Json::as_arr) {
        Some(arr) => arr,
        None => return Response::error(400, "bad_json", "field `nodes` (array) required"),
    };
    if nodes.len() > shared.config.max_batch_nodes {
        return Response::error(
            413,
            "batch_too_large",
            &format!(
                "{} nodes exceeds the per-request cap of {}",
                nodes.len(),
                shared.config.max_batch_nodes
            ),
        );
    }
    let mut ids = Vec::with_capacity(nodes.len());
    for value in nodes {
        match value.as_index() {
            Some(id) => ids.push(id),
            None => {
                return Response::error(
                    400,
                    "bad_json",
                    "`nodes` entries must be non-negative integers",
                )
            }
        }
    }
    let deadline = match request_deadline(shared, request, arrival) {
        Ok(deadline) => deadline,
        Err(resp) => return resp,
    };
    if let Some(resp) = check_deadline(shared, deadline) {
        return resp;
    }
    match shared.backend.predict_batch(&ids) {
        Ok(predictions) => {
            let mut out = String::with_capacity(64 * predictions.len().max(1));
            out.push_str("{\"predictions\": [");
            for (i, p) in predictions.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                prediction_json_into(&mut out, p);
            }
            use std::fmt::Write as _;
            let _ = write!(out, "], \"count\": {}}}", predictions.len());
            Response::json(200, out)
        }
        Err(e) => engine_error(&e),
    }
}

/// `POST /v1/similar` — `{"node": n, "k": k}` → a top-level JSON array
/// `[{"node": m, "score": s}, ...]` ranked score-desc / id-asc (the
/// engine's pinned determinism contract). Scores use the same
/// shortest-roundtrip decimal formatting as logits, so a sharded and a
/// single-engine daemon answer with bitwise-identical bodies.
///
/// Similarity is a pure read with no completion obligation, so a draining
/// daemon refuses new queries outright with `503` (mirroring the 503 the
/// leftover queue gets) rather than racing the worker teardown.
fn handle_similar(shared: &Shared, request: &Request, arrival: Instant) -> Response {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(resp) => return resp,
    };
    let node = match body.get("node").and_then(Json::as_index) {
        Some(node) => node,
        None => {
            return Response::error(
                400,
                "bad_json",
                "field `node` (non-negative integer) required",
            )
        }
    };
    let k = match body.get("k").and_then(Json::as_index) {
        Some(k) if k > 0 => k,
        _ => return Response::error(400, "bad_json", "field `k` (positive integer) required"),
    };
    let deadline = match request_deadline(shared, request, arrival) {
        Ok(deadline) => deadline,
        Err(resp) => return resp,
    };
    if let Some(resp) = check_deadline(shared, deadline) {
        return resp;
    }
    if shared.draining.load(Ordering::Acquire) {
        return Response::error(503, "draining", "daemon is shutting down");
    }
    match shared.backend.most_similar(node, k) {
        Ok(similar) => {
            use std::fmt::Write as _;
            let mut out = String::with_capacity(2 + 32 * similar.len());
            out.push('[');
            for (i, s) in similar.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                // Shortest-roundtrip float formatting, like logits: the
                // score bits survive the wire exactly.
                let _ = write!(out, "{{\"node\": {}, \"score\": {}}}", s.node, s.score);
            }
            out.push(']');
            Response::json(200, out)
        }
        Err(e) => engine_error(&e),
    }
}

fn handle_edges(shared: &Shared, request: &Request, arrival: Instant) -> Response {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(resp) => return resp,
    };
    let raw = match body.get("updates").and_then(Json::as_arr) {
        Some(arr) => arr,
        None => return Response::error(400, "bad_json", "field `updates` (array) required"),
    };
    let mut updates = Vec::with_capacity(raw.len());
    for entry in raw {
        let op = entry.get("op").and_then(Json::as_str);
        let u = entry.get("u").and_then(Json::as_index);
        let v = entry.get("v").and_then(Json::as_index);
        let num_nodes = shared.backend.num_nodes();
        match (op, u, v) {
            (Some(_), Some(u), Some(v)) if u >= num_nodes || v >= num_nodes => {
                return engine_error(&ServeError::InvalidQuery {
                    node: u.max(v),
                    num_nodes,
                })
            }
            (Some("insert"), Some(u), Some(v)) => updates.push(EdgeUpdate::Insert(u, v)),
            (Some("delete"), Some(u), Some(v)) => updates.push(EdgeUpdate::Delete(u, v)),
            _ => {
                return Response::error(
                    400,
                    "bad_json",
                    "each update needs op (insert|delete), u, v",
                )
            }
        }
    }
    let deadline = match request_deadline(shared, request, arrival) {
        Ok(deadline) => deadline,
        Err(resp) => return resp,
    };
    if let Some(resp) = check_deadline(shared, deadline) {
        return resp;
    }
    // Keep the maintainer's graph in lockstep with the engine's staleness
    // tracker, so a later /v1/repair starts from a consistent lineage. A
    // maintainer rejection (e.g. an out-of-range endpoint) aborts the whole
    // request *before* the engine tracker sees anything — the two sides
    // never diverge.
    if let Some(maintainer) = &shared.maintainer {
        let mut maintainer = maintainer.lock().expect("maintainer poisoned");
        if let Err(e) = maintainer.apply_batch(&updates) {
            return engine_error(&ServeError::from(e));
        }
    }
    match shared.backend.apply_edge_updates(&updates) {
        Ok(invalidated) => Response::json(
            200,
            format!(
                "{{\"applied\": {}, \"invalidated\": {}, \"maintainer\": {}}}",
                updates.len(),
                invalidated,
                shared.maintainer.is_some()
            ),
        ),
        Err(e) => engine_error(&e),
    }
}

fn handle_repair(shared: &Shared, request: &Request, arrival: Instant) -> Response {
    let maintainer = match &shared.maintainer {
        Some(maintainer) => maintainer,
        None => {
            return Response::error(
                409,
                "no_maintainer",
                "daemon was started without a SimRank maintainer; /v1/repair unavailable",
            )
        }
    };
    let deadline = match request_deadline(shared, request, arrival) {
        Ok(deadline) => deadline,
        Err(resp) => return resp,
    };
    if let Some(resp) = check_deadline(shared, deadline) {
        return resp;
    }
    let mut maintainer = maintainer.lock().expect("maintainer poisoned");
    match shared.backend.repair_from(&mut maintainer) {
        Ok(summary) => {
            let fanout = match summary.fanout {
                Some((touched, skipped)) => format!("[{touched}, {skipped}]"),
                None => "null".to_string(),
            };
            Response::json(
                200,
                format!(
                    "{{\"full_refresh\": {}, \"operator_rows\": {}, \"embedding_rows\": {}, \
                     \"fanout\": {}}}",
                    summary.full_refresh, summary.operator_rows, summary.embedding_rows, fanout
                ),
            )
        }
        Err(e) => engine_error(&e),
    }
}

fn handle_reload(shared: &Shared, request: &Request) -> Response {
    let body = match parse_body(request) {
        Ok(body) => body,
        Err(resp) => return resp,
    };
    let path = match body.get("path").and_then(Json::as_str) {
        Some(path) => path.to_string(),
        None => return Response::error(400, "bad_json", "field `path` (string) required"),
    };
    if !shared.backend.supports_reload() {
        return Response::error(
            501,
            "reload_unsupported",
            "sharded backends reload per shard, not through this endpoint",
        );
    }
    // Prefer the zero-copy mapped path; fall back to eager decode for v1
    // snapshot files.
    let result = match MappedSnapshot::open(&path) {
        Ok(mapped) => shared.backend.hot_reload_mapped(Arc::new(mapped)),
        Err(ServeError::Snapshot(SnapshotError::UnsupportedVersion { .. }))
        | Err(ServeError::Snapshot(SnapshotError::BadMagic)) => {
            ServeSnapshot::load(&path).and_then(|snapshot| shared.backend.hot_reload(&snapshot))
        }
        Err(e) => Err(e),
    };
    match result {
        Ok(()) => {
            shared.metrics.reloads.inc();
            Response::json(200, format!("{{\"reloaded\": {}}}", json::quote(&path)))
        }
        Err(e) => engine_error(&e),
    }
}

fn handle_stats(shared: &Shared) -> Response {
    let d = shared.metrics.snapshot();
    let e = shared.backend.engine_stats();
    let registry = sigma_obs::snapshot().to_json();
    let body = format!(
        "{{\n\"daemon\": {{\"connections_accepted\": {}, \"connections_shed\": {}, \
         \"requests\": {}, \"responses_2xx\": {}, \"responses_4xx\": {}, \"responses_5xx\": {}, \
         \"deadline_shed\": {}, \"batch_shed\": {}, \"parse_rejects\": {}, \
         \"read_timeouts\": {}, \"handler_panics\": {}, \"coalesced_predicts\": {}, \
         \"batch_flushes\": {}, \"reloads\": {}, \"queue_depth\": {}, \"inflight\": {}}},\n\
         \"engine\": {{\"queries\": {}, \"similar_queries\": {}, \"cache_hits\": {}, \
         \"cache_misses\": {}, \"batches_served\": {}, \"rows_sliced\": {}, \
         \"stale_serves\": {}}},\n\
         \"registry\": {}}}",
        d.connections_accepted,
        d.connections_shed,
        d.requests,
        d.responses_2xx,
        d.responses_4xx,
        d.responses_5xx,
        d.deadline_shed,
        d.batch_shed,
        d.parse_rejects,
        d.read_timeouts,
        d.handler_panics,
        d.coalesced_predicts,
        d.batch_flushes,
        d.reloads,
        d.queue_depth,
        d.inflight,
        e.nodes_served,
        e.similar_queries,
        e.cache_hits,
        e.cache_misses,
        e.batches_served,
        e.rows_invalidated,
        e.snapshot_reloads,
        registry,
    );
    Response::json(200, body)
}

fn handle_metrics() -> Response {
    Response::text(200, sigma_obs::snapshot().to_prometheus())
}

fn handle_healthz(shared: &Shared) -> Response {
    let status = if shared.draining.load(Ordering::Acquire) {
        "draining"
    } else {
        "ok"
    };
    Response::json(
        200,
        format!(
            "{{\"status\": \"{status}\", \"nodes\": {}, \"classes\": {}}}",
            shared.backend.num_nodes(),
            shared.backend.num_classes()
        ),
    )
}
