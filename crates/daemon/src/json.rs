//! A minimal JSON layer for the daemon's request/response bodies.
//!
//! The build environment has no network access and therefore no serde; the
//! daemon's payloads are a handful of flat shapes (`{"node": 3}`,
//! `{"nodes": [..]}`, edit lists), so a small recursive-descent parser with
//! explicit depth and size limits is both sufficient and auditable. Typed
//! [`JsonError`]s name the exact offence so malformed bodies map to `400`
//! responses that say what was wrong.

use std::fmt;

/// Maximum nesting depth accepted by [`parse`] — deep enough for any daemon
/// payload, shallow enough that a hostile `[[[[…]]]]` body cannot overflow
/// the parser's stack.
const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys are rejected at parse
    /// time — a request that says `"node"` twice is ambiguous, not
    /// last-writer-wins).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other variants).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite `f64`.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer that fits `usize` exactly.
    pub fn as_index(&self) -> Option<usize> {
        let n = self.as_num()?;
        // `u64::MAX as f64` rounds *up* to exactly 2^64, so the bound must
        // be strict: an inclusive `..=` here accepted the literal
        // 18446744073709551616 (2^64) and the saturating `as` cast then
        // silently mapped it to `usize::MAX`. With `<`, the largest
        // accepted double is 2^64 − 2048 (the f64 predecessor of 2^64),
        // which the cast converts exactly.
        if n.fract() != 0.0 || n < 0.0 || n >= u64::MAX as f64 {
            return None;
        }
        Some(n as usize)
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Why a body failed to parse. Rendered into `400` response bodies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// The body ended mid-value.
    UnexpectedEnd,
    /// An unexpected byte at `offset`.
    Unexpected {
        /// Byte offset of the offence.
        offset: usize,
        /// What was found there.
        found: char,
    },
    /// Nesting beyond [`MAX_DEPTH`].
    TooDeep,
    /// A number literal that does not parse as a finite `f64`.
    BadNumber {
        /// The offending literal.
        literal: String,
    },
    /// A string with an invalid escape or raw control byte.
    BadString {
        /// Byte offset of the offence.
        offset: usize,
    },
    /// The same key twice in one object.
    DuplicateKey {
        /// The repeated key.
        key: String,
    },
    /// Trailing non-whitespace after the top-level value.
    TrailingBytes {
        /// Byte offset where the garbage starts.
        offset: usize,
    },
    /// The body is not valid UTF-8.
    NotUtf8,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::UnexpectedEnd => write!(f, "body ends mid-value"),
            JsonError::Unexpected { offset, found } => {
                write!(f, "unexpected character {found:?} at byte {offset}")
            }
            JsonError::TooDeep => write!(f, "nesting exceeds {MAX_DEPTH} levels"),
            JsonError::BadNumber { literal } => write!(f, "malformed number {literal:?}"),
            JsonError::BadString { offset } => write!(f, "malformed string at byte {offset}"),
            JsonError::DuplicateKey { key } => write!(f, "duplicate object key {key:?}"),
            JsonError::TrailingBytes { offset } => {
                write!(f, "trailing bytes after the value at byte {offset}")
            }
            JsonError::NotUtf8 => write!(f, "body is not valid UTF-8"),
        }
    }
}

impl std::error::Error for JsonError {}

/// Parses one JSON value spanning the whole input.
pub fn parse(bytes: &[u8]) -> Result<Json, JsonError> {
    let text = std::str::from_utf8(bytes).map_err(|_| JsonError::NotUtf8)?;
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(JsonError::TrailingBytes { offset: parser.pos });
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\r' | b'\n')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), JsonError> {
        match self.peek() {
            Some(found) if found == byte => {
                self.pos += 1;
                Ok(())
            }
            Some(found) => Err(JsonError::Unexpected {
                offset: self.pos,
                found: found as char,
            }),
            None => Err(JsonError::UnexpectedEnd),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(JsonError::Unexpected {
                offset: self.pos,
                found: self.bytes[self.pos] as char,
            })
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(JsonError::TooDeep);
        }
        match self.peek() {
            None => Err(JsonError::UnexpectedEnd),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(found) => Err(JsonError::Unexpected {
                offset: self.pos,
                found: found as char,
            }),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let literal = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii run");
        match literal.parse::<f64>() {
            Ok(n) if n.is_finite() => Ok(Json::Num(n)),
            _ => Err(JsonError::BadNumber {
                literal: literal.to_string(),
            }),
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let offset = self.pos;
            match self.peek() {
                None => return Err(JsonError::UnexpectedEnd),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or(JsonError::UnexpectedEnd)?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| JsonError::BadString { offset })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| JsonError::BadString { offset })?;
                            // Surrogate pairs are not needed by any daemon
                            // payload; reject them instead of mis-decoding.
                            let ch = char::from_u32(code).ok_or(JsonError::BadString { offset })?;
                            out.push(ch);
                            self.pos += 4;
                        }
                        _ => return Err(JsonError::BadString { offset }),
                    }
                    self.pos += 1;
                }
                Some(byte) if byte < 0x20 => return Err(JsonError::BadString { offset }),
                Some(byte) if byte < 0x80 => {
                    out.push(byte as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 (validated at entry): copy the scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| JsonError::BadString { offset })?;
                    let ch = rest.chars().next().ok_or(JsonError::UnexpectedEnd)?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                Some(found) => {
                    return Err(JsonError::Unexpected {
                        offset: self.pos,
                        found: found as char,
                    })
                }
                None => return Err(JsonError::UnexpectedEnd),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members: Vec<(String, Json)> = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(JsonError::DuplicateKey { key });
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                Some(found) => {
                    return Err(JsonError::Unexpected {
                        offset: self.pos,
                        found: found as char,
                    })
                }
                None => return Err(JsonError::UnexpectedEnd),
            }
        }
    }
}

/// Escapes `s` into a JSON string literal (with quotes).
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_daemon_shapes() {
        let v = parse(br#"{"node": 3}"#).unwrap();
        assert_eq!(v.get("node").and_then(Json::as_index), Some(3));
        let v = parse(br#"{"nodes": [0, 1, 2], "tag": "x"}"#).unwrap();
        let nodes: Vec<usize> = v
            .get("nodes")
            .and_then(Json::as_arr)
            .unwrap()
            .iter()
            .map(|n| n.as_index().unwrap())
            .collect();
        assert_eq!(nodes, vec![0, 1, 2]);
        assert_eq!(v.get("tag").and_then(Json::as_str), Some("x"));
        assert_eq!(parse(b"null").unwrap(), Json::Null);
        assert_eq!(parse(b" true ").unwrap(), Json::Bool(true));
    }

    #[test]
    fn float_roundtrip_is_bitwise() {
        // The serving contract: a logit formatted with `{}` and re-parsed
        // through this parser recovers the exact f32 bit pattern.
        for bits in [
            0x3f80_0000u32, // 1.0
            0x3eaa_aaab,    // ~1/3
            0xbf7f_fff0,
            0x0000_0001, // subnormal
            0x7f7f_ffff, // f32::MAX
        ] {
            let x = f32::from_bits(bits);
            let text = format!("{x}");
            let parsed = parse(text.as_bytes()).unwrap().as_num().unwrap() as f32;
            assert_eq!(parsed.to_bits(), bits, "roundtrip of {text}");
        }
    }

    #[test]
    fn rejects_malformed_bodies_typed() {
        assert_eq!(parse(b"{").unwrap_err(), JsonError::UnexpectedEnd);
        assert!(matches!(
            parse(b"{\"a\": 1,}").unwrap_err(),
            JsonError::Unexpected { .. }
        ));
        assert!(matches!(
            parse(b"12e999").unwrap_err(),
            JsonError::BadNumber { .. }
        ));
        assert_eq!(
            parse(br#"{"a": 1, "a": 2}"#).unwrap_err(),
            JsonError::DuplicateKey { key: "a".into() }
        );
        assert!(matches!(
            parse(b"1 2").unwrap_err(),
            JsonError::TrailingBytes { .. }
        ));
        assert_eq!(parse(b"\xff\xfe").unwrap_err(), JsonError::NotUtf8);
        let deep = "[".repeat(64) + &"]".repeat(64);
        assert_eq!(parse(deep.as_bytes()).unwrap_err(), JsonError::TooDeep);
    }

    #[test]
    fn as_index_boundaries() {
        let idx = |text: &str| parse(text.as_bytes()).unwrap().as_index();
        // 2^53: the largest range where f64 holds every integer exactly.
        assert_eq!(idx("9007199254740992"), Some(1usize << 53));
        // 2^64 − 2048: the largest f64 strictly below 2^64 — the biggest
        // index this parser can ever accept.
        assert_eq!(idx("18446744073709549568"), Some(0xffff_ffff_ffff_f800));
        // 2^64 itself: `u64::MAX as f64` rounds up to exactly this value,
        // so the old inclusive bound accepted it and the saturating cast
        // mapped it to usize::MAX. It must be refused.
        assert_eq!(idx("18446744073709551616"), None);
        // Anything larger, negative, or fractional is refused too.
        assert_eq!(idx("1e300"), None);
        assert_eq!(idx("-1"), None);
        assert_eq!(idx("1.5"), None);
        assert_eq!(idx("0"), Some(0));
    }

    #[test]
    fn quote_escapes() {
        assert_eq!(quote("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }
}
