//! `sigma-daemon` — a fault-tolerant serving daemon over the SIGMA
//! inference engine.
//!
//! The daemon turns the in-process serving stack ([`sigma_serve`]'s
//! `InferenceEngine` and `ShardRouter`) into a long-running network
//! process speaking strict HTTP/1.1 on a `std::net::TcpListener` — no
//! network crates, no async runtime, just an acceptor thread, a bounded
//! admission queue, and a small worker pool.
//!
//! # Endpoints
//!
//! | Endpoint | Purpose |
//! |---|---|
//! | `POST /v1/predict` | one node → logits (micro-batched) |
//! | `POST /v1/predict_batch` | many nodes → logits, request order |
//! | `POST /v1/similar` | top-k similar nodes off the operator row |
//! | `POST /v1/edges` | graph edits → staleness invalidations |
//! | `POST /v1/repair` | one incremental repair round |
//! | `POST /v1/reload` | hot snapshot swap (single-engine backends) |
//! | `GET /v1/stats` | JSON counters (daemon + engine + registry) |
//! | `GET /metrics` | Prometheus text exposition |
//! | `GET /healthz` | liveness + serving shape |
//!
//! # Robustness contract
//!
//! * **Deadlines** — `x-sigma-deadline-ms` (or the server default); expired
//!   requests are shed with `504` *before* any engine work.
//! * **Admission control** — a bounded connection queue; when full, new
//!   connections get `429` + `Retry-After` at the door.
//! * **Micro-batching** — concurrent single-node predicts coalesce into one
//!   row-sliced `predict_batch` (see [`batch`]).
//! * **Graceful drain** — [`Daemon::shutdown`] stops accepting, drains
//!   in-flight work within a deadline, then answers stragglers `503`.
//! * **Panic isolation** — a handler panic kills that connection only
//!   (`500` if still possible) and bumps a counter; the process lives.
//! * **Malformed-input hardening** — typed [`http::HttpError`]s, bounded
//!   lines/headers/bodies, socket read/write timeouts (slow-loris defence).
//!
//! Responses carry logits — and `/v1/similar` scores — through Rust's
//! shortest-roundtrip float formatting, which keeps the wire
//! bitwise-faithful to the engine — the e2e suite asserts equality against
//! in-process calls bit for bit.

#![deny(missing_docs)]

pub mod backend;
pub mod batch;
pub mod http;
pub mod json;
pub mod metrics;
pub mod server;
pub mod status;

pub use backend::{Backend, RepairSummary};
pub use batch::{BatchFailure, BatchReply, MicroBatcher, SubmitError};
pub use http::{HttpError, HttpLimits, Request, Response};
pub use json::{Json, JsonError};
pub use metrics::{DaemonMetrics, DaemonStats};
pub use server::{Daemon, DaemonConfig, DaemonError, DrainReport};
pub use status::{kind_for, status_for, status_for_snapshot};
