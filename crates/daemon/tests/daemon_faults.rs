//! Wire-level fault injection against the daemon.
//!
//! Every test drives a *misbehaving* client against a live daemon through
//! real sockets and asserts the exact typed status — and, where the
//! robustness contract promises it, that the engine did **zero work** for
//! the rejected traffic (overload must never buy kernel time).

use sigma_daemon::{json, Backend, Daemon, DaemonConfig};
use sigma_graph::Graph;
use sigma_serve::{EngineConfig, InferenceEngine};
use sigma_testutil::wire;
use sigma_testutil::{random_graph, serving_fixture};
use std::sync::Arc;
use std::time::Duration;

fn fixture_graph(seed: u64) -> Graph {
    random_graph(30, 45, seed)
}

fn start_daemon(seed: u64, config: DaemonConfig) -> (Daemon, Arc<InferenceEngine>) {
    let fixture = serving_fixture(&fixture_graph(seed), 4, seed);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let daemon = Daemon::start(Backend::Engine(engine.clone()), None, config).expect("daemon");
    (daemon, engine)
}

fn status_of(raw: &[u8]) -> Option<u16> {
    let text = std::str::from_utf8(raw).ok()?;
    let rest = text.strip_prefix("HTTP/1.1 ")?;
    rest.get(..3)?.parse().ok()
}

#[test]
fn truncated_body_is_a_typed_400() {
    let (daemon, engine) = start_daemon(31, DaemonConfig::default());
    // Declares 50 body bytes, sends 12, hangs up.
    let raw = wire::send_raw_once(
        daemon.local_addr(),
        b"POST /v1/predict HTTP/1.1\r\ncontent-length: 50\r\n\r\n{\"node\": 3",
    )
    .expect("send");
    assert_eq!(
        status_of(&raw),
        Some(400),
        "raw: {:?}",
        String::from_utf8_lossy(&raw)
    );
    assert_eq!(
        engine.stats().nodes_served,
        0,
        "no engine work for truncated bodies"
    );
    assert_eq!(daemon.stats().parse_rejects, 1);
    daemon.shutdown();
}

#[test]
fn oversized_content_length_is_rejected_before_buffering() {
    let mut config = DaemonConfig::default();
    config.limits.max_body_bytes = 256;
    let (daemon, engine) = start_daemon(32, config);
    // The declared size alone triggers the 413 — no body bytes are sent at
    // all, so the daemon must reject on the header.
    let mut client = wire::WireClient::connect(daemon.local_addr()).expect("connect");
    client
        .send_raw(b"POST /v1/predict_batch HTTP/1.1\r\ncontent-length: 1000000\r\n\r\n")
        .expect("send headers");
    let resp = client.read_response().expect("413 without any body byte");
    assert_eq!(resp.status, 413);
    assert_eq!(engine.stats().nodes_served, 0);
    daemon.shutdown();
}

#[test]
fn slow_loris_writer_is_cut_off_with_408() {
    let config = DaemonConfig {
        read_timeout_ms: 150,
        ..DaemonConfig::default()
    };
    let (daemon, _engine) = start_daemon(33, config);
    let mut client = wire::WireClient::connect(daemon.local_addr()).expect("connect");
    // Drip half a request line, then stall past the read timeout.
    client.send_raw(b"POST /v1/pre").expect("partial line");
    std::thread::sleep(Duration::from_millis(400));
    let resp = client.read_response().expect("408 after the stall");
    assert_eq!(resp.status, 408);
    assert_eq!(daemon.stats().read_timeouts, 1);
    daemon.shutdown();
}

#[test]
fn admission_queue_overflow_sheds_429_with_retry_after() {
    let config = DaemonConfig {
        workers: 1,
        queue_capacity: 1,
        read_timeout_ms: 3_000,
        ..DaemonConfig::default()
    };
    let (daemon, engine) = start_daemon(34, config);
    let addr = daemon.local_addr();

    // conn_busy is picked up by the lone worker, which then blocks reading
    // a request that never comes. conn_queued fills the one queue slot.
    let busy = wire::WireClient::connect(addr).expect("busy conn");
    std::thread::sleep(Duration::from_millis(150));
    let queued = wire::WireClient::connect(addr).expect("queued conn");
    std::thread::sleep(Duration::from_millis(150));

    // Storm the full daemon: every further connection must shed cleanly.
    let mut shed = 0usize;
    for _ in 0..5 {
        let mut client = wire::WireClient::connect(addr).expect("storm conn");
        let resp = client.read_response().expect("shed response");
        assert_eq!(resp.status, 429);
        assert_eq!(
            resp.header("retry-after"),
            Some("1"),
            "429 must carry Retry-After"
        );
        shed += 1;
    }
    assert_eq!(shed, 5);
    let stats = daemon.stats();
    assert_eq!(stats.connections_shed, 5);
    assert_eq!(
        engine.stats().nodes_served,
        0,
        "shed load bought zero engine time"
    );
    drop(busy);
    drop(queued);
    daemon.shutdown();
}

#[test]
fn expired_deadline_sheds_504_without_engine_work() {
    // A wide coalescing window guarantees the 40 ms deadline is long gone
    // when the flusher inspects the queue entry.
    let config = DaemonConfig {
        micro_batch_window_us: 300_000,
        ..DaemonConfig::default()
    };
    let (daemon, engine) = start_daemon(35, config);
    let mut client = wire::WireClient::connect(daemon.local_addr()).expect("connect");
    let resp = client
        .request(
            "POST",
            "/v1/predict",
            &[("x-sigma-deadline-ms", "40")],
            b"{\"node\": 1}",
        )
        .expect("predict");
    assert_eq!(resp.status, 504);
    let value = json::parse(&resp.body).expect("error body parses");
    assert_eq!(
        value.get("error").and_then(json::Json::as_str),
        Some("deadline_expired")
    );
    assert_eq!(daemon.stats().deadline_shed, 1);
    assert_eq!(
        engine.stats().nodes_served,
        0,
        "an expired request must never reach the engine"
    );
    daemon.shutdown();
}

#[test]
fn malformed_deadline_header_is_a_400() {
    let (daemon, _engine) = start_daemon(36, DaemonConfig::default());
    let mut client = wire::WireClient::connect(daemon.local_addr()).expect("connect");
    for bad in ["-5", "soon", "1.5", "0"] {
        let resp = client
            .request(
                "POST",
                "/v1/predict",
                &[("x-sigma-deadline-ms", bad)],
                b"{\"node\": 1}",
            )
            .expect("predict");
        assert_eq!(resp.status, 400, "deadline header {bad:?}");
    }
    daemon.shutdown();
}

#[test]
fn handler_panic_kills_the_connection_not_the_daemon() {
    let config = DaemonConfig {
        debug_endpoints: true,
        ..DaemonConfig::default()
    };
    let (daemon, _engine) = start_daemon(37, config);
    let addr = daemon.local_addr();

    let resp = wire::post_json(addr, "/v1/panic", "{}").expect("panic endpoint");
    assert_eq!(resp.status, 500);
    let value = json::parse(&resp.body).expect("panic body parses");
    assert_eq!(
        value.get("error").and_then(json::Json::as_str),
        Some("handler_panic")
    );
    assert_eq!(daemon.stats().handler_panics, 1);

    // The daemon survives and keeps serving fresh connections.
    let resp = wire::post_json(addr, "/v1/predict", "{\"node\": 0}").expect("predict");
    assert_eq!(resp.status, 200, "daemon must outlive a handler panic");
    daemon.shutdown();
}

#[test]
fn malformed_payloads_map_to_typed_statuses() {
    let (daemon, _engine) = start_daemon(38, DaemonConfig::default());
    let addr = daemon.local_addr();
    let cases: Vec<(&str, &str, u16)> = vec![
        // Body is not JSON at all.
        ("/v1/predict", "not json", 400),
        // Wrong field type.
        ("/v1/predict", "{\"node\": \"three\"}", 400),
        // Missing field.
        ("/v1/predict", "{}", 400),
        // Negative node.
        ("/v1/predict", "{\"node\": -1}", 400),
        // Fractional node.
        ("/v1/predict", "{\"node\": 1.5}", 400),
        // Duplicate key (ambiguous request).
        ("/v1/predict", "{\"node\": 1, \"node\": 2}", 400),
        // Out-of-range node: typed engine error, 404.
        ("/v1/predict", "{\"node\": 99999}", 404),
        // Batch with a bad entry.
        ("/v1/predict_batch", "{\"nodes\": [1, null]}", 400),
        // Edges with an unknown op.
        (
            "/v1/edges",
            "{\"updates\": [{\"op\": \"upsert\", \"u\": 1, \"v\": 2}]}",
            400,
        ),
        // Edges addressing a node outside the graph.
        (
            "/v1/edges",
            "{\"updates\": [{\"op\": \"insert\", \"u\": 1, \"v\": 99999}]}",
            404,
        ),
    ];
    for (path, body, expected) in cases {
        let resp = wire::post_json(addr, path, body).expect("request");
        assert_eq!(
            resp.status,
            expected,
            "{path} with {body:?} (got body {})",
            resp.body_str()
        );
        // Every error body is itself valid JSON with a kind token.
        let value = json::parse(&resp.body).expect("error body parses");
        assert!(value.get("error").and_then(json::Json::as_str).is_some());
    }
    daemon.shutdown();
}

#[test]
fn protocol_violations_map_to_typed_statuses() {
    let mut config = DaemonConfig::default();
    config.limits.max_line_bytes = 512;
    config.limits.max_headers = 8;
    let (daemon, _engine) = start_daemon(39, config);
    let addr = daemon.local_addr();

    // Unsupported HTTP version.
    let raw = wire::send_raw_once(addr, b"GET /healthz HTTP/2.0\r\n\r\n").expect("send");
    assert_eq!(status_of(&raw), Some(505));

    // Transfer-Encoding refused outright.
    let raw = wire::send_raw_once(
        addr,
        b"POST /v1/predict HTTP/1.1\r\ntransfer-encoding: chunked\r\n\r\n",
    )
    .expect("send");
    assert_eq!(status_of(&raw), Some(501));

    // Garbage request line.
    let raw = wire::send_raw_once(addr, b"lol\r\n\r\n").expect("send");
    assert_eq!(status_of(&raw), Some(400));

    // A request line longer than the cap.
    let long = format!("GET /{} HTTP/1.1\r\n\r\n", "a".repeat(2048));
    let raw = wire::send_raw_once(addr, long.as_bytes()).expect("send");
    assert_eq!(status_of(&raw), Some(431));

    // Too many headers.
    let mut many = String::from("GET /healthz HTTP/1.1\r\n");
    for i in 0..20 {
        many.push_str(&format!("x-h{i}: v\r\n"));
    }
    many.push_str("\r\n");
    let raw = wire::send_raw_once(addr, many.as_bytes()).expect("send");
    assert_eq!(status_of(&raw), Some(431));

    // Malformed Content-Length.
    let raw = wire::send_raw_once(
        addr,
        b"POST /v1/predict HTTP/1.1\r\ncontent-length: ten\r\n\r\n",
    )
    .expect("send");
    assert_eq!(status_of(&raw), Some(400));

    daemon.shutdown();
}

#[test]
fn mid_flight_reload_never_fails_an_in_flight_request() {
    let graph = fixture_graph(40);
    let fixture_a = serving_fixture(&graph, 4, 40);
    let fixture_b = serving_fixture(&graph, 4, 41);
    let path = std::env::temp_dir().join(format!(
        "sigma-daemon-midflight-{}.snapshot",
        std::process::id()
    ));
    fixture_b.snapshot.save(&path).expect("save snapshot B");

    let engine = Arc::new(
        InferenceEngine::new(&fixture_a.snapshot, EngineConfig::default()).expect("engine"),
    );
    let reference_a =
        InferenceEngine::new(&fixture_a.snapshot, EngineConfig::default()).expect("reference A");
    let reference_b =
        InferenceEngine::new(&fixture_b.snapshot, EngineConfig::default()).expect("reference B");
    let daemon =
        Daemon::start(Backend::Engine(engine), None, DaemonConfig::default()).expect("daemon");
    let addr = daemon.local_addr();

    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let num_nodes = graph.num_nodes();
    let queriers: Vec<_> = (0..4usize)
        .map(|t| {
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut served = 0usize;
                let mut node = t;
                while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                    let resp =
                        wire::post_json(addr, "/v1/predict", &format!("{{\"node\": {node}}}"))
                            .expect("predict during reload");
                    assert_eq!(resp.status, 200, "no request may fail across a reload");
                    let value = json::parse(&resp.body).expect("response parses");
                    served += 1;
                    node = (node + 7) % num_nodes;
                    let _ = value;
                }
                served
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(100));
    let resp = wire::post_json(
        addr,
        "/v1/reload",
        &format!("{{\"path\": {}}}", json::quote(path.to_str().unwrap())),
    )
    .expect("reload");
    assert_eq!(resp.status, 200, "body: {}", resp.body_str());
    std::thread::sleep(Duration::from_millis(100));
    stop.store(true, std::sync::atomic::Ordering::Relaxed);
    let total: usize = queriers
        .into_iter()
        .map(|q| q.join().expect("querier"))
        .sum();
    assert!(total > 0, "queriers must have observed traffic");

    // After the dust settles, serving is wholly on snapshot B.
    for node in (0..num_nodes).step_by(4) {
        let resp = wire::post_json(addr, "/v1/predict", &format!("{{\"node\": {node}}}"))
            .expect("predict");
        let value = json::parse(&resp.body).expect("response parses");
        let logits: Vec<u32> = value
            .get("logits")
            .and_then(json::Json::as_arr)
            .unwrap()
            .iter()
            .map(|l| (l.as_num().unwrap() as f32).to_bits())
            .collect();
        let b_bits: Vec<u32> = reference_b
            .predict(node)
            .expect("reference B")
            .logits
            .iter()
            .map(|l| l.to_bits())
            .collect();
        let a_bits: Vec<u32> = reference_a
            .predict(node)
            .expect("reference A")
            .logits
            .iter()
            .map(|l| l.to_bits())
            .collect();
        assert_ne!(
            a_bits, b_bits,
            "fixtures must actually differ for this test to bite"
        );
        assert_eq!(
            logits, b_bits,
            "post-reload serving must be wholly snapshot B"
        );
    }
    daemon.shutdown();
    let _ = std::fs::remove_file(&path);
}
