//! End-to-end daemon tests through real sockets.
//!
//! The load-bearing assertion: responses that travelled the full wire path
//! (HTTP parse → admission queue → worker → micro-batcher → engine → JSON →
//! socket) are **bitwise identical** to direct in-process engine calls over
//! the same snapshot. Runs under `SIGMA_NUM_THREADS=1` and `=4` in CI; the
//! contract is thread-count independent.

use sigma_daemon::{json, Backend, Daemon, DaemonConfig};
use sigma_graph::Graph;
use sigma_serve::{EngineConfig, InferenceEngine, Prediction, ShardRouter, ShardRouterConfig};
use sigma_testutil::wire;
use sigma_testutil::{random_graph, serving_fixture};
use std::sync::Arc;

fn fixture_graph(seed: u64) -> Graph {
    random_graph(40, 60, seed)
}

/// Decodes `{"node":…, "label":…, "logits":[…]}` into a comparable triple;
/// `cached`/`stale` are intentionally ignored (they depend on query order,
/// not on the model).
fn decode_prediction(value: &json::Json) -> (usize, usize, Vec<u32>) {
    let node = value.get("node").and_then(json::Json::as_index).unwrap();
    let label = value.get("label").and_then(json::Json::as_index).unwrap();
    let logits: Vec<u32> = value
        .get("logits")
        .and_then(json::Json::as_arr)
        .unwrap()
        .iter()
        .map(|l| (l.as_num().unwrap() as f32).to_bits())
        .collect();
    (node, label, logits)
}

fn reference_bits(p: &Prediction) -> (usize, usize, Vec<u32>) {
    (
        p.node,
        p.label,
        p.logits.iter().map(|l| l.to_bits()).collect(),
    )
}

#[test]
fn predict_is_bitwise_equal_to_in_process_engine() {
    let fixture = serving_fixture(&fixture_graph(11), 4, 11);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let reference =
        InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("reference");
    let daemon =
        Daemon::start(Backend::Engine(engine), None, DaemonConfig::default()).expect("daemon");
    let addr = daemon.local_addr();

    for node in 0..fixture.snapshot.num_nodes() {
        let resp = wire::post_json(addr, "/v1/predict", &format!("{{\"node\": {node}}}"))
            .expect("predict");
        assert_eq!(resp.status, 200, "body: {}", resp.body_str());
        let value = json::parse(&resp.body).expect("response parses");
        let expected = reference.predict(node).expect("reference predict");
        assert_eq!(
            decode_prediction(&value),
            reference_bits(&expected),
            "wire logits for node {node} must be bitwise equal"
        );
    }
    daemon.shutdown();
}

#[test]
fn predict_batch_is_bitwise_equal_and_order_preserving() {
    let fixture = serving_fixture(&fixture_graph(12), 4, 12);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let reference =
        InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("reference");
    let daemon =
        Daemon::start(Backend::Engine(engine), None, DaemonConfig::default()).expect("daemon");

    // Deliberately unsorted, with repeats.
    let nodes = [7usize, 3, 7, 0, 21, 14, 3];
    let body = format!(
        "{{\"nodes\": [{}]}}",
        nodes
            .iter()
            .map(|n| n.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let resp = wire::post_json(daemon.local_addr(), "/v1/predict_batch", &body).expect("batch");
    assert_eq!(resp.status, 200, "body: {}", resp.body_str());
    let value = json::parse(&resp.body).expect("response parses");
    assert_eq!(
        value.get("count").and_then(json::Json::as_index),
        Some(nodes.len())
    );
    let served = value
        .get("predictions")
        .and_then(json::Json::as_arr)
        .expect("predictions array");
    let expected = reference.predict_batch(&nodes).expect("reference batch");
    assert_eq!(served.len(), expected.len());
    for (wire_pred, reference_pred) in served.iter().zip(&expected) {
        assert_eq!(decode_prediction(wire_pred), reference_bits(reference_pred));
    }
    daemon.shutdown();
}

#[test]
fn sharded_backend_is_bitwise_equal_over_the_wire() {
    let fixture = serving_fixture(&fixture_graph(13), 4, 13);
    let router = ShardRouter::new(
        &fixture.snapshot,
        &ShardRouterConfig {
            shards: 4,
            engine: EngineConfig::default(),
        },
    )
    .expect("router");
    let reference =
        InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("reference");
    let daemon = Daemon::start(
        Backend::Router(Arc::new(router)),
        None,
        DaemonConfig::default(),
    )
    .expect("daemon");
    let addr = daemon.local_addr();

    for node in (0..fixture.snapshot.num_nodes()).step_by(3) {
        let resp = wire::post_json(addr, "/v1/predict", &format!("{{\"node\": {node}}}"))
            .expect("predict");
        assert_eq!(resp.status, 200, "body: {}", resp.body_str());
        let value = json::parse(&resp.body).expect("response parses");
        let expected = reference.predict(node).expect("reference predict");
        assert_eq!(decode_prediction(&value), reference_bits(&expected));
    }
    daemon.shutdown();
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let fixture = serving_fixture(&fixture_graph(14), 4, 14);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let daemon =
        Daemon::start(Backend::Engine(engine), None, DaemonConfig::default()).expect("daemon");

    let mut client = wire::WireClient::connect(daemon.local_addr()).expect("connect");
    for node in 0..10usize {
        let resp = client
            .request(
                "POST",
                "/v1/predict",
                &[],
                format!("{{\"node\": {node}}}").as_bytes(),
            )
            .expect("keep-alive request");
        assert_eq!(resp.status, 200);
    }
    let stats = daemon.stats();
    assert_eq!(
        stats.connections_accepted, 1,
        "one connection, ten requests"
    );
    assert_eq!(stats.requests, 10);
    daemon.shutdown();
}

#[test]
fn concurrent_predicts_coalesce_into_one_engine_batch() {
    let fixture = serving_fixture(&fixture_graph(15), 4, 15);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let config = DaemonConfig {
        micro_batch_window_us: 50_000, // 50 ms: wide enough to be deterministic
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(Backend::Engine(engine.clone()), None, config).expect("daemon");
    let addr = daemon.local_addr();

    let before = engine.stats().batches_served;
    let handles: Vec<_> = (0..4usize)
        .map(|node| {
            std::thread::spawn(move || {
                wire::post_json(addr, "/v1/predict", &format!("{{\"node\": {node}}}"))
                    .expect("predict")
            })
        })
        .collect();
    for handle in handles {
        let resp = handle.join().expect("client thread");
        assert_eq!(resp.status, 200);
    }
    let stats = daemon.stats();
    assert_eq!(stats.coalesced_predicts, 4);
    assert_eq!(
        engine.stats().batches_served - before,
        stats.batch_flushes,
        "every flush is exactly one engine batch"
    );
    assert!(
        stats.batch_flushes < 4,
        "4 concurrent predicts inside a 50ms window must coalesce (got {} flushes)",
        stats.batch_flushes
    );
    daemon.shutdown();
}

#[test]
fn stats_and_metrics_endpoints_parse() {
    let fixture = serving_fixture(&fixture_graph(16), 4, 16);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let daemon =
        Daemon::start(Backend::Engine(engine), None, DaemonConfig::default()).expect("daemon");
    let addr = daemon.local_addr();

    let _ = wire::post_json(addr, "/v1/predict", "{\"node\": 1}").expect("predict");

    let stats = wire::get(addr, "/v1/stats").expect("stats");
    assert_eq!(stats.status, 200);
    let value = json::parse(&stats.body).expect("stats body is valid JSON");
    let daemon_obj = value.get("daemon").expect("daemon section");
    assert!(
        daemon_obj
            .get("requests")
            .and_then(json::Json::as_index)
            .unwrap()
            >= 1
    );
    assert!(value.get("engine").is_some());
    assert!(value.get("registry").is_some());

    let metrics = wire::get(addr, "/metrics").expect("metrics");
    assert_eq!(metrics.status, 200);
    let text = metrics.body_str();
    if sigma_obs::ENABLED {
        assert!(
            text.contains("sigma_daemon_requests_total"),
            "daemon counters must appear in the exposition:\n{text}"
        );
        // Prometheus text shape: every non-comment line is `name[{labels}] value`.
        for line in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.is_empty())
        {
            assert!(
                line.rsplit_once(' ').is_some(),
                "malformed exposition line: {line:?}"
            );
        }
    }
    daemon.shutdown();
}

#[test]
fn edges_then_repair_keeps_wire_equal_to_reference_lineage() {
    let graph = fixture_graph(17);
    let fixture = serving_fixture(&graph, 4, 17);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let daemon = Daemon::start(
        Backend::Engine(engine),
        Some(fixture.maintainer),
        DaemonConfig::default(),
    )
    .expect("daemon");
    let addr = daemon.local_addr();

    // The same lineage, in process: engine + maintainer from a twin fixture.
    let twin = serving_fixture(&graph, 4, 17);
    let reference =
        InferenceEngine::new(&twin.snapshot, EngineConfig::default()).expect("reference");
    let mut reference_maintainer = twin.maintainer;

    let (u, v) = (0usize, 9usize);
    let resp = wire::post_json(
        addr,
        "/v1/edges",
        &format!("{{\"updates\": [{{\"op\": \"insert\", \"u\": {u}, \"v\": {v}}}]}}"),
    )
    .expect("edges");
    assert_eq!(resp.status, 200, "body: {}", resp.body_str());
    let value = json::parse(&resp.body).expect("edges response parses");
    assert_eq!(value.get("applied").and_then(json::Json::as_index), Some(1));
    assert_eq!(value.get("maintainer"), Some(&json::Json::Bool(true)));

    let resp = wire::post_json(addr, "/v1/repair", "{}").expect("repair");
    assert_eq!(resp.status, 200, "body: {}", resp.body_str());
    let value = json::parse(&resp.body).expect("repair response parses");
    assert!(value.get("operator_rows").is_some());

    reference_maintainer
        .apply_batch(&[sigma_simrank::EdgeUpdate::Insert(u, v)])
        .expect("reference apply");
    reference
        .apply_edge_updates(&[sigma_simrank::EdgeUpdate::Insert(u, v)])
        .expect("reference invalidate");
    reference
        .repair_from(&mut reference_maintainer)
        .expect("reference repair");

    for node in 0..graph.num_nodes() {
        let resp = wire::post_json(addr, "/v1/predict", &format!("{{\"node\": {node}}}"))
            .expect("predict");
        assert_eq!(resp.status, 200);
        let value = json::parse(&resp.body).expect("response parses");
        let expected = reference.predict(node).expect("reference predict");
        assert_eq!(
            decode_prediction(&value),
            reference_bits(&expected),
            "post-repair logits for node {node}"
        );
    }
    daemon.shutdown();
}

#[test]
fn reload_swaps_to_the_new_snapshot_bitwise() {
    let graph = fixture_graph(18);
    let fixture_a = serving_fixture(&graph, 4, 18);
    let fixture_b = serving_fixture(&graph, 4, 19);

    let path = std::env::temp_dir().join(format!(
        "sigma-daemon-reload-{}-{}.snapshot",
        std::process::id(),
        std::env::var("SIGMA_NUM_THREADS").unwrap_or_default()
    ));
    fixture_b.snapshot.save(&path).expect("save snapshot B");

    let engine = Arc::new(
        InferenceEngine::new(&fixture_a.snapshot, EngineConfig::default()).expect("engine"),
    );
    let reference_b =
        InferenceEngine::new(&fixture_b.snapshot, EngineConfig::default()).expect("reference B");
    let daemon =
        Daemon::start(Backend::Engine(engine), None, DaemonConfig::default()).expect("daemon");
    let addr = daemon.local_addr();

    let resp = wire::post_json(
        addr,
        "/v1/reload",
        &format!("{{\"path\": {}}}", json::quote(path.to_str().unwrap())),
    )
    .expect("reload");
    assert_eq!(resp.status, 200, "body: {}", resp.body_str());
    assert_eq!(daemon.stats().reloads, 1);

    for node in (0..graph.num_nodes()).step_by(5) {
        let resp = wire::post_json(addr, "/v1/predict", &format!("{{\"node\": {node}}}"))
            .expect("predict");
        assert_eq!(resp.status, 200);
        let value = json::parse(&resp.body).expect("response parses");
        let expected = reference_b.predict(node).expect("reference predict");
        assert_eq!(
            decode_prediction(&value),
            reference_bits(&expected),
            "post-reload logits must come from snapshot B (node {node})"
        );
    }
    daemon.shutdown();
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reload_is_not_implemented_for_sharded_backends() {
    let fixture = serving_fixture(&fixture_graph(20), 4, 20);
    let router = ShardRouter::new(
        &fixture.snapshot,
        &ShardRouterConfig {
            shards: 2,
            engine: EngineConfig::default(),
        },
    )
    .expect("router");
    let daemon = Daemon::start(
        Backend::Router(Arc::new(router)),
        None,
        DaemonConfig::default(),
    )
    .expect("daemon");
    let resp = wire::post_json(
        daemon.local_addr(),
        "/v1/reload",
        "{\"path\": \"/nonexistent\"}",
    )
    .expect("reload");
    assert_eq!(resp.status, 501);
    daemon.shutdown();
}

#[test]
fn repair_without_maintainer_is_a_conflict() {
    let fixture = serving_fixture(&fixture_graph(21), 4, 21);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let daemon =
        Daemon::start(Backend::Engine(engine), None, DaemonConfig::default()).expect("daemon");
    let resp = wire::post_json(daemon.local_addr(), "/v1/repair", "{}").expect("repair");
    assert_eq!(resp.status, 409);
    let value = json::parse(&resp.body).expect("error body parses");
    assert_eq!(
        value.get("error").and_then(json::Json::as_str),
        Some("no_maintainer")
    );
    daemon.shutdown();
}

#[test]
fn unknown_paths_and_wrong_methods_are_typed() {
    let fixture = serving_fixture(&fixture_graph(22), 4, 22);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let daemon =
        Daemon::start(Backend::Engine(engine), None, DaemonConfig::default()).expect("daemon");
    let addr = daemon.local_addr();

    let health = wire::get(addr, "/healthz").expect("healthz");
    assert_eq!(health.status, 200);
    let value = json::parse(&health.body).expect("health body parses");
    assert_eq!(value.get("status").and_then(json::Json::as_str), Some("ok"));
    assert_eq!(
        value.get("nodes").and_then(json::Json::as_index),
        Some(fixture.snapshot.num_nodes())
    );

    assert_eq!(wire::get(addr, "/v1/nonsense").expect("404").status, 404);
    assert_eq!(wire::get(addr, "/v1/predict").expect("405").status, 405);
    assert_eq!(
        wire::post_json(addr, "/healthz", "{}").expect("405").status,
        405
    );
    daemon.shutdown();
}

#[test]
fn shutdown_drains_in_flight_work_cleanly() {
    let fixture = serving_fixture(&fixture_graph(23), 4, 23);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let daemon =
        Daemon::start(Backend::Engine(engine), None, DaemonConfig::default()).expect("daemon");
    let addr = daemon.local_addr();

    let client = std::thread::spawn(move || {
        let mut client = wire::WireClient::connect(addr).expect("connect");
        client
            .request("POST", "/v1/predict", &[], b"{\"node\": 2}")
            .expect("in-flight request")
    });
    // Give the request time to be admitted, then drain.
    std::thread::sleep(std::time::Duration::from_millis(50));
    let report = daemon.shutdown();
    let resp = client.join().expect("client thread");
    assert_eq!(resp.status, 200, "in-flight work completes during drain");
    assert!(report.drained_cleanly, "drain must finish inside deadline");
}
