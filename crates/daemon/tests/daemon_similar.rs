//! Wire-level tests for `POST /v1/similar`.
//!
//! The load-bearing assertion mirrors `daemon_e2e.rs`: similarity answers
//! that travelled the full socket path are **bitwise identical** — node
//! ids in rank order and score bits — to direct in-process
//! `InferenceEngine::most_similar` calls over the same snapshot, for both
//! the single-engine and the sharded backend. The rest of the suite pins
//! the endpoint's error contract: 404 for out-of-range nodes, 400 for
//! malformed bodies, 504 for expired deadlines (with provably zero engine
//! work), and 503 while draining.

use sigma_daemon::{json, Backend, Daemon, DaemonConfig};
use sigma_graph::Graph;
use sigma_serve::{EngineConfig, InferenceEngine, ShardRouter, ShardRouterConfig, SimilarNode};
use sigma_testutil::wire;
use sigma_testutil::{random_graph, serving_fixture};
use std::sync::Arc;

fn fixture_graph(seed: u64) -> Graph {
    random_graph(40, 60, seed)
}

/// Decodes the top-level `[{"node": n, "score": s}, ...]` body into
/// comparable `(node, score_bits)` pairs, in served rank order.
fn decode_similar(body: &[u8]) -> Vec<(usize, u32)> {
    let value = json::parse(body).expect("similar body parses");
    value
        .as_arr()
        .expect("similar body is a top-level array")
        .iter()
        .map(|entry| {
            let node = entry.get("node").and_then(json::Json::as_index).unwrap();
            let score = (entry.get("score").and_then(json::Json::as_num).unwrap() as f32).to_bits();
            (node, score)
        })
        .collect()
}

fn reference_bits(expected: &[SimilarNode]) -> Vec<(usize, u32)> {
    expected
        .iter()
        .map(|s| (s.node, s.score.to_bits()))
        .collect()
}

fn error_kind(resp: &wire::WireResponse) -> String {
    let value = json::parse(&resp.body).expect("error body parses");
    value
        .get("error")
        .and_then(json::Json::as_str)
        .expect("error body carries a kind")
        .to_string()
}

#[test]
fn similar_is_bitwise_equal_to_in_process_engine() {
    let fixture = serving_fixture(&fixture_graph(31), 4, 31);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let reference =
        InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("reference");
    let daemon =
        Daemon::start(Backend::Engine(engine), None, DaemonConfig::default()).expect("daemon");
    let addr = daemon.local_addr();

    for node in 0..fixture.snapshot.num_nodes() {
        // k sweeps small ranks and one value past the row length, so the
        // truncation path crosses the wire too.
        let k = if node % 7 == 0 { 100 } else { (node % 5) + 1 };
        let resp = wire::post_json(
            addr,
            "/v1/similar",
            &format!("{{\"node\": {node}, \"k\": {k}}}"),
        )
        .expect("similar");
        assert_eq!(resp.status, 200, "body: {}", resp.body_str());
        let expected = reference.most_similar(node, k).expect("reference similar");
        assert_eq!(
            decode_similar(&resp.body),
            reference_bits(&expected),
            "wire similarity for node {node} k {k} must be bitwise equal"
        );
    }
    daemon.shutdown();
}

#[test]
fn sharded_similar_is_bitwise_equal_over_the_wire() {
    let fixture = serving_fixture(&fixture_graph(32), 4, 32);
    let router = ShardRouter::new(
        &fixture.snapshot,
        &ShardRouterConfig {
            shards: 4,
            engine: EngineConfig::default(),
        },
    )
    .expect("router");
    let reference =
        InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("reference");
    let daemon = Daemon::start(
        Backend::Router(Arc::new(router)),
        None,
        DaemonConfig::default(),
    )
    .expect("daemon");
    let addr = daemon.local_addr();

    for node in 0..fixture.snapshot.num_nodes() {
        let k = (node % 6) + 1;
        let resp = wire::post_json(
            addr,
            "/v1/similar",
            &format!("{{\"node\": {node}, \"k\": {k}}}"),
        )
        .expect("similar");
        assert_eq!(resp.status, 200, "body: {}", resp.body_str());
        let expected = reference.most_similar(node, k).expect("reference similar");
        assert_eq!(
            decode_similar(&resp.body),
            reference_bits(&expected),
            "sharded wire similarity for node {node} k {k} must be bitwise equal"
        );
    }
    daemon.shutdown();
}

#[test]
fn similar_rejects_bad_queries_without_engine_work() {
    let fixture = serving_fixture(&fixture_graph(33), 4, 33);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let daemon = Daemon::start(
        Backend::Engine(engine.clone()),
        None,
        DaemonConfig::default(),
    )
    .expect("daemon");
    let addr = daemon.local_addr();
    let n = fixture.snapshot.num_nodes();

    // Out-of-range node: a well-formed query for a node the graph does not
    // have is the engine's InvalidQuery — 404, not 400.
    let resp = wire::post_json(addr, "/v1/similar", &format!("{{\"node\": {n}, \"k\": 3}}"))
        .expect("out of range");
    assert_eq!(resp.status, 404, "body: {}", resp.body_str());
    assert_eq!(error_kind(&resp), "invalid_query");

    // Malformed bodies are refused at the parse layer: k = 0, fractional
    // k, missing k, missing node.
    for body in [
        "{\"node\": 0, \"k\": 0}",
        "{\"node\": 0, \"k\": 1.5}",
        "{\"node\": 0}",
        "{\"k\": 3}",
    ] {
        let resp = wire::post_json(addr, "/v1/similar", body).expect("bad body");
        assert_eq!(resp.status, 400, "body {body:?} -> {}", resp.body_str());
        assert_eq!(error_kind(&resp), "bad_json", "body {body:?}");
    }

    // None of the rejects reached the engine.
    assert_eq!(engine.stats().similar_queries, 0);
    daemon.shutdown();
}

#[test]
fn similar_sheds_expired_deadlines_before_engine_work() {
    let fixture = serving_fixture(&fixture_graph(34), 4, 34);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    // A zero default deadline makes every request arrive already expired —
    // deterministic 504 with no sleeping in the test.
    let config = DaemonConfig {
        default_deadline_ms: 0,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(Backend::Engine(engine.clone()), None, config).expect("daemon");

    let resp = wire::post_json(
        daemon.local_addr(),
        "/v1/similar",
        "{\"node\": 0, \"k\": 3}",
    )
    .expect("expired");
    assert_eq!(resp.status, 504, "body: {}", resp.body_str());
    assert_eq!(error_kind(&resp), "deadline_expired");
    assert!(daemon.stats().deadline_shed >= 1);
    // The shed happened before the backend was invoked.
    assert_eq!(engine.stats().similar_queries, 0);
    daemon.shutdown();
}

#[test]
fn similar_refuses_new_queries_while_draining() {
    let fixture = serving_fixture(&fixture_graph(35), 4, 35);
    let engine =
        Arc::new(InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).expect("engine"));
    let config = DaemonConfig {
        drain_deadline_ms: 10_000,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(Backend::Engine(engine), None, config).expect("daemon");
    let addr = daemon.local_addr();

    // Establish a keep-alive connection and prove it serves normally, so
    // the worker is already parked on this socket when the drain begins.
    let mut client = wire::WireClient::connect(addr).expect("connect");
    let resp = client
        .request("POST", "/v1/similar", &[], b"{\"node\": 0, \"k\": 2}")
        .expect("pre-drain similar");
    assert_eq!(resp.status, 200, "body: {}", resp.body_str());

    // Drain concurrently; shutdown() blocks until the workers join, and
    // the worker holding our connection will not exit until it answers us.
    let handle = std::thread::spawn(move || daemon.shutdown());
    std::thread::sleep(std::time::Duration::from_millis(150));

    let resp = client
        .request("POST", "/v1/similar", &[], b"{\"node\": 0, \"k\": 2}")
        .expect("draining similar");
    assert_eq!(resp.status, 503, "body: {}", resp.body_str());
    assert_eq!(error_kind(&resp), "draining");
    handle.join().expect("shutdown thread");
}
