//! Environment-driven configuration for bench targets.
//!
//! Defaults are sized so the whole `cargo bench` suite finishes quickly on a
//! single core; set `SIGMA_SCALE`, `SIGMA_EPOCHS`, `SIGMA_REPEATS` to enlarge
//! runs toward the paper's full settings.

/// Runtime knobs shared by every bench target.
#[derive(Debug, Clone, Copy)]
pub struct BenchConfig {
    /// Multiplier applied to dataset preset sizes (1.0 = preset default).
    pub scale: f64,
    /// Training epochs per run.
    pub epochs: usize,
    /// Number of repeated runs (different seeds) per configuration.
    pub repeats: usize,
}

impl Default for BenchConfig {
    fn default() -> Self {
        // Sized so the full `cargo bench` suite completes in tens of minutes
        // on a single core; the paper's settings (500 epochs, 5–10 repeats,
        // full-size graphs) are reachable via the SIGMA_* environment knobs.
        Self {
            scale: 1.0,
            epochs: 40,
            repeats: 1,
        }
    }
}

impl BenchConfig {
    /// Reads configuration from `SIGMA_SCALE`, `SIGMA_EPOCHS` and
    /// `SIGMA_REPEATS`, falling back to defaults for unset or unparsable
    /// values.
    pub fn from_env() -> Self {
        let mut cfg = Self::default();
        if let Some(v) = read_env_f64("SIGMA_SCALE") {
            if v > 0.0 {
                cfg.scale = v;
            }
        }
        if let Some(v) = read_env_usize("SIGMA_EPOCHS") {
            if v > 0 {
                cfg.epochs = v;
            }
        }
        if let Some(v) = read_env_usize("SIGMA_REPEATS") {
            if v > 0 {
                cfg.repeats = v;
            }
        }
        cfg
    }
}

fn read_env_f64(key: &str) -> Option<f64> {
    std::env::var(key).ok()?.trim().parse().ok()
}

fn read_env_usize(key: &str) -> Option<usize> {
    std::env::var(key).ok()?.trim().parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_positive() {
        let cfg = BenchConfig::default();
        assert!(cfg.scale > 0.0);
        assert!(cfg.epochs > 0);
        assert!(cfg.repeats > 0);
    }

    #[test]
    fn from_env_ignores_garbage() {
        std::env::set_var("SIGMA_SCALE", "not-a-number");
        std::env::set_var("SIGMA_EPOCHS", "-3");
        let cfg = BenchConfig::from_env();
        assert_eq!(cfg.scale, BenchConfig::default().scale);
        assert_eq!(cfg.epochs, BenchConfig::default().epochs);
        std::env::remove_var("SIGMA_SCALE");
        std::env::remove_var("SIGMA_EPOCHS");
    }

    #[test]
    fn from_env_reads_valid_values() {
        std::env::set_var("SIGMA_REPEATS", "7");
        let cfg = BenchConfig::from_env();
        assert_eq!(cfg.repeats, 7);
        std::env::remove_var("SIGMA_REPEATS");
    }
}
