//! Shared experiment-running helpers used by every bench target.

use crate::BenchConfig;
use sigma::{
    ContextBuilder, GraphContext, ModelHyperParams, ModelKind, TrainConfig, TrainReport, Trainer,
};
use sigma_datasets::{Dataset, DatasetPreset, Split};
use sigma_simrank::{PprConfig, SimRankConfig};

/// Which optional operators a bench needs in its [`GraphContext`].
#[derive(Debug, Clone, Copy)]
pub struct OperatorSet {
    /// Top-k for the SimRank operator (`None` skips SimRank).
    pub simrank_top_k: Option<usize>,
    /// SimRank approximation error threshold ε.
    pub simrank_epsilon: f64,
    /// Whether to precompute the PPR operator.
    pub ppr: bool,
    /// Whether to precompute the 2-hop operator.
    pub two_hop: bool,
}

impl Default for OperatorSet {
    fn default() -> Self {
        Self {
            simrank_top_k: Some(16),
            simrank_epsilon: 0.1,
            ppr: false,
            two_hop: false,
        }
    }
}

impl OperatorSet {
    /// Everything enabled — used by the Table V / Table VIII sweeps.
    pub fn full() -> Self {
        Self {
            simrank_top_k: Some(16),
            simrank_epsilon: 0.1,
            ppr: true,
            two_hop: true,
        }
    }
}

/// Builds a dataset for `preset` at the bench scale, together with its
/// default split and a context holding the requested operators.
pub fn prepare(
    preset: DatasetPreset,
    cfg: &BenchConfig,
    ops: OperatorSet,
    seed: u64,
) -> (GraphContext, Split) {
    let data = preset
        .build(cfg.scale, seed)
        .expect("preset generation cannot fail for valid scales");
    prepare_dataset(data, ops, seed)
}

/// Builds the context and split for an already-generated dataset.
pub fn prepare_dataset(data: Dataset, ops: OperatorSet, seed: u64) -> (GraphContext, Split) {
    let split = data.default_split(seed).expect("non-empty dataset");
    let mut builder = ContextBuilder::new(data);
    if let Some(k) = ops.simrank_top_k {
        let cfg = SimRankConfig::new(0.6, ops.simrank_epsilon, Some(k))
            .expect("valid SimRank configuration");
        builder = builder.with_simrank(cfg);
    }
    if ops.ppr {
        builder = builder.with_ppr(PprConfig {
            top_k: ops.simrank_top_k.or(Some(16)),
            ..PprConfig::default()
        });
    }
    if ops.two_hop {
        builder = builder.with_two_hop();
    }
    let ctx = builder.build().expect("precomputation succeeds");
    (ctx, split)
}

/// Trains one model kind with the bench's epoch budget and returns the report.
pub fn train(
    kind: ModelKind,
    ctx: &GraphContext,
    split: &Split,
    cfg: &BenchConfig,
    hyper: &ModelHyperParams,
    seed: u64,
) -> TrainReport {
    let trainer = Trainer::new(TrainConfig {
        epochs: cfg.epochs,
        patience: (cfg.epochs / 3).max(10),
        ..TrainConfig::default()
    });
    let mut model = kind
        .build(ctx, hyper, seed)
        .unwrap_or_else(|e| panic!("failed to build {}: {e}", kind.name()));
    trainer
        .train(model.as_mut(), ctx, split, seed)
        .unwrap_or_else(|e| panic!("failed to train {}: {e}", kind.name()))
}

/// Trains one model kind over several seeds, returning (mean, std) of test
/// accuracy in percent and the mean learning time in seconds.
pub fn repeated_accuracy(
    kind: ModelKind,
    ctx: &GraphContext,
    split: &Split,
    cfg: &BenchConfig,
    hyper: &ModelHyperParams,
) -> (f64, f64, f64) {
    let mut accs = Vec::with_capacity(cfg.repeats);
    let mut times = Vec::with_capacity(cfg.repeats);
    for seed in 0..cfg.repeats as u64 {
        let report = train(kind, ctx, split, cfg, hyper, seed);
        accs.push(report.test_accuracy as f64 * 100.0);
        times.push(report.learning_time().as_secs_f64());
    }
    let mean = accs.iter().sum::<f64>() / accs.len() as f64;
    let var = accs.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / accs.len() as f64;
    let mean_time = times.iter().sum::<f64>() / times.len() as f64;
    (mean, var.sqrt(), mean_time)
}

/// The default hyper-parameters used across the benchmark suite (small enough
/// for the reduced datasets, matching the paper's "small" settings).
pub fn default_hyper() -> ModelHyperParams {
    ModelHyperParams::small()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepare_and_train_smoke() {
        let cfg = BenchConfig {
            scale: 0.3,
            epochs: 3,
            repeats: 1,
        };
        let (ctx, split) = prepare(DatasetPreset::Texas, &cfg, OperatorSet::default(), 0);
        assert!(ctx.simrank().is_some());
        let report = train(ModelKind::Sigma, &ctx, &split, &cfg, &default_hyper(), 0);
        assert!(report.final_train_loss.is_finite());
        let (mean, std, time) =
            repeated_accuracy(ModelKind::Mlp, &ctx, &split, &cfg, &default_hyper());
        assert!((0.0..=100.0).contains(&mean));
        assert!(std >= 0.0);
        assert!(time >= 0.0);
    }

    #[test]
    fn operator_sets() {
        let full = OperatorSet::full();
        assert!(full.ppr && full.two_hop);
        let default = OperatorSet::default();
        assert!(!default.ppr && !default.two_hop);
    }
}
