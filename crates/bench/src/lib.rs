//! # sigma-bench
//!
//! Benchmark harness for the SIGMA reproduction. The library portion holds
//! shared helpers (environment-variable configuration, table formatting);
//! each bench target under `benches/` regenerates one table or figure of the
//! paper. See `EXPERIMENTS.md` at the repository root for the mapping.

pub mod config;
pub mod runner;
pub mod table;

pub use config::BenchConfig;
pub use table::TablePrinter;
