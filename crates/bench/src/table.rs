//! Plain-text table rendering for bench outputs.
//!
//! Bench targets print the same rows the paper's tables report; this helper
//! keeps the formatting consistent and readable inside `cargo bench` output.

/// Accumulates rows and prints an aligned plain-text table.
#[derive(Debug, Default)]
pub struct TablePrinter {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TablePrinter {
    /// Creates a printer with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row. Rows shorter than the header are right-padded with
    /// empty cells; longer rows are truncated to the header width.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut cells: Vec<String> = row.into_iter().map(Into::into).collect();
        cells.resize(self.header.len(), String::new());
        self.rows.push(cells);
    }

    /// Number of data rows currently stored.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table as an aligned string.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1))));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table with a title banner.
    pub fn print(&self, title: &str) {
        println!("\n=== {title} ===");
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TablePrinter::new(vec!["model", "acc"]);
        t.add_row(vec!["SIGMA", "85.3"]);
        t.add_row(vec!["GCN", "55.1"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("model"));
        assert!(lines[2].contains("SIGMA"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn pads_and_truncates_rows() {
        let mut t = TablePrinter::new(vec!["a", "b", "c"]);
        t.add_row(vec!["1"]);
        t.add_row(vec!["1", "2", "3", "4"]);
        let s = t.render();
        assert!(s.contains('1'));
        assert!(!s.contains('4'));
    }
}
