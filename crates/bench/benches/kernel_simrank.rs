//! Criterion micro-benchmarks of the similarity precomputation kernels:
//! exact SimRank vs LocalPush at two error thresholds, and top-k PPR.

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_datasets::DatasetPreset;
use sigma_simrank::{exact_simrank, topk_ppr_matrix, LocalPush, PprConfig, SimRankConfig};

fn simrank_benchmarks(c: &mut Criterion) {
    let data = DatasetPreset::Texas.build(1.0, 9).expect("preset");
    let graph = data.graph.clone();

    let mut group = c.benchmark_group("simrank_precompute");
    group.sample_size(10);
    group.bench_function("exact_fixed_point", |b| {
        b.iter(|| exact_simrank(&graph, &SimRankConfig::default()).expect("exact"))
    });
    group.bench_function("localpush_eps_0.1", |b| {
        b.iter(|| {
            LocalPush::new(&graph, SimRankConfig::new(0.6, 0.1, Some(16)).unwrap())
                .expect("localpush")
                .run_to_operator()
        })
    });
    group.bench_function("localpush_eps_0.01", |b| {
        b.iter(|| {
            LocalPush::new(&graph, SimRankConfig::new(0.6, 0.01, Some(16)).unwrap())
                .expect("localpush")
                .run_to_operator()
        })
    });
    group.bench_function("topk_ppr", |b| {
        b.iter(|| {
            topk_ppr_matrix(
                &graph,
                &PprConfig {
                    top_k: Some(16),
                    ..PprConfig::default()
                },
            )
            .expect("ppr")
        })
    });
    group.finish();
}

criterion_group!(benches, simrank_benchmarks);
criterion_main!(benches);
