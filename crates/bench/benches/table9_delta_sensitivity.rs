//! Table IX: sensitivity of the feature factor δ on Penn94-, Arxiv- and
//! Pokec-like presets.

use sigma::ModelKind;
use sigma_bench::runner::{default_hyper, prepare, train, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;

fn main() {
    let cfg = BenchConfig::from_env();
    let deltas = [0.1, 0.3, 0.5, 0.7, 0.9];
    let presets = [
        DatasetPreset::Penn94,
        DatasetPreset::ArxivYear,
        DatasetPreset::Pokec,
    ];
    let mut header = vec!["delta".to_string()];
    header.extend(presets.iter().map(|p| p.stats().name.to_string()));
    let mut table = TablePrinter::new(header);

    // Prepare contexts once per preset, sweep δ inside.
    let prepared: Vec<_> = presets
        .iter()
        .map(|&p| prepare(p, &cfg, OperatorSet::default(), 47))
        .collect();
    let mut best_delta: Vec<(f64, f64)> = vec![(0.0, f64::MIN); presets.len()];
    for &delta in &deltas {
        let mut row = vec![format!("{delta:.1}")];
        for (i, (ctx, split)) in prepared.iter().enumerate() {
            let hyper = default_hyper().with_delta(delta);
            let report = train(ModelKind::Sigma, ctx, split, &cfg, &hyper, 47);
            let acc = report.test_accuracy as f64 * 100.0;
            if acc > best_delta[i].1 {
                best_delta[i] = (delta, acc);
            }
            row.push(format!("{acc:.2}"));
        }
        table.add_row(row);
    }
    table.print("Table IX: SIGMA test accuracy (%) across delta values");
    for (i, preset) in presets.iter().enumerate() {
        println!(
            "{}: best delta = {:.1} ({:.2}%)",
            preset.stats().name,
            best_delta[i].0,
            best_delta[i].1
        );
    }
    println!("paper shape: different datasets prefer different delta values (Penn94 leans on the");
    println!("adjacency embedding, pokec on node features), and accuracy varies only mildly across delta.");
}
