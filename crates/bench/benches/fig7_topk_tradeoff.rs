//! Fig. 7: accuracy / runtime trade-off over the top-k parameter with the
//! approximation error fixed at ε = 0.1.

use sigma::ModelKind;
use sigma_bench::runner::{default_hyper, prepare, train, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;

fn main() {
    let cfg = BenchConfig::from_env();
    let ks = [4usize, 8, 16, 32, 64, 128, 256];
    let mut table = TablePrinter::new(vec!["top-k", "runtime (s)", "test acc (%)"]);
    let mut prev_acc: Option<f64> = None;
    let mut plateau_k = None;
    for &k in &ks {
        let ops = OperatorSet {
            simrank_top_k: Some(k),
            ..OperatorSet::default()
        };
        let (ctx, split) = prepare(DatasetPreset::Pokec, &cfg, ops, 41);
        let report = train(ModelKind::Sigma, &ctx, &split, &cfg, &default_hyper(), 41);
        let runtime = report.learning_time().as_secs_f64();
        let acc = report.test_accuracy as f64 * 100.0;
        if let Some(prev) = prev_acc {
            if plateau_k.is_none() && (acc - prev).abs() < 0.5 {
                plateau_k = Some(k);
            }
        }
        prev_acc = Some(acc);
        table.add_row(vec![
            k.to_string(),
            format!("{runtime:.3}"),
            format!("{acc:.1}"),
        ]);
    }
    table.print("Fig. 7: top-k runtime / accuracy trade-off on pokec (epsilon = 0.1)");
    if let Some(k) = plateau_k {
        println!(
            "accuracy plateaus around k = {k} (paper: k = 32), while runtime keeps growing with k;"
        );
    }
    println!("paper shape: k in {{16, 32}} is the sweet spot between accuracy and cost.");
}
