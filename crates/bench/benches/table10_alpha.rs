//! Table X: convergent values of the learnable balance parameter α on the
//! six large-scale presets.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sigma::{Model, SigmaModel, TrainConfig, Trainer};
use sigma_bench::runner::{default_hyper, prepare, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;

fn main() {
    let cfg = BenchConfig::from_env();
    let trainer = Trainer::new(TrainConfig {
        epochs: cfg.epochs,
        patience: 0,
        ..TrainConfig::default()
    });
    let mut table = TablePrinter::new(vec![
        "dataset",
        "H_node",
        "convergent alpha",
        "test acc (%)",
    ]);
    for preset in DatasetPreset::LARGE {
        let (ctx, split) = prepare(preset, &cfg, OperatorSet::default(), 53);
        let hyper = default_hyper().with_learnable_alpha(true).with_alpha(0.5);
        let mut rng = StdRng::seed_from_u64(53);
        let mut model = SigmaModel::new(&ctx, &hyper, &mut rng).expect("SIGMA builds");
        let report = trainer
            .train(&mut model as &mut dyn Model, &ctx, &split, 53)
            .expect("SIGMA trains");
        table.add_row(vec![
            preset.stats().name.to_string(),
            format!("{:.2}", ctx.dataset().node_homophily().unwrap_or(f64::NAN)),
            format!("{:.2}", model.alpha()),
            format!("{:.1}", report.test_accuracy * 100.0),
        ]);
    }
    table.print("Table X: convergent alpha per large-scale dataset (initialised at 0.5)");
    println!("paper shape: alpha converges to dataset-specific values; strongly heterophilous");
    println!(
        "graphs (snap-patents) push alpha low, i.e. they rely most on the global aggregation."
    );
}
