//! Table V: classification accuracy of SIGMA and the baselines across all 12
//! dataset presets, with average ranks.
//!
//! Dataset sizes are the reduced reproduction presets (see DESIGN.md §2);
//! set `SIGMA_SCALE`, `SIGMA_EPOCHS`, `SIGMA_REPEATS` to enlarge runs. The
//! expected *shape* is what matters: SIGMA and the decoupled heterophilous
//! models (GloGNN, LINKX) lead on heterophilous datasets, local GNNs recover
//! on homophilous ones, and SIGMA attains the best average rank.

use sigma::ModelKind;
use sigma_bench::runner::{default_hyper, prepare, repeated_accuracy, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;
use std::collections::HashMap;

fn main() {
    let cfg = BenchConfig::from_env();
    let models = ModelKind::TABLE_V;
    let mut rank_sums: HashMap<&'static str, f64> = HashMap::new();
    let mut header: Vec<String> = vec!["dataset".to_string(), "H_node".to_string()];
    header.extend(models.iter().map(|m| m.name().to_string()));
    let mut table = TablePrinter::new(header);

    for preset in DatasetPreset::ALL {
        // Large presets are additionally shrunk so the default suite stays fast.
        let scale = if preset.stats().large_scale {
            cfg.scale * 0.6
        } else {
            cfg.scale
        };
        let local_cfg = BenchConfig { scale, ..cfg };
        let (ctx, split) = prepare(preset, &local_cfg, OperatorSet::full(), 17);
        let homophily = ctx.dataset().node_homophily().unwrap_or(f64::NAN);

        let mut row: Vec<String> = vec![preset.stats().name.to_string(), format!("{homophily:.2}")];
        let mut scores: Vec<(&'static str, f64)> = Vec::new();
        for kind in models {
            let (mean, std, _) =
                repeated_accuracy(kind, &ctx, &split, &local_cfg, &default_hyper());
            row.push(format!("{mean:.1}±{std:.1}"));
            scores.push((kind.name(), mean));
        }
        table.add_row(row);

        // Per-dataset ranks (1 = best).
        scores.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        for (rank, (name, _)) in scores.iter().enumerate() {
            *rank_sums.entry(name).or_insert(0.0) += (rank + 1) as f64;
        }
    }
    table.print("Table V: test accuracy (%) per dataset");

    let mut ranks: Vec<(&str, f64)> = rank_sums
        .into_iter()
        .map(|(name, sum)| (name, sum / DatasetPreset::ALL.len() as f64))
        .collect();
    ranks.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
    let mut rank_table = TablePrinter::new(vec!["model", "average rank"]);
    for (name, rank) in &ranks {
        rank_table.add_row(vec![name.to_string(), format!("{rank:.2}")]);
    }
    rank_table.print("Table V: average rank (lower is better)");
    println!(
        "paper shape: SIGMA attains the best average rank (paper: 1.2 vs GloGNN 2.9); best here: {}",
        ranks.first().map(|(n, _)| *n).unwrap_or("n/a")
    );
}
