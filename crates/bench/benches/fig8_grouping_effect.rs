//! Fig. 8: grouping effect of the output embeddings Z on the small-scale
//! presets — same-class embedding rows look alike, different classes differ.
//!
//! The paper renders Z as an image with nodes reordered by label; here we
//! report the quantitative counterpart: the ratio between mean inter-class
//! and mean intra-class embedding distance (higher = stronger grouping), and
//! a coarse per-class block map of average embedding values.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sigma::{Model, SigmaModel, TrainConfig, Trainer};
use sigma_bench::runner::{default_hyper, prepare, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;

fn main() {
    let cfg = BenchConfig::from_env();
    let trainer = Trainer::new(TrainConfig {
        epochs: cfg.epochs,
        patience: 0,
        ..TrainConfig::default()
    });
    let mut table = TablePrinter::new(vec![
        "dataset",
        "intra-class dist",
        "inter-class dist",
        "separation ratio",
    ]);
    for preset in DatasetPreset::SMALL {
        let (ctx, split) = prepare(preset, &cfg, OperatorSet::default(), 59);
        let hyper = default_hyper().with_dropout(0.0);
        let mut rng = StdRng::seed_from_u64(59);
        let mut model = SigmaModel::new(&ctx, &hyper, &mut rng).expect("SIGMA builds");
        let _ = trainer
            .train(&mut model as &mut dyn Model, &ctx, &split, 59)
            .expect("SIGMA trains");
        let z = model.forward(&ctx, false, &mut rng).expect("forward");

        let labels = ctx.labels();
        let n = ctx.num_nodes();
        let (mut intra, mut inter) = (Vec::new(), Vec::new());
        // Subsample pairs for the distance statistics.
        for u in (0..n).step_by(3) {
            for v in (1..n).step_by(7) {
                if u == v {
                    continue;
                }
                let d = z.row_distance(u, v) as f64;
                if labels[u] == labels[v] {
                    intra.push(d);
                } else {
                    inter.push(d);
                }
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        let (mi, me) = (mean(&intra), mean(&inter));
        table.add_row(vec![
            preset.stats().name.to_string(),
            format!("{mi:.3}"),
            format!("{me:.3}"),
            format!("{:.2}x", me / mi.max(1e-9)),
        ]);

        // Block map: average logit per (class, output dimension) — the text
        // analogue of Fig. 8's rectangular patterns.
        let classes = ctx.num_classes();
        println!(
            "\nFig. 8 block map for {} (rows = true class, cols = logit dim):",
            preset.stats().name
        );
        for c in 0..classes {
            let members: Vec<usize> = (0..n).filter(|&v| labels[v] == c).collect();
            let mut row = format!("  class {c}: ");
            for j in 0..z.cols() {
                let avg: f32 =
                    members.iter().map(|&v| z.get(v, j)).sum::<f32>() / members.len().max(1) as f32;
                row.push_str(&format!("{avg:>7.2}"));
            }
            println!("{row}");
        }
    }
    table.print("Fig. 8: grouping effect of SIGMA embeddings (inter/intra distance ratio > 1)");
    println!("paper shape: same-class nodes share embedding patterns (diagonal blocks in the");
    println!("block map are the largest entries of their row), giving clear class separation.");
}
