//! Serving load harness: Zipfian node popularity against the inference
//! engine, with edge-edit / incremental-repair traffic interleaved into the
//! query stream.
//!
//! Real serving workloads are skewed — a few hub nodes absorb most queries —
//! and the cache hit rate, and therefore the latency distribution, depends
//! on that skew. This harness drives the engine with an inverse-CDF Zipfian
//! sampler (popularity rank decorrelated from node id by a seeded shuffle)
//! across a grid of skews × batch mixes, applying a deterministic edit batch
//! plus `repair_from` every `EDIT_EVERY` requests so repairs contend with
//! queries the way they do in production. The `similarity` mix blends in
//! top-k `most_similar` lookups, which read operator rows directly and
//! bypass the Ẑ-row cache — its cache profile against `interactive` shows
//! what recommendation traffic does (and doesn't do) to the hit rate.
//!
//! Latency quantiles come from the engine's own `sigma-obs` histograms
//! (`sigma_serve_predict_ns` / `sigma_serve_predict_batch_ns`) — the harness
//! measures the metrics pipeline end to end rather than keeping a private
//! latency vector. Each config gets a fresh engine, and the previous one is
//! dropped first: the registry holds weak references, so the global snapshot
//! the harness reads is exactly one engine's histograms.
//!
//! Results go to stdout and `BENCH_serving.json` (crate dir + repo root).
//! Pass `--quick` for the CI-sized run.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use sigma::{ContextBuilder, ModelHyperParams, SigmaModel};
use sigma_bench::TablePrinter;
use sigma_datasets::DatasetPreset;
use sigma_graph::Graph;
use sigma_obs::{HistogramSnapshot, MetricValue};
use sigma_serve::{EngineConfig, ServeSnapshot, ShardRouter, ShardRouterConfig};
use sigma_simrank::{DynamicSimRank, EdgeUpdate, SimRankConfig};
use std::time::Instant;

const TOP_K: usize = 16;
/// One edit batch + one `repair_from` per this many requests.
const EDIT_EVERY: usize = 50;
const EDITS_PER_BATCH: usize = 4;

/// Inverse-CDF Zipfian sampler over `n` nodes: rank `r` (0-based) is drawn
/// with probability proportional to `(r + 1)^-skew`, and ranks are mapped to
/// node ids through a seeded permutation so popularity is independent of id
/// order (and of the generator's community layout).
struct ZipfSampler {
    cumulative: Vec<f64>,
    node_of_rank: Vec<usize>,
}

impl ZipfSampler {
    fn new(n: usize, skew: f64, seed: u64) -> Self {
        let mut node_of_rank: Vec<usize> = (0..n).collect();
        node_of_rank.shuffle(&mut StdRng::seed_from_u64(seed ^ 0x51f5));
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for rank in 0..n {
            acc += ((rank + 1) as f64).powf(-skew);
            cumulative.push(acc);
        }
        Self {
            cumulative,
            node_of_rank,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty sampler");
        let u = rng.gen_range(0.0..total);
        let rank = self.cumulative.partition_point(|&c| c <= u);
        self.node_of_rank[rank.min(self.node_of_rank.len() - 1)]
    }
}

/// A batch-size mix: request sizes drawn with the given weights.
struct BatchMix {
    name: &'static str,
    /// `(batch_size, weight)` — size 1 goes through `predict`, larger sizes
    /// through `predict_batch`.
    sizes: &'static [(usize, u32)],
    /// Percentage of requests that are top-k `most_similar` lookups instead
    /// of predicts. Similarity reads operator rows directly and never
    /// touches the Ẑ-row cache, so mixes with similarity traffic profile
    /// the cache differently than pure predict mixes.
    similar_pct: u32,
}

impl BatchMix {
    fn sample(&self, rng: &mut StdRng) -> usize {
        let total: u32 = self.sizes.iter().map(|&(_, w)| w).sum();
        let mut pick = rng.gen_range(0..total);
        for &(size, weight) in self.sizes {
            if pick < weight {
                return size;
            }
            pick -= weight;
        }
        self.sizes.last().expect("non-empty mix").0
    }
}

const MIXES: &[BatchMix] = &[
    // Online point lookups with the occasional small fan-out.
    BatchMix {
        name: "interactive",
        sizes: &[(1, 70), (4, 20), (16, 10)],
        similar_pct: 0,
    },
    // Batch-scoring traffic: almost everything arrives in bulk.
    BatchMix {
        name: "bulk",
        sizes: &[(16, 40), (64, 50), (128, 10)],
        similar_pct: 0,
    },
    // Recommendation traffic: half the requests are top-k similar-nodes
    // lookups over the same Zipfian popularity. Those bypass the Ẑ-row
    // cache entirely, so the hit-rate and eviction contrast against
    // `interactive` is the signal this mix exists to record.
    BatchMix {
        name: "similarity",
        sizes: &[(1, 70), (4, 20), (16, 10)],
        similar_pct: 50,
    },
];

const SKEWS: &[f64] = &[0.75, 1.25];

/// In-process shard counts: 1 (the router degenerates to a façade over one
/// engine — its overhead must be invisible) and 4 (repair fan-out and
/// scatter/gather in play).
const SHARD_COUNTS: &[usize] = &[1, 4];

struct ConfigResult {
    shards: usize,
    skew: f64,
    mix: &'static str,
    requests: usize,
    nodes_served: u64,
    repairs: usize,
    elapsed_s: f64,
    /// Per-request latency over all entry points (merged histograms).
    latency: HistogramSnapshot,
    predict: HistogramSnapshot,
    predict_batch: HistogramSnapshot,
    /// Top-k similarity queries served (zero for pure predict mixes).
    similar_queries: u64,
    similar: HistogramSnapshot,
    cache_hits: u64,
    cache_misses: u64,
    cache_evictions: u64,
    rows_repaired: u64,
    dirty_seeds: u64,
    /// Shards that received repair traffic across all rounds (the
    /// `sigma_shard_repair_fanout_total` counter).
    repair_fanout: u64,
    /// Shards skipped by footprint-sparse repair fan-out.
    repair_skipped: u64,
}

/// Pulls one named histogram out of the global metrics snapshot.
fn histogram(snap: &sigma_obs::MetricsSnapshot, name: &str) -> HistogramSnapshot {
    match snap.get(name) {
        Some(MetricValue::Histogram(h)) => h.clone(),
        _ => HistogramSnapshot::empty(),
    }
}

/// Deterministic edit batch `round` rounds into the stream: chord inserts
/// and ring deletions, the same pattern the incremental-repair bench uses.
fn edit_batch(n: usize, round: usize) -> Vec<EdgeUpdate> {
    (0..EDITS_PER_BATCH)
        .map(|j| {
            let i = round * EDITS_PER_BATCH + j;
            if i.is_multiple_of(2) {
                EdgeUpdate::Insert((i * 17) % n, (i * 17 + n / 2) % n)
            } else {
                EdgeUpdate::Delete((i * 29) % n, (i * 29 + 1) % n)
            }
        })
        .collect()
}

fn run_config(
    graph: &Graph,
    snapshot: &ServeSnapshot,
    simrank: SimRankConfig,
    shards: usize,
    skew: f64,
    mix: &BatchMix,
    requests: usize,
) -> ConfigResult {
    let n = graph.num_nodes();
    // Fresh maintainer per config (deterministic, so its operator matches
    // the shared snapshot) and a cache sized for pressure, not residence —
    // total capacity held constant across shard counts so hit rates stay
    // comparable (per-shard caches split the same budget).
    let mut maintainer =
        DynamicSimRank::new(graph.clone(), simrank, usize::MAX / 2).expect("maintainer");
    let _ = maintainer.operator().expect("initial operator");
    let engine = ShardRouter::new(
        snapshot,
        &ShardRouterConfig {
            shards,
            engine: EngineConfig {
                cache_capacity: (n / 4 / shards).max(1),
                workers: 0,
                max_chunk: 64,
            },
        },
    )
    .expect("shard router");

    let sampler = ZipfSampler::new(n, skew, 7);
    let mut rng = StdRng::seed_from_u64((skew * 1000.0) as u64 ^ mix.name.len() as u64);
    let mut repairs = 0usize;
    let mut batch = Vec::new();
    let start = Instant::now();
    for request in 0..requests {
        if request > 0 && request % EDIT_EVERY == 0 {
            maintainer
                .apply_batch(&edit_batch(n, repairs))
                .expect("edits in bounds");
            let repair = engine.repair_from(&mut maintainer).expect("repair");
            assert!(!repair.full_refresh, "engine lost its operator lineage");
            repairs += 1;
        }
        if mix.similar_pct > 0 && rng.gen_range(0..100u32) < mix.similar_pct {
            let _ = engine
                .most_similar(sampler.sample(&mut rng), TOP_K / 2)
                .expect("similar query");
            continue;
        }
        let size = mix.sample(&mut rng);
        if size == 1 {
            let _ = engine.predict(sampler.sample(&mut rng)).expect("query");
        } else {
            batch.clear();
            batch.extend((0..size).map(|_| sampler.sample(&mut rng)));
            let _ = engine.predict_batch(&batch).expect("batch query");
        }
    }
    let elapsed_s = start.elapsed().as_secs_f64();

    let stats = engine.stats();
    let metrics = sigma_obs::snapshot();
    let predict = histogram(&metrics, "sigma_serve_predict_ns");
    let predict_batch = histogram(&metrics, "sigma_serve_predict_batch_ns");
    let similar = histogram(&metrics, "sigma_serve_similar_ns");
    // Dropping the router here releases its registry entries (weak refs), so
    // the next config's snapshot sees only its own engines.
    drop(engine);

    ConfigResult {
        shards,
        skew,
        mix: mix.name,
        requests,
        nodes_served: stats.engines.nodes_served,
        repairs,
        elapsed_s,
        latency: predict.merged(&predict_batch).merged(&similar),
        predict,
        predict_batch,
        similar_queries: stats.engines.similar_queries,
        similar,
        cache_hits: stats.engines.cache_hits,
        cache_misses: stats.engines.cache_misses,
        cache_evictions: stats.engines.cache_evictions,
        rows_repaired: stats.engines.rows_repaired,
        dirty_seeds: stats.repair_dirty_seeds,
        repair_fanout: stats.repair_fanout,
        repair_skipped: stats.repair_skipped,
    }
}

/// Client-side wire measurements from one through-the-daemon run.
struct WireResult {
    clients: usize,
    requests: usize,
    elapsed_s: f64,
    /// Exact client-observed latency quantiles, ns (not histogram buckets —
    /// the client keeps every sample).
    p50_ns: u64,
    p95_ns: u64,
    p99_ns: u64,
    mean_ns: f64,
    /// Overload-phase accounting: one-shot connections fired at a
    /// deliberately tiny admission queue.
    overload_attempts: usize,
    overload_shed: usize,
}

fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 * q).ceil() as usize).saturating_sub(1);
    sorted[idx.min(sorted.len() - 1)]
}

/// Drives the daemon through real sockets: a latency phase (keep-alive
/// clients, Zipfian single predicts, every sample timed client-side) and an
/// overload phase (a burst of one-shot connections against a tiny admission
/// queue, counting `429` sheds).
fn run_wire(snapshot: &ServeSnapshot, requests: usize) -> WireResult {
    use sigma_daemon::{Backend, Daemon, DaemonConfig};
    use sigma_serve::InferenceEngine;
    use std::sync::Arc;

    let n = snapshot.num_nodes();
    let clients = 4usize;

    // Latency phase: a healthy daemon, default admission settings.
    let engine =
        Arc::new(InferenceEngine::new(snapshot, EngineConfig::default()).expect("wire engine"));
    let daemon =
        Daemon::start(Backend::Engine(engine), None, DaemonConfig::default()).expect("wire daemon");
    let addr = daemon.local_addr();

    let per_client = requests / clients;
    let start = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let sampler = ZipfSampler::new(n, 1.25, 7 + c as u64);
                let mut rng = StdRng::seed_from_u64(c as u64 ^ 0x3141);
                let mut client = sigma_testutil::WireClient::connect(addr).expect("wire client");
                let mut samples = Vec::with_capacity(per_client);
                for _ in 0..per_client {
                    let node = sampler.sample(&mut rng);
                    let body = format!("{{\"node\": {node}}}");
                    let sent = Instant::now();
                    let resp = client
                        .request("POST", "/v1/predict", &[], body.as_bytes())
                        .expect("wire predict");
                    assert_eq!(resp.status, 200, "healthy-phase request failed");
                    samples.push(sent.elapsed().as_nanos() as u64);
                }
                samples
            })
        })
        .collect();
    let mut samples: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("wire client thread"))
        .collect();
    let elapsed_s = start.elapsed().as_secs_f64();
    samples.sort_unstable();
    let mean_ns = samples.iter().sum::<u64>() as f64 / samples.len().max(1) as f64;
    let measured = samples.len();
    let (p50_ns, p95_ns, p99_ns) = (
        exact_quantile(&samples, 0.50),
        exact_quantile(&samples, 0.95),
        exact_quantile(&samples, 0.99),
    );
    daemon.shutdown();

    // Overload phase: 1 worker, a 2-deep queue, and a burst of one-shot
    // connections — the daemon must shed the excess with 429, cheaply.
    let engine =
        Arc::new(InferenceEngine::new(snapshot, EngineConfig::default()).expect("overload engine"));
    let config = DaemonConfig {
        workers: 1,
        queue_capacity: 2,
        ..DaemonConfig::default()
    };
    let daemon = Daemon::start(Backend::Engine(engine), None, config).expect("overload daemon");
    let addr = daemon.local_addr();
    let burst_threads = 8usize;
    let per_thread = 16usize;
    let shed = Arc::new(std::sync::atomic::AtomicUsize::new(0));
    let burst: Vec<_> = (0..burst_threads)
        .map(|c| {
            let shed = shed.clone();
            std::thread::spawn(move || {
                let sampler = ZipfSampler::new(n, 1.25, 11 + c as u64);
                let mut rng = StdRng::seed_from_u64(c as u64 ^ 0x2718);
                for _ in 0..per_thread {
                    let node = sampler.sample(&mut rng);
                    match sigma_testutil::wire::post_json(
                        addr,
                        "/v1/predict",
                        &format!("{{\"node\": {node}}}"),
                    ) {
                        Ok(resp) if resp.status == 429 || resp.status == 503 => {
                            shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                        Ok(_) => {}
                        // A connection reset mid-shed still counts as shed.
                        Err(_) => {
                            shed.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for handle in burst {
        handle.join().expect("burst thread");
    }
    let overload_shed = shed.load(std::sync::atomic::Ordering::Relaxed);
    daemon.shutdown();

    WireResult {
        clients,
        requests: measured,
        elapsed_s,
        p50_ns,
        p95_ns,
        p99_ns,
        mean_ns,
        overload_attempts: burst_threads * per_thread,
        overload_shed,
    }
}

fn quantiles_json(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\": {}, \"mean_ns\": {:.0}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}",
        h.count,
        h.mean(),
        h.quantile(0.50),
        h.quantile(0.95),
        h.quantile(0.99)
    )
}

fn emit_json(quick: bool, n: usize, edges: usize, results: &[ConfigResult], wire: &WireResult) {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"serving_load\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(
        "  \"note\": \"latency quantiles are read from the engine's sigma-obs histograms \
         (bucket upper bounds, <= 12.5% relative error); absolute numbers are single-host and \
         the in-process pool shares cores with the load generator — cross-config ratios \
         (skew and batch-mix effects on hit rate and tail latency) are the portable signal\",\n",
    );
    out.push_str(&format!(
        "  \"graph\": {{\"nodes\": {n}, \"edges\": {edges}}},\n"
    ));
    out.push_str(&format!(
        "  \"edit_traffic\": {{\"edit_every_requests\": {EDIT_EVERY}, \
         \"edits_per_batch\": {EDITS_PER_BATCH}}},\n"
    ));
    out.push_str("  \"configs\": [\n");
    for (i, r) in results.iter().enumerate() {
        let hit_rate = r.cache_hits as f64 / (r.cache_hits + r.cache_misses).max(1) as f64;
        out.push_str(&format!(
            "    {{\"shards\": {}, \"skew\": {}, \"mix\": \"{}\", \"requests\": {}, \
             \"nodes_served\": {}, \
             \"repairs\": {}, \"elapsed_s\": {:.3}, \
             \"throughput_requests_per_s\": {:.1}, \"throughput_nodes_per_s\": {:.1}, \
             \"latency\": {}, \"predict\": {}, \"predict_batch\": {}, \
             \"similar\": {{\"queries\": {}, \"latency\": {}}}, \
             \"cache\": {{\"hits\": {}, \"misses\": {}, \"evictions\": {}, \
             \"hit_rate\": {:.4}}}, \
             \"repair\": {{\"rows_repaired\": {}, \"dirty_seeds\": {}, \
             \"shard_fanout\": {}, \"shard_skipped\": {}}}}}{}\n",
            r.shards,
            r.skew,
            r.mix,
            r.requests,
            r.nodes_served,
            r.repairs,
            r.elapsed_s,
            r.requests as f64 / r.elapsed_s,
            r.nodes_served as f64 / r.elapsed_s,
            quantiles_json(&r.latency),
            quantiles_json(&r.predict),
            quantiles_json(&r.predict_batch),
            r.similar_queries,
            quantiles_json(&r.similar),
            r.cache_hits,
            r.cache_misses,
            r.cache_evictions,
            hit_rate,
            r.rows_repaired,
            r.dirty_seeds,
            r.repair_fanout,
            r.repair_skipped,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str(&format!(
        "  \"wire\": {{\"clients\": {}, \"requests\": {}, \"elapsed_s\": {:.3}, \
         \"throughput_requests_per_s\": {:.1}, \
         \"latency\": {{\"mean_ns\": {:.0}, \"p50_ns\": {}, \"p95_ns\": {}, \"p99_ns\": {}}}, \
         \"overload\": {{\"attempts\": {}, \"shed\": {}, \"shed_rate\": {:.4}}}}}\n",
        wire.clients,
        wire.requests,
        wire.elapsed_s,
        wire.requests as f64 / wire.elapsed_s.max(1e-9),
        wire.mean_ns,
        wire.p50_ns,
        wire.p95_ns,
        wire.p99_ns,
        wire.overload_attempts,
        wire.overload_shed,
        wire.overload_shed as f64 / wire.overload_attempts.max(1) as f64,
    ));
    out.push_str("}\n");

    let here = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_serving.json");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serving.json");
    std::fs::write(here, &out).expect("write crates/bench/BENCH_serving.json");
    std::fs::write(root, &out).expect("write BENCH_serving.json at the repo root");
    println!("wrote {here} (copied to the repository root)");
}

fn main() {
    if !sigma_obs::ENABLED {
        // The whole point of this harness is exercising the metrics pipeline;
        // without it there are no histograms to report from.
        println!("serving_load: built without the `obs` feature; skipping (no histograms)");
        return;
    }
    let quick = std::env::args().any(|a| a == "--quick");
    let (scale, requests) = if quick { (0.25, 400) } else { (1.0, 2000) };

    let data = DatasetPreset::Pokec.build(scale, 47).expect("preset");
    let graph = data.graph.clone();
    let n = graph.num_nodes();
    let edges = graph.num_edges();
    let features = data.features.clone();
    println!(
        "pokec-like serving graph: {n} nodes, {edges} edges, {requests} requests/config \
         (quick: {quick})"
    );

    // One shared snapshot: untrained (deterministically initialised) model
    // over the maintainer's operator — latency does not depend on weight
    // values, and skipping training keeps the harness about serving.
    let simrank = SimRankConfig::default().with_top_k(TOP_K);
    let mut maintainer =
        DynamicSimRank::new(graph.clone(), simrank, usize::MAX / 2).expect("maintainer");
    let operator = maintainer.operator().expect("operator");
    let ctx = ContextBuilder::new(data)
        .with_simrank_operator(operator)
        .build()
        .expect("context");
    let model = SigmaModel::new(
        &ctx,
        &ModelHyperParams::small(),
        &mut StdRng::seed_from_u64(47),
    )
    .expect("model");
    let snapshot = ServeSnapshot::new(
        "serving-load",
        model.snapshot(&ctx).expect("model snapshot"),
        features,
        graph.to_adjacency(),
    )
    .expect("serve snapshot");

    let mut table = TablePrinter::new(vec![
        "shards", "skew", "mix", "req/s", "p50 µs", "p95 µs", "p99 µs", "hit rate", "sim q",
        "repairs", "fanout",
    ]);
    let mut results = Vec::new();
    for &shards in SHARD_COUNTS {
        for &skew in SKEWS {
            for mix in MIXES {
                let r = run_config(&graph, &snapshot, simrank, shards, skew, mix, requests);
                let hits = r.cache_hits as f64 / (r.cache_hits + r.cache_misses).max(1) as f64;
                table.add_row(vec![
                    format!("{shards}"),
                    format!("{skew}"),
                    r.mix.to_string(),
                    format!("{:.0}", r.requests as f64 / r.elapsed_s),
                    format!("{:.1}", r.latency.quantile(0.50) as f64 / 1e3),
                    format!("{:.1}", r.latency.quantile(0.95) as f64 / 1e3),
                    format!("{:.1}", r.latency.quantile(0.99) as f64 / 1e3),
                    format!("{hits:.3}"),
                    format!("{}", r.similar_queries),
                    format!("{}", r.repairs),
                    format!("{}/{}", r.repair_fanout, r.repair_fanout + r.repair_skipped),
                ]);
                results.push(r);
            }
        }
    }
    table.print("serving load: shards x Zipfian skew x batch mix");
    println!("(latency = per-request, merged over predict, predict_batch, and similar histograms)");

    // Through-the-wire mode: the same snapshot served by a real
    // `sigma-daemon` over loopback sockets, latency measured client-side.
    let wire = run_wire(&snapshot, requests);
    println!(
        "wire ({} keep-alive clients, {} requests): p50 {:.1} µs, p95 {:.1} µs, p99 {:.1} µs; \
         overload burst shed {}/{} ({:.1}%)",
        wire.clients,
        wire.requests,
        wire.p50_ns as f64 / 1e3,
        wire.p95_ns as f64 / 1e3,
        wire.p99_ns as f64 / 1e3,
        wire.overload_shed,
        wire.overload_attempts,
        100.0 * wire.overload_shed as f64 / wire.overload_attempts.max(1) as f64,
    );
    emit_json(quick, n, edges, &results, &wire);
}
