//! Fig. 5: scalability — SIGMA vs GloGNN learning time (and SIGMA's
//! precomputation time) as the pokec-like base graph is rescaled across edge
//! counts spaced by factors of 2.5, with a threads dimension: SIGMA's
//! learning time is reported both serial (`1t`) and on the shared
//! `sigma-parallel` pool at the configured width (`SIGMA_NUM_THREADS` or the
//! core count).

use sigma::ModelKind;
use sigma_bench::runner::{default_hyper, prepare, train, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;

fn main() {
    let cfg = BenchConfig::from_env();
    // The paper rescales the pokec graph across edge counts spaced by 2.5×
    // (fixed node set, edges removed/added at random). At the reproduction's
    // reduced node counts that protocol makes the largest graphs far denser
    // than the real pokec (average degree grows unboundedly as edges are
    // added to a small node set), which distorts both methods' costs. We
    // instead rescale the *preset* — node and edge counts grow together with
    // the paper's average degree held fixed — so the x-axis still sweeps
    // edge counts spaced by 2.5× while every graph keeps pokec-like density.
    let steps = 5usize;
    let threads = sigma_parallel::current_threads();
    let parallel_col = format!("SIGMA train ({threads}t, s)");
    let mut table = TablePrinter::new(vec![
        "edges",
        "SIGMA pre (s)",
        "SIGMA train (1t, s)",
        parallel_col.as_str(),
        "par speed-up",
        "GloGNN learn (s)",
        "speed-up",
    ]);
    let mut speedups = Vec::new();
    for i in (0..steps).rev() {
        let scale = cfg.scale * 1.6 / 2.5f64.powi(i as i32);
        let (ctx, split) = prepare(
            DatasetPreset::Pokec,
            &BenchConfig { scale, ..cfg },
            OperatorSet::default(),
            31,
        );
        let edges = ctx.dataset().graph.num_edges();
        // Serial baseline: the same training run with the pool pinned to one
        // thread (results are bitwise identical — only wall-clock changes).
        sigma_parallel::set_global_threads(1);
        let sigma_serial = train(ModelKind::Sigma, &ctx, &split, &cfg, &default_hyper(), 31);
        sigma_parallel::set_global_threads(threads);
        let sigma_report = train(ModelKind::Sigma, &ctx, &split, &cfg, &default_hyper(), 31);
        let glognn_report = train(ModelKind::GloGnn, &ctx, &split, &cfg, &default_hyper(), 31);
        // The par speed-up compares *training* time only: precomputation is
        // measured once (at the configured width) by prepare() and would
        // otherwise dilute the kernel gain as a shared additive constant.
        let sigma_train_1t = sigma_serial.train_time.as_secs_f64();
        let sigma_train = sigma_report.train_time.as_secs_f64();
        let sigma_learn = sigma_report.learning_time().as_secs_f64();
        let glognn_learn = glognn_report.train_time.as_secs_f64();
        let speedup = glognn_learn / sigma_learn.max(1e-9);
        speedups.push(speedup);
        table.add_row(vec![
            edges.to_string(),
            format!("{:.3}", sigma_report.precompute_time.as_secs_f64()),
            format!("{sigma_train_1t:.3}"),
            format!("{sigma_train:.3}"),
            format!("{:.2}x", sigma_train_1t / sigma_train.max(1e-9)),
            format!("{glognn_learn:.3}"),
            format!("{speedup:.2}x"),
        ]);
    }
    sigma_parallel::set_global_threads(0);
    table.print(&format!(
        "Fig. 5: learning time vs graph scale (edge counts spaced by 2.5x, {threads} pool threads)"
    ));
    println!("paper shape: both methods scale roughly linearly in the edge count; SIGMA's");
    println!("precomputation stays a small fraction of learning time and its speed-up over");
    println!("GloGNN grows (or at least does not shrink) with the graph size. The par");
    println!("speed-up column isolates the shared-pool gain on SIGMA's training kernels");
    println!("(precomputation excluded; ~1x on a single-core host where the extra threads");
    println!("only timeshare).");
    if let (Some(first), Some(last)) = (speedups.first(), speedups.last()) {
        println!("speed-up at smallest scale: {first:.2}x, at largest scale: {last:.2}x");
    }
}
