//! Fig. 5: scalability — SIGMA vs GloGNN learning time (and SIGMA's
//! precomputation time) as the pokec-like base graph is rescaled across edge
//! counts spaced by factors of 2.5.

use sigma::ModelKind;
use sigma_bench::runner::{default_hyper, prepare, train, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;

fn main() {
    let cfg = BenchConfig::from_env();
    // The paper rescales the pokec graph across edge counts spaced by 2.5×
    // (fixed node set, edges removed/added at random). At the reproduction's
    // reduced node counts that protocol makes the largest graphs far denser
    // than the real pokec (average degree grows unboundedly as edges are
    // added to a small node set), which distorts both methods' costs. We
    // instead rescale the *preset* — node and edge counts grow together with
    // the paper's average degree held fixed — so the x-axis still sweeps
    // edge counts spaced by 2.5× while every graph keeps pokec-like density.
    let steps = 5usize;
    let mut table = TablePrinter::new(vec![
        "edges",
        "SIGMA pre (s)",
        "SIGMA learn (s)",
        "GloGNN learn (s)",
        "speed-up",
    ]);
    let mut speedups = Vec::new();
    for i in (0..steps).rev() {
        let scale = cfg.scale * 1.6 / 2.5f64.powi(i as i32);
        let (ctx, split) = prepare(
            DatasetPreset::Pokec,
            &BenchConfig { scale, ..cfg },
            OperatorSet::default(),
            31,
        );
        let edges = ctx.dataset().graph.num_edges();
        let sigma_report = train(ModelKind::Sigma, &ctx, &split, &cfg, &default_hyper(), 31);
        let glognn_report = train(ModelKind::GloGnn, &ctx, &split, &cfg, &default_hyper(), 31);
        let sigma_learn = sigma_report.learning_time().as_secs_f64();
        let glognn_learn = glognn_report.train_time.as_secs_f64();
        let speedup = glognn_learn / sigma_learn.max(1e-9);
        speedups.push(speedup);
        table.add_row(vec![
            edges.to_string(),
            format!("{:.3}", sigma_report.precompute_time.as_secs_f64()),
            format!("{sigma_learn:.3}"),
            format!("{glognn_learn:.3}"),
            format!("{speedup:.2}x"),
        ]);
    }
    table.print("Fig. 5: learning time vs graph scale (edge counts spaced by 2.5x)");
    println!("paper shape: both methods scale roughly linearly in the edge count; SIGMA's");
    println!("precomputation stays a small fraction of learning time and its speed-up over");
    println!("GloGNN grows (or at least does not shrink) with the graph size.");
    if let (Some(first), Some(last)) = (speedups.first(), speedups.last()) {
        println!("speed-up at smallest scale: {first:.2}x, at largest scale: {last:.2}x");
    }
}
