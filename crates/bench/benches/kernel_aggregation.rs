//! Criterion micro-benchmarks of the aggregation kernels.
//!
//! Compares the per-epoch cost of:
//! * SIGMA's aggregation: one SpMM with the constant top-k SimRank operator,
//! * GloGNN-style aggregation: `k₂ · l_norm` SpMMs with Â, recomputed per epoch,
//! * a dense (`n×n`) aggregation, the cost the top-k scheme avoids.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigma_datasets::DatasetPreset;
use sigma_graph::sym_normalized_adjacency;
use sigma_matrix::DenseMatrix;
use sigma_simrank::{LocalPush, SimRankConfig};

fn aggregation_benchmarks(c: &mut Criterion) {
    let data = DatasetPreset::Penn94.build(0.6, 3).expect("preset");
    let n = data.num_nodes();
    let hidden = 32usize;
    let h = DenseMatrix::from_fn(n, hidden, |i, j| ((i * 31 + j * 7) % 13) as f32 * 0.1 - 0.6);

    let simrank = LocalPush::new(&data.graph, SimRankConfig::default().with_top_k(16))
        .expect("localpush")
        .run_to_operator();
    let a_hat = sym_normalized_adjacency(&data.graph);
    let dense_s = simrank.to_dense();

    let mut group = c.benchmark_group("aggregation_kernels");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("sigma_topk_spmm", n), &n, |b, _| {
        b.iter(|| simrank.spmm(&h).expect("spmm"))
    });
    group.bench_with_input(
        BenchmarkId::new("glognn_multihop_per_epoch", n),
        &n,
        |b, _| {
            b.iter(|| {
                // k2 = 3 hops, l_norm = 2 rounds, recomputed every epoch.
                let mut z = h.clone();
                for _ in 0..2 {
                    let mut acc = DenseMatrix::zeros(n, hidden);
                    let mut current = z.clone();
                    for k in 1..=3 {
                        current = a_hat.spmm(&current).expect("spmm");
                        acc.add_scaled(0.7f32.powi(k), &current).expect("acc");
                    }
                    z = acc;
                }
                z
            })
        },
    );
    group.bench_with_input(BenchmarkId::new("dense_full_matrix", n), &n, |b, _| {
        b.iter(|| dense_s.matmul(&h).expect("matmul"))
    });
    group.finish();
}

criterion_group!(benches, aggregation_benchmarks);
criterion_main!(benches);
