//! Table XI: the iterative SIGMA variant versus GCN at propagation depths
//! 1–3 on the large-scale presets.

use sigma::ModelKind;
use sigma_bench::runner::{default_hyper, prepare, train, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;

fn main() {
    let cfg = BenchConfig::from_env();
    let depths = [1usize, 2, 3];
    let mut header = vec!["model".to_string()];
    header.extend(
        DatasetPreset::LARGE
            .iter()
            .map(|p| p.stats().name.to_string()),
    );
    let mut table = TablePrinter::new(header);

    let prepared: Vec<_> = DatasetPreset::LARGE
        .iter()
        .map(|&p| prepare(p, &cfg, OperatorSet::default(), 61))
        .collect();

    let mut sigma_wins = 0usize;
    let mut comparisons = 0usize;
    for &depth in &depths {
        let mut gcn_row = vec![format!("GCN-{depth}")];
        let mut sigma_row = vec![format!("SIGMA-{depth}")];
        for (ctx, split) in &prepared {
            let gcn = train(
                ModelKind::Gcn(depth),
                ctx,
                split,
                &cfg,
                &default_hyper(),
                61,
            );
            let sig = train(
                ModelKind::SigmaIterative(depth),
                ctx,
                split,
                &cfg,
                &default_hyper(),
                61,
            );
            gcn_row.push(format!("{:.1}", gcn.test_accuracy * 100.0));
            sigma_row.push(format!("{:.1}", sig.test_accuracy * 100.0));
            comparisons += 1;
            if sig.test_accuracy >= gcn.test_accuracy {
                sigma_wins += 1;
            }
        }
        table.add_row(gcn_row);
        table.add_row(sigma_row);
    }
    table.print("Table XI: iterative SIGMA vs GCN at depths 1-3 (test accuracy %)");
    println!(
        "SIGMA-L matches or beats GCN-L in {sigma_wins}/{comparisons} (dataset, depth) pairs."
    );
    println!("paper shape: replacing the adjacency with the SimRank operator (plus the X_S");
    println!("embedding) lifts accuracy substantially on every heterophilous dataset.");
}
