//! Fig. 6: effect of the approximation error ε and the top-k pruning
//! parameter on the pokec-like preset — precomputation time and accuracy.

use sigma::ModelKind;
use sigma_bench::runner::{default_hyper, prepare, train, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;

fn main() {
    let cfg = BenchConfig::from_env();
    let epsilons = [0.01, 0.05, 0.1];
    let ks = [4usize, 16, 64, 256];
    let mut table = TablePrinter::new(vec![
        "epsilon",
        "top-k",
        "pre (s)",
        "operator nnz",
        "test acc (%)",
    ]);
    for &epsilon in &epsilons {
        for &k in &ks {
            let ops = OperatorSet {
                simrank_top_k: Some(k),
                simrank_epsilon: epsilon,
                ..OperatorSet::default()
            };
            let (ctx, split) = prepare(DatasetPreset::Pokec, &cfg, ops, 37);
            let report = train(ModelKind::Sigma, &ctx, &split, &cfg, &default_hyper(), 37);
            table.add_row(vec![
                format!("{epsilon}"),
                k.to_string(),
                format!("{:.3}", ctx.timings().simrank.as_secs_f64()),
                ctx.simrank().map(|s| s.nnz()).unwrap_or(0).to_string(),
                format!("{:.1}", report.test_accuracy * 100.0),
            ]);
        }
    }
    table.print("Fig. 6: effect of epsilon and top-k on pokec");
    println!("paper shape: epsilon = 0.1 already reaches the accuracy plateau — tightening to");
    println!("0.01 mostly increases precomputation time; accuracy saturates around k = 32.");
}
