//! Snapshot cold-start bench: format-v1 streamed decode versus format-v2
//! zero-copy mapping, across snapshot sizes.
//!
//! The claim under test is the v2 design's O(1) cold start: opening a v2
//! snapshot reads only the prelude, the section table, META and the
//! `indptr` endpoints, so `MappedSnapshot::open` should stay **flat** as
//! the file grows, while the v1 decode (and the v1 engine build, which
//! re-runs the encoder) grows **linearly**. Also measured, per size:
//!
//! * `verify` — the one O(bytes) pass (CRC32 + CSR invariants) a mapped
//!   engine pays before serving;
//! * engine build time, owned vs mapped (the mapped snapshot carries a
//!   precomputed `EMB` section, so its build skips the encoder);
//! * resident-set growth after open / after the first query, owned vs
//!   mapped (mapped growth is file-backed clean pages, reclaimable under
//!   memory pressure; owned growth is anonymous heap);
//! * hot-reload latency onto a fresh mapping, and the first-query latency
//!   immediately after (the post-reload cache is cold by design);
//! * bit-parity: the mapped engine's logits are asserted identical to the
//!   owned engine's on every sampled node, every size, every run.
//!
//! Results go to stdout and `BENCH_snapshot.json` (crate dir + repo root).
//! Pass `--quick` for the CI-sized run.

use sigma::snapshot::ModelSnapshot;
use sigma::AggregatorKind;
use sigma_bench::TablePrinter;
use sigma_graph::Graph;
use sigma_matrix::{CsrMatrix, DenseMatrix};
use sigma_serve::{EngineConfig, InferenceEngine, MappedSnapshot, ServeSnapshot};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

const FEATURE_DIM: usize = 64;
const HIDDEN: usize = 32;
const CLASSES: usize = 8;
const TOP_K: usize = 8;

/// Deterministic value noise in `[-1, 1)` (splitmix-style finaliser).
fn pseudo(i: usize, j: usize, seed: u64) -> f32 {
    let mut h = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((j as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
}

/// A power-law graph: ring base plus harmonically decaying head degrees —
/// the degree skew of the paper's pokec-style serving graphs.
fn power_law_graph(n: usize, max_deg: usize, seed: u64) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n {
        edges.push((u, (u + 1) % n));
        edges.push((u, (u + 7) % n));
    }
    for i in 0..n {
        let extra = max_deg / (i + 1);
        for e in 0..extra {
            let j = (i + 11 + e * 13 + (seed as usize % 17)) % n;
            if i != j {
                edges.push((i, j));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("in-bounds edges")
}

/// A top-k row-sparse operator standing in for the SimRank matrix: the
/// bench measures storage paths, not aggregation quality, so any valid
/// `n × n` CSR with realistic row sparsity does (and skips the LocalPush
/// solve that would dominate setup at the largest sizes).
fn synthetic_operator(n: usize, seed: u64) -> CsrMatrix {
    let mut triplets = Vec::with_capacity(n * TOP_K);
    for i in 0..n {
        for k in 0..TOP_K {
            let j = (i + 1 + (k * k + 3 * k) + (seed as usize % 7)) % n;
            triplets.push((i, j, pseudo(i, j, seed).abs() / TOP_K as f32 + 1e-3));
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets).expect("valid triplets")
}

fn layer(rows: usize, cols: usize, seed: u64) -> (DenseMatrix, DenseMatrix) {
    (
        DenseMatrix::from_fn(rows, cols, move |i, j| pseudo(i, j, seed) * 0.2),
        DenseMatrix::from_fn(1, cols, move |_, j| pseudo(j, 1, seed) * 0.05),
    )
}

/// A serving snapshot of `n` nodes with deterministically initialised
/// weights (cold-start cost does not depend on weight values).
fn build_snapshot(n: usize, seed: u64) -> ServeSnapshot {
    let graph = power_law_graph(n, 64, seed);
    let model = ModelSnapshot {
        delta: 0.6,
        alpha: 0.25,
        alpha_raw: None,
        dropout: 0.0,
        aggregator: AggregatorKind::SimRank,
        operator: Some(synthetic_operator(n, seed ^ 0x0b)),
        mlp_a: vec![
            layer(n, HIDDEN, seed ^ 0xa1),
            layer(HIDDEN, HIDDEN, seed ^ 0xa2),
        ],
        mlp_x: vec![
            layer(FEATURE_DIM, HIDDEN, seed ^ 0xb1),
            layer(HIDDEN, HIDDEN, seed ^ 0xb2),
        ],
        mlp_h: vec![layer(HIDDEN, CLASSES, seed ^ 0xc1)],
    };
    let features = DenseMatrix::from_fn(n, FEATURE_DIM, move |i, j| pseudo(i, j, seed ^ 0xfe));
    ServeSnapshot::new(
        format!("coldstart-{n}"),
        model,
        features,
        graph.to_adjacency(),
    )
    .expect("valid snapshot")
}

/// Resident set in kilobytes, from `/proc/self/status` (0 if unavailable).
fn rss_kb() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines()
                .find(|l| l.starts_with("VmRSS:"))
                .and_then(|l| l.split_whitespace().nth(1).and_then(|v| v.parse().ok()))
        })
        .unwrap_or(0)
}

/// Median wall-clock milliseconds of `repeats` runs of `f`.
fn time_ms<T>(repeats: usize, mut f: impl FnMut() -> T) -> f64 {
    let mut samples: Vec<f64> = (0..repeats)
        .map(|_| {
            let start = Instant::now();
            let out = f();
            let ms = start.elapsed().as_secs_f64() * 1e3;
            drop(out);
            ms
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2]
}

struct SizeResult {
    n: usize,
    v1_bytes: u64,
    v2_bytes: u64,
    v1_load_ms: f64,
    v2_open_ms: f64,
    v2_verify_ms: f64,
    owned_build_ms: f64,
    mapped_build_ms: f64,
    rss_open_kb: u64,
    rss_mapped_engine_kb: u64,
    rss_owned_engine_kb: u64,
    hot_reload_ms: f64,
    first_query_after_reload_us: f64,
}

fn run_size(n: usize, repeats: usize, dir: &std::path::Path) -> SizeResult {
    let mut snapshot = build_snapshot(n, n as u64);
    snapshot
        .precompute_embeddings()
        .expect("encoder over the bench graph");
    let v1_path: PathBuf = dir.join(format!("coldstart-{n}.v1.snapshot"));
    let v2_path: PathBuf = dir.join(format!("coldstart-{n}.v2.snapshot"));
    {
        let file = std::fs::File::create(&v1_path).expect("create v1 file");
        let mut w = std::io::BufWriter::new(file);
        snapshot.write_to_v1(&mut w).expect("v1 write");
        use std::io::Write as _;
        w.flush().expect("v1 flush");
    }
    snapshot.save(&v2_path).expect("v2 write");
    let v1_bytes = std::fs::metadata(&v1_path).expect("v1 stat").len();
    let v2_bytes = std::fs::metadata(&v2_path).expect("v2 stat").len();

    // Load-time scaling: v1 full decode vs v2 header-only open, plus the
    // deferred O(bytes) verify a mapped engine pays exactly once.
    let v1_load_ms = time_ms(repeats, || ServeSnapshot::load(&v1_path).expect("v1 load"));
    let v2_open_ms = time_ms(repeats, || MappedSnapshot::open(&v2_path).expect("v2 open"));
    let v2_verify_ms = time_ms(repeats, || {
        let m = MappedSnapshot::open(&v2_path).expect("v2 open");
        m.verify().expect("v2 verify");
        m
    });

    let config = EngineConfig {
        cache_capacity: 1024,
        workers: 0,
        max_chunk: 64,
    };
    let probe: Vec<usize> = (0..16).map(|i| (i * n) / 16).collect();

    // Resident-set story, mapped path first (clean process → the mapping's
    // growth is not masked by allocator reuse): open is near-flat; the
    // engine build faults the file pages in during verify, but as clean
    // file-backed pages, with almost no anonymous heap on top.
    let rss_before = rss_kb();
    let mapped = Arc::new(MappedSnapshot::open(&v2_path).expect("v2 open"));
    let rss_open_kb = rss_kb().saturating_sub(rss_before);
    let mapped_build_ms = time_ms(repeats, || {
        InferenceEngine::from_mapped(mapped.clone(), config).expect("mapped engine")
    });
    let mapped_engine =
        InferenceEngine::from_mapped(mapped.clone(), config).expect("mapped engine");
    let mapped_probe = mapped_engine.predict_batch(&probe).expect("mapped query");
    let rss_mapped_engine_kb = rss_kb().saturating_sub(rss_before);
    drop(mapped_engine);
    drop(mapped);

    // Owned path: v1 decode + engine build (which re-runs the encoder — v1
    // files carry no EMB section).
    let owned_snapshot = ServeSnapshot::load(&v1_path).expect("v1 load");
    let owned_build_ms = time_ms(repeats, || {
        InferenceEngine::new(&owned_snapshot, config).expect("owned engine")
    });
    let rss_owned_before = rss_kb();
    let owned_full = ServeSnapshot::load(&v1_path).expect("v1 load");
    let owned_engine = InferenceEngine::new(&owned_full, config).expect("owned engine");
    let owned_probe = owned_engine.predict_batch(&probe).expect("owned query");
    let rss_owned_engine_kb = rss_kb().saturating_sub(rss_owned_before);

    // Bit-parity: storage must be invisible in the outputs.
    for (a, b) in owned_probe.iter().zip(mapped_probe.iter()) {
        let a_bits: Vec<u32> = a.logits.iter().map(|v| v.to_bits()).collect();
        let b_bits: Vec<u32> = b.logits.iter().map(|v| v.to_bits()).collect();
        assert_eq!(a_bits, b_bits, "owned and mapped logits diverge at n={n}");
    }

    // Hot reload onto a fresh mapping, and the cold first query after it.
    let reload_map = Arc::new(MappedSnapshot::open(&v2_path).expect("v2 open"));
    let start = Instant::now();
    owned_engine
        .hot_reload_mapped(reload_map)
        .expect("hot reload");
    let hot_reload_ms = start.elapsed().as_secs_f64() * 1e3;
    let start = Instant::now();
    let after = owned_engine
        .predict_batch(&probe)
        .expect("post-reload query");
    let first_query_after_reload_us = start.elapsed().as_secs_f64() * 1e6;
    for (a, b) in owned_probe.iter().zip(after.iter()) {
        assert_eq!(a.logits, b.logits, "reload changed the answers at n={n}");
    }

    let _ = std::fs::remove_file(&v1_path);
    let _ = std::fs::remove_file(&v2_path);
    SizeResult {
        n,
        v1_bytes,
        v2_bytes,
        v1_load_ms,
        v2_open_ms,
        v2_verify_ms,
        owned_build_ms,
        mapped_build_ms,
        rss_open_kb,
        rss_mapped_engine_kb,
        rss_owned_engine_kb,
        hot_reload_ms,
        first_query_after_reload_us,
    }
}

fn emit_json(quick: bool, results: &[SizeResult]) {
    let cores = std::thread::available_parallelism().map_or(1, |c| c.get());
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"snapshot_coldstart\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(
        "  \"note\": \"v2_open_ms is the headline: it reads only the header table and META, so \
         it should stay flat while v1_load_ms grows with the file; verify/build are measured \
         medians, RSS deltas are VmRSS and the mapped deltas are file-backed clean pages \
         (reclaimable), not anonymous heap; first-query-after-reload is cold-cache by design\",\n",
    );
    out.push_str("  \"sizes\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"nodes\": {}, \"v1_bytes\": {}, \"v2_bytes\": {}, \
             \"v1_load_ms\": {:.3}, \"v2_open_ms\": {:.3}, \"v2_verify_ms\": {:.3}, \
             \"owned_engine_build_ms\": {:.3}, \"mapped_engine_build_ms\": {:.3}, \
             \"rss_after_open_kb\": {}, \"rss_mapped_engine_kb\": {}, \
             \"rss_owned_engine_kb\": {}, \"hot_reload_ms\": {:.3}, \
             \"first_query_after_reload_us\": {:.1}}}{}\n",
            r.n,
            r.v1_bytes,
            r.v2_bytes,
            r.v1_load_ms,
            r.v2_open_ms,
            r.v2_verify_ms,
            r.owned_build_ms,
            r.mapped_build_ms,
            r.rss_open_kb,
            r.rss_mapped_engine_kb,
            r.rss_owned_engine_kb,
            r.hot_reload_ms,
            r.first_query_after_reload_us,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    let here = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_snapshot.json");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_snapshot.json");
    std::fs::write(here, &out).expect("write crates/bench/BENCH_snapshot.json");
    std::fs::write(root, &out).expect("write BENCH_snapshot.json at the repo root");
    println!("wrote {here} (copied to the repository root)");
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (sizes, repeats): (&[usize], usize) = if quick {
        (&[2_000, 8_000, 24_000], 3)
    } else {
        (&[8_000, 32_000, 128_000], 5)
    };
    let dir = std::env::temp_dir();
    println!(
        "snapshot cold start: v1 decode vs v2 mmap at {} sizes (quick: {quick})",
        sizes.len()
    );

    let mut table = TablePrinter::new(vec![
        "nodes",
        "v2 MB",
        "v1 load ms",
        "v2 open ms",
        "v2 verify ms",
        "owned build ms",
        "mapped build ms",
        "reload ms",
    ]);
    let mut results = Vec::new();
    for &n in sizes {
        let r = run_size(n, repeats, &dir);
        table.add_row(vec![
            format!("{}", r.n),
            format!("{:.1}", r.v2_bytes as f64 / 1e6),
            format!("{:.2}", r.v1_load_ms),
            format!("{:.3}", r.v2_open_ms),
            format!("{:.2}", r.v2_verify_ms),
            format!("{:.2}", r.owned_build_ms),
            format!("{:.3}", r.mapped_build_ms),
            format!("{:.3}", r.hot_reload_ms),
        ]);
        results.push(r);
    }
    table.print("snapshot cold start: v1 decode vs v2 zero-copy mapping");
    println!("(open/build medians; mapped build re-verifies only on the first engine per mapping)");
    emit_json(quick, &results);
}
