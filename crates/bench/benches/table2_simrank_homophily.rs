//! Table II + Fig. 2: intra- vs inter-class SimRank score statistics on
//! Texas, Chameleon, Cora and Pubmed.
//!
//! The paper reports that intra-class node pairs receive higher mean SimRank
//! scores than inter-class pairs on every dataset, and Fig. 2 shows the two
//! score distributions. This bench prints the mean ± std table and a coarse
//! text histogram of the two distributions.

use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;
use sigma_simrank::{exact_simrank, SimRankConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let presets = [
        DatasetPreset::Texas,
        DatasetPreset::Chameleon,
        DatasetPreset::Cora,
        DatasetPreset::Pubmed,
    ];
    let mut table = TablePrinter::new(vec!["dataset", "intra-class", "inter-class", "ratio"]);
    for preset in presets {
        let data = preset.build(cfg.scale.min(1.0), 13).expect("preset");
        let s = exact_simrank(&data.graph, &SimRankConfig::default()).expect("exact SimRank");
        let mut intra = Vec::new();
        let mut inter = Vec::new();
        for u in 0..data.num_nodes() {
            for v in (u + 1)..data.num_nodes() {
                let score = s.get(u, v) as f64;
                if score <= 1e-6 {
                    continue;
                }
                if data.labels[u] == data.labels[v] {
                    intra.push(score);
                } else {
                    inter.push(score);
                }
            }
        }
        let stats = |v: &[f64]| {
            let mean = v.iter().sum::<f64>() / v.len().max(1) as f64;
            let var = v.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / v.len().max(1) as f64;
            (mean, var.sqrt())
        };
        let (mi, si) = stats(&intra);
        let (me, se) = stats(&inter);
        table.add_row(vec![
            preset.stats().name.to_string(),
            format!("{mi:.3} ± {si:.3}"),
            format!("{me:.3} ± {se:.3}"),
            format!("{:.2}x", mi / me.max(1e-9)),
        ]);

        // Fig. 2: coarse density over 10 buckets in [0, max score].
        let max_score = intra
            .iter()
            .chain(inter.iter())
            .cloned()
            .fold(0.0f64, f64::max)
            .max(1e-9);
        let histogram = |v: &[f64]| {
            let mut buckets = [0usize; 10];
            for &x in v {
                let b = ((x / max_score) * 9.99) as usize;
                buckets[b.min(9)] += 1;
            }
            let total = v.len().max(1);
            buckets
                .iter()
                .map(|&c| format!("{:>4.1}", 100.0 * c as f64 / total as f64))
                .collect::<Vec<_>>()
                .join(" ")
        };
        println!(
            "\nFig. 2 density (% of pairs per score decile), {}:",
            preset.stats().name
        );
        println!("  intra: {}", histogram(&intra));
        println!("  inter: {}", histogram(&inter));
    }
    table.print("Table II: mean ± std of node-pair SimRank scores");
    println!("paper shape: intra-class mean exceeds inter-class mean on every dataset.");
}
