//! Kernel micro-optimisation bench: nnz-balanced partitioning + SIMD-shaped
//! inner loops versus the pre-optimisation scalar path, on skewed
//! (power-law) fig5-style graphs at 1/2/4 threads.
//!
//! Three things are measured and one thing is *proven* on every run:
//!
//! * **before/after timings** for `spmm`, `spmm_transpose`, `spgemm` and
//!   LocalPush — "before" is a self-contained scalar re-implementation of
//!   each kernel's historical accumulation order, "after" is the optimised
//!   library kernel at 1, 2 and 4 threads;
//! * **planner balance**: the maximum range weight of the equal-row-count
//!   split versus the nnz-balanced planner on the skewed operator, a
//!   machine-independent utilisation proxy (on a single-core container the
//!   wall-clock speed-ups flatten toward 1× by construction, but the
//!   balance numbers — and the parity guarantees — do not depend on the
//!   host);
//! * **bit-parity**: every optimised kernel result is asserted bitwise
//!   identical to its scalar baseline, at every thread count. A mismatch
//!   aborts the bench (CI runs this in `--quick` mode).
//!
//! Results are emitted as `BENCH_kernels.json` both next to this crate and
//! at the repository root, seeding the machine-readable perf trajectory.

use sigma_bench::TablePrinter;
use sigma_graph::{sym_normalized_adjacency, Graph};
use sigma_matrix::{CsrMatrix, DenseMatrix};
use sigma_parallel::partition_by_weight;
use sigma_simrank::fxhash::{pair_key, unpack_pair, FxHashMap};
use sigma_simrank::{LocalPush, SimRankConfig, SparseScores};
use std::time::Instant;

const THREAD_SWEEP: [usize; 3] = [1, 2, 4];

/// Mirrors `sigma_simrank`'s (private) frontier chunk width; the baseline
/// must cut rounds identically to reproduce the kernel's bits.
const PUSH_CHUNK: usize = 128;
/// Mirrors `sigma_simrank`'s (private) relative pruning fraction.
const RELATIVE_PRUNE_FRACTION: f32 = 0.01;

/// Deterministic value noise in `[-1, 1)` (splitmix-style finaliser).
fn pseudo(i: usize, j: usize, seed: u64) -> f32 {
    let mut h = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((j as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
}

/// A power-law graph: a sparse ring base plus head nodes whose degree
/// decays harmonically from `max_deg` — the degree skew of the paper's
/// pokec-style scalability graphs, concentrated enough that equal-row-count
/// partitioning visibly serialises behind the head.
fn power_law_graph(n: usize, max_deg: usize, seed: u64) -> Graph {
    let mut edges = Vec::new();
    for u in 0..n {
        edges.push((u, (u + 1) % n));
        edges.push((u, (u + 7) % n));
    }
    for i in 0..n {
        let extra = max_deg / (i + 1);
        for e in 0..extra {
            let j = (i + 11 + e * 13 + (seed as usize % 17)) % n;
            if i != j {
                edges.push((i, j));
            }
        }
    }
    Graph::from_edges(n, &edges).expect("in-bounds edges")
}

// ---------------------------------------------------------------------------
// Scalar baselines: the pre-optimisation kernels, re-implemented verbatim.
// ---------------------------------------------------------------------------

fn baseline_spmm(m: &CsrMatrix, x: &DenseMatrix) -> DenseMatrix {
    let f = x.cols();
    let mut out = DenseMatrix::zeros(m.rows(), f);
    for r in 0..m.rows() {
        for (c, v) in m.row_iter(r) {
            let x_row = x.row(c);
            let out_row = out.row_mut(r);
            for j in 0..f {
                out_row[j] += v * x_row[j];
            }
        }
    }
    out
}

fn baseline_spmm_transpose(m: &CsrMatrix, x: &DenseMatrix) -> DenseMatrix {
    let f = x.cols();
    let mut out = DenseMatrix::zeros(m.cols(), f);
    for r in 0..m.rows() {
        for (c, v) in m.row_iter(r) {
            let x_row = x.row(r);
            let out_row = out.row_mut(c);
            for j in 0..f {
                out_row[j] += v * x_row[j];
            }
        }
    }
    out
}

fn baseline_spgemm(a: &CsrMatrix, b: &CsrMatrix) -> CsrMatrix {
    let mut triplet_indptr = vec![0usize];
    let mut indices: Vec<u32> = Vec::new();
    let mut values: Vec<f32> = Vec::new();
    // Fresh Gustavson working set per call (the pre-pool behaviour).
    let mut acc = vec![0.0f32; b.cols()];
    let mut touched: Vec<u32> = Vec::new();
    for r in 0..a.rows() {
        touched.clear();
        for (k, v) in a.row_iter(r) {
            for (c, bv) in b.row_iter(k) {
                if acc[c] == 0.0 {
                    touched.push(c as u32);
                }
                acc[c] += v * bv;
            }
        }
        touched.sort_unstable();
        for &c in &touched {
            let v = acc[c as usize];
            if v != 0.0 {
                indices.push(c);
                values.push(v);
            }
            acc[c as usize] = 0.0;
        }
        triplet_indptr.push(indices.len());
    }
    CsrMatrix::from_raw(a.rows(), b.cols(), triplet_indptr, indices, values)
        .expect("baseline produces valid CSR")
}

/// The pre-optimisation LocalPush: identical round schedule (frontier cut
/// into 128-pair chunks, chunk-ordered merge) with the historical inner
/// loops — per-chunk fresh allocations and a nested multiply instead of the
/// gather + scale restructure. Returns per-row score maps shaped like
/// `SparseScores`.
/// One baseline chunk's output: absorbed pairs + residual deltas.
type BaselineChunk = (Vec<(u64, f32)>, FxHashMap<u64, f32>);

fn baseline_localpush(graph: &Graph, decay: f64, epsilon: f64) -> Vec<FxHashMap<u32, f32>> {
    let n = graph.num_nodes();
    let c = decay as f32;
    let threshold = ((1.0 - decay) * epsilon) as f32;
    let inv_deg: Vec<f32> = (0..n)
        .map(|v| {
            let d = graph.degree(v);
            if d == 0 {
                0.0
            } else {
                1.0 / d as f32
            }
        })
        .collect();
    let mut rows: Vec<FxHashMap<u32, f32>> = vec![FxHashMap::default(); n];
    let mut residual: FxHashMap<u64, f32> = FxHashMap::default();
    let mut frontier: Vec<u64> = (0..n as u32).map(|u| pair_key(u, u)).collect();
    for &key in &frontier {
        residual.insert(key, 1.0);
    }
    while !frontier.is_empty() {
        let outputs: Vec<BaselineChunk> = frontier
            .chunks(PUSH_CHUNK)
            .map(|chunk| {
                let mut absorbed = Vec::with_capacity(chunk.len());
                let mut delta: FxHashMap<u64, f32> = FxHashMap::default();
                for &key in chunk {
                    let r = match residual.get(&key) {
                        Some(&r) if r > threshold => r,
                        _ => continue,
                    };
                    absorbed.push((key, r));
                    let (a, b) = unpack_pair(key);
                    let push_base = c * r;
                    for &x in graph.neighbors(a as usize) {
                        let scale_x = push_base * inv_deg[x as usize];
                        for &y in graph.neighbors(b as usize) {
                            if x == y {
                                continue;
                            }
                            *delta.entry(pair_key(x, y)).or_insert(0.0) +=
                                scale_x * inv_deg[y as usize];
                        }
                    }
                }
                (absorbed, delta)
            })
            .collect();
        for (absorbed, _) in &outputs {
            for &(key, r) in absorbed {
                let (a, b) = unpack_pair(key);
                *rows[a as usize].entry(b).or_insert(0.0) += r;
                residual.insert(key, 0.0);
            }
        }
        let mut candidates: Vec<u64> = Vec::new();
        for (_, delta) in outputs {
            for (key, d) in delta {
                *residual.entry(key).or_insert(0.0) += d;
                candidates.push(key);
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        candidates.retain(|key| residual.get(key).copied().unwrap_or(0.0) > threshold);
        frontier = candidates;
    }
    for (&key, &r) in residual.iter() {
        if r > 0.0 {
            let (a, b) = unpack_pair(key);
            *rows[a as usize].entry(b).or_insert(0.0) += r;
        }
    }
    for (u, row) in rows.iter_mut().enumerate() {
        let row_max = row
            .iter()
            .filter(|(&v, _)| v as usize != u)
            .map(|(_, &s)| s)
            .fold(0.0f32, f32::max);
        if row_max <= 0.0 {
            continue;
        }
        let floor = RELATIVE_PRUNE_FRACTION * row_max;
        row.retain(|&v, s| v as usize == u || *s >= floor);
    }
    rows
}

// ---------------------------------------------------------------------------
// Parity checks.
// ---------------------------------------------------------------------------

fn assert_dense_bitwise(a: &DenseMatrix, b: &DenseMatrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: PARITY MISMATCH at flat index {i}: {x:?} vs {y:?}"
        );
    }
}

fn assert_scores_match_baseline(
    scores: &SparseScores,
    baseline: &[FxHashMap<u32, f32>],
    what: &str,
) {
    assert_eq!(scores.num_nodes(), baseline.len(), "{what}: node count");
    for (u, base_row) in baseline.iter().enumerate() {
        let mut got: Vec<(u32, u32)> = scores
            .row(u)
            .map(|(v, s)| (v as u32, s.to_bits()))
            .collect();
        let mut want: Vec<(u32, u32)> = base_row.iter().map(|(&v, &s)| (v, s.to_bits())).collect();
        got.sort_unstable();
        want.sort_unstable();
        assert_eq!(got, want, "{what}: PARITY MISMATCH in score row {u}");
    }
}

// ---------------------------------------------------------------------------
// Measurement helpers.
// ---------------------------------------------------------------------------

/// Times `f` over `reps` repetitions, returning (ms per rep, last result).
fn time_ms<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let start = Instant::now();
    let mut out = f();
    for _ in 1..reps {
        out = f();
    }
    (start.elapsed().as_secs_f64() * 1e3 / reps as f64, out)
}

struct KernelRow {
    kernel: &'static str,
    implementation: &'static str,
    threads: usize,
    ms: f64,
    parity: &'static str,
}

struct BalanceRow {
    parts: usize,
    row_count_imbalance: f64,
    nnz_balanced_imbalance: f64,
}

/// Max-range-weight / ideal-share for a set of ranges over `weights`.
///
/// The ideal share divides by the *requested* part count, not the number
/// of ranges actually emitted: a planner that merges ranges (leaving
/// threads idle) must show up as imbalance, not hide behind a smaller
/// denominator.
fn imbalance(weights: &[usize], parts: usize, ranges: &[std::ops::Range<usize>]) -> f64 {
    let total: usize = weights.iter().sum();
    if total == 0 || ranges.is_empty() || parts == 0 {
        return 1.0;
    }
    let ideal = total as f64 / parts as f64;
    let max = ranges
        .iter()
        .map(|r| weights[r.clone()].iter().sum::<usize>())
        .max()
        .unwrap_or(0);
    max as f64 / ideal
}

/// Equal-row-count ranges (what the kernels used before this bench existed).
fn equal_count_ranges(n: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.clamp(1, n.max(1));
    let per = n.div_ceil(parts);
    (0..parts)
        .map(|i| (i * per).min(n)..((i + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Skewed operator graph (spmm / spmm_transpose / spgemm) and a smaller
    // skewed push graph (LocalPush cost grows with hub degree squared).
    let (n, f, max_deg, push_n, push_deg, reps) = if quick {
        (1500usize, 32usize, 300usize, 300usize, 60usize, 3usize)
    } else {
        (20_000, 64, 2_000, 2_000, 200, 5)
    };

    let graph = power_law_graph(n, max_deg, 31);
    let operator = sym_normalized_adjacency(&graph);
    let features = DenseMatrix::from_fn(n, f, |i, j| pseudo(i, j, 7));
    let push_graph = power_law_graph(push_n, push_deg, 47);
    let simrank_cfg = SimRankConfig::default().with_top_k(16);

    let row_nnz: Vec<usize> = (0..operator.rows()).map(|r| operator.row_nnz(r)).collect();
    let max_row_nnz = row_nnz.iter().copied().max().unwrap_or(0);
    println!(
        "skewed operator: {} nodes, {} nnz, max row nnz {} (quick: {quick})",
        n,
        operator.nnz(),
        max_row_nnz
    );

    // -- Planner balance (machine-independent). -----------------------------
    let mut balance_rows = Vec::new();
    let mut balance_table = TablePrinter::new(vec![
        "parts",
        "row-count imbalance",
        "nnz-balanced imbalance",
    ]);
    for parts in [2usize, 4, 8] {
        let by_count = imbalance(&row_nnz, parts, &equal_count_ranges(n, parts));
        let by_nnz = imbalance(&row_nnz, parts, &partition_by_weight(&row_nnz, parts));
        assert!(
            by_nnz <= by_count + 1e-9,
            "nnz-balanced planner must not be worse than equal counts \
             ({by_nnz:.3} vs {by_count:.3} at {parts} parts)"
        );
        balance_table.add_row(vec![
            parts.to_string(),
            format!("{by_count:.3}x"),
            format!("{by_nnz:.3}x"),
        ]);
        balance_rows.push(BalanceRow {
            parts,
            row_count_imbalance: by_count,
            nnz_balanced_imbalance: by_nnz,
        });
    }
    balance_table.print("Partition balance on the skewed operator (max range nnz / ideal share)");

    // -- Scalar baselines (timed once, serial by construction). -------------
    let mut kernel_rows: Vec<KernelRow> = Vec::new();
    let (base_spmm_ms, base_spmm) = time_ms(reps, || baseline_spmm(&operator, &features));
    let (base_spmmt_ms, base_spmmt) =
        time_ms(reps, || baseline_spmm_transpose(&operator, &features));
    let (base_spgemm_ms, base_spgemm) = time_ms(reps, || baseline_spgemm(&operator, &operator));
    let (base_push_ms, base_push) = time_ms(1, || {
        baseline_localpush(&push_graph, simrank_cfg.decay, simrank_cfg.epsilon)
    });
    for (kernel, ms) in [
        ("spmm", base_spmm_ms),
        ("spmm_transpose", base_spmmt_ms),
        ("spgemm", base_spgemm_ms),
        ("localpush", base_push_ms),
    ] {
        kernel_rows.push(KernelRow {
            kernel,
            implementation: "baseline_scalar",
            threads: 1,
            ms,
            parity: "ref",
        });
    }

    // -- Optimised kernels at 1/2/4 threads, parity-asserted. ---------------
    let mut table = TablePrinter::new(vec![
        "kernel",
        "threads",
        "baseline (ms)",
        "optimised (ms)",
        "speed-up",
        "parity",
    ]);
    for threads in THREAD_SWEEP {
        sigma_parallel::set_global_threads(threads);

        let (spmm_ms, spmm_out) = time_ms(reps, || operator.spmm(&features).unwrap());
        assert_dense_bitwise(&base_spmm, &spmm_out, "spmm");

        let (spmmt_ms, spmmt_out) = time_ms(reps, || operator.spmm_transpose(&features).unwrap());
        assert_dense_bitwise(&base_spmmt, &spmmt_out, "spmm_transpose");

        let (spgemm_ms, spgemm_out) = time_ms(reps, || operator.spgemm(&operator).unwrap());
        assert_eq!(base_spgemm, spgemm_out, "spgemm PARITY MISMATCH");

        let (push_ms, push_scores) = time_ms(1, || {
            LocalPush::new(&push_graph, simrank_cfg).unwrap().run()
        });
        assert_scores_match_baseline(&push_scores, &base_push, "localpush");

        for (kernel, base_ms, ms) in [
            ("spmm", base_spmm_ms, spmm_ms),
            ("spmm_transpose", base_spmmt_ms, spmmt_ms),
            ("spgemm", base_spgemm_ms, spgemm_ms),
            ("localpush", base_push_ms, push_ms),
        ] {
            table.add_row(vec![
                kernel.to_string(),
                threads.to_string(),
                format!("{base_ms:.2}"),
                format!("{ms:.2}"),
                format!("{:.2}x", base_ms / ms.max(1e-9)),
                "ok".to_string(),
            ]);
            kernel_rows.push(KernelRow {
                kernel,
                implementation: "optimised",
                threads,
                ms,
                parity: "ok",
            });
        }
    }
    sigma_parallel::set_global_threads(0);
    table.print("Kernel micro-optimisations vs the scalar baseline (skewed graph)");

    let cores = std::thread::available_parallelism().map_or(1, |v| v.get());
    println!("all parity assertions passed: optimised kernels are bitwise-identical to the");
    println!("pre-optimisation scalar path at every thread count. this host reports {cores}");
    println!("available core(s); on a single core, multi-thread speed-ups flatten toward 1x");
    println!("by construction — the partition-balance table is the machine-independent signal.");

    emit_json(
        quick,
        cores,
        (n, operator.nnz(), max_row_nnz),
        (push_n, push_graph.num_edges()),
        &balance_rows,
        &kernel_rows,
    );
}

fn emit_json(
    quick: bool,
    cores: usize,
    (nodes, nnz, max_row_nnz): (usize, usize, usize),
    (push_nodes, push_edges): (usize, usize),
    balance: &[BalanceRow],
    kernels: &[KernelRow],
) {
    let mut out = String::from("{\n");
    out.push_str("  \"bench\": \"kernel_microopt\",\n");
    out.push_str(&format!("  \"quick\": {quick},\n"));
    out.push_str(&format!("  \"host_cores\": {cores},\n"));
    out.push_str(
        "  \"note\": \"parity is asserted (optimised kernels bitwise-identical to the scalar \
         baseline at 1/2/4 threads); on a single-core host the thread speed-ups flatten toward \
         1x by construction and the partition balance rows carry the machine-independent \
         signal\",\n",
    );
    out.push_str(&format!(
        "  \"spmm_graph\": {{\"nodes\": {nodes}, \"nnz\": {nnz}, \"max_row_nnz\": {max_row_nnz}}},\n"
    ));
    out.push_str(&format!(
        "  \"localpush_graph\": {{\"nodes\": {push_nodes}, \"edges\": {push_edges}}},\n"
    ));
    out.push_str("  \"partition_balance\": [\n");
    for (i, b) in balance.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"parts\": {}, \"row_count_imbalance\": {:.4}, \
             \"nnz_balanced_imbalance\": {:.4}}}{}\n",
            b.parts,
            b.row_count_imbalance,
            b.nnz_balanced_imbalance,
            if i + 1 == balance.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"kernel\": \"{}\", \"impl\": \"{}\", \"threads\": {}, \"ms\": {:.3}, \
             \"parity\": \"{}\"}}{}\n",
            k.kernel,
            k.implementation,
            k.threads,
            k.ms,
            k.parity,
            if i + 1 == kernels.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");

    let here = concat!(env!("CARGO_MANIFEST_DIR"), "/BENCH_kernels.json");
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    std::fs::write(here, &out).expect("write crates/bench/BENCH_kernels.json");
    std::fs::write(root, &out).expect("write BENCH_kernels.json at the repo root");
    println!("wrote {here} (copied to the repository root)");
}
