//! Table III: time-complexity comparison of heterophilous GNN aggregations,
//! evaluated as concrete operation counts on each large-scale dataset's
//! *paper* statistics.

use sigma::complexity::{table3_rows, CostParams};
use sigma_bench::TablePrinter;
use sigma_datasets::DatasetPreset;

fn human(x: f64) -> String {
    if x >= 1e12 {
        format!("{:.1}T", x / 1e12)
    } else if x >= 1e9 {
        format!("{:.1}G", x / 1e9)
    } else if x >= 1e6 {
        format!("{:.1}M", x / 1e6)
    } else {
        format!("{x:.0}")
    }
}

fn main() {
    println!("Table III — aggregation / inference operation counts (f = 64, L = 2, k = 32)");
    for preset in DatasetPreset::LARGE {
        let stats = preset.stats();
        let params = CostParams::typical(stats.paper_nodes, stats.paper_edges, 64);
        let rows = table3_rows(&params);
        let sigma_agg = rows
            .iter()
            .find(|r| r.model == "SIGMA")
            .map(|r| r.aggregation)
            .unwrap_or(1.0);
        let mut table =
            TablePrinter::new(vec!["model", "aggregation", "inference", "agg vs SIGMA"]);
        for row in &rows {
            table.add_row(vec![
                row.model.to_string(),
                human(row.aggregation),
                human(row.inference),
                format!("{:.1}x", row.aggregation / sigma_agg),
            ]);
        }
        table.print(&format!(
            "{} (n = {}, m = {})",
            stats.name, stats.paper_nodes, stats.paper_edges
        ));
    }
    println!("paper shape: SIGMA's aggregation is O(k·n·f), the only entry independent of m;");
    println!("every baseline grows at least linearly with the edge count or quadratically with n,");
    println!("so SIGMA's advantage widens with the average degree (largest on pokec/twitch).");
}
