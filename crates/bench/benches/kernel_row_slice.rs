//! Criterion micro-benchmarks of the row-sliced aggregation kernels behind
//! `sigma-serve`.
//!
//! Compares, on a Penn94-like graph with a top-k SimRank operator:
//! * `spmm` — the full-graph aggregation an offline forward pass performs,
//! * `spmm_rows` — the row-sliced kernel serving a batch of `b ≪ n` nodes,
//! * `gather_rows` + `spmm` — the materialising alternative to `spmm_rows`.
//!
//! The serving claim is that a batched query costs `O(b·k·f)`: `spmm_rows`
//! on small batches must run far below the full `O(n·k·f)` SpMM. The bench
//! asserts that relationship (in addition to reporting timings) so a
//! regression fails loudly.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sigma_datasets::DatasetPreset;
use sigma_matrix::DenseMatrix;
use sigma_simrank::{LocalPush, SimRankConfig};
use std::time::Instant;

fn row_slice_benchmarks(c: &mut Criterion) {
    let data = DatasetPreset::Penn94.build(0.6, 3).expect("preset");
    let n = data.num_nodes();
    let hidden = 32usize;
    let h = DenseMatrix::from_fn(n, hidden, |i, j| ((i * 13 + j * 5) % 11) as f32 * 0.2 - 1.0);
    let simrank = LocalPush::new(&data.graph, SimRankConfig::default().with_top_k(16))
        .expect("localpush")
        .run_to_operator();

    let mut group = c.benchmark_group("row_slice_kernels");
    group.sample_size(20);
    group.bench_with_input(BenchmarkId::new("full_spmm", n), &n, |b, _| {
        b.iter(|| simrank.spmm(&h).expect("spmm"))
    });
    for batch in [1usize, 16, 128] {
        let rows: Vec<usize> = (0..batch).map(|i| (i * 97) % n).collect();
        group.bench_with_input(BenchmarkId::new("spmm_rows", batch), &rows, |b, rows| {
            b.iter(|| simrank.spmm_rows(rows, &h).expect("spmm_rows"))
        });
        group.bench_with_input(
            BenchmarkId::new("gather_then_spmm", batch),
            &rows,
            |b, rows| {
                b.iter(|| {
                    simrank
                        .gather_rows(rows)
                        .expect("gather")
                        .spmm(&h)
                        .expect("spmm")
                })
            },
        );
    }
    group.finish();

    // Hard assertion of the serving claim: a small batch must be much
    // cheaper than the full SpMM. Timings are the minimum over several
    // measurement batches (the standard de-noising for contended hosts),
    // and the margin is 4x: the ideal ratio here is n/b ≈ 9.4x, but a
    // ~10µs fixed per-call cost (output allocation, dispatch) compresses it
    // on slow single-core containers — 4x still fails loudly if the sliced
    // kernel ever degrades toward O(n) work.
    let rows: Vec<usize> = (0..128).map(|i| (i * 97) % n).collect();
    let (batches, reps) = (12, 8);
    let min_batch = |f: &mut dyn FnMut()| {
        let mut best = std::time::Duration::MAX;
        for _ in 0..batches {
            let start = Instant::now();
            for _ in 0..reps {
                f();
            }
            best = best.min(start.elapsed());
        }
        best / reps
    };
    let full = min_batch(&mut || {
        let _ = simrank.spmm(&h).expect("spmm");
    });
    let sliced = min_batch(&mut || {
        let _ = simrank.spmm_rows(&rows, &h).expect("spmm_rows");
    });
    println!(
        "row-slice speed check: full spmm {full:.2?}, spmm_rows(b=128) {sliced:.2?} \
         (min over {batches} batches of {reps} reps, n = {n})"
    );
    assert!(
        sliced * 4 < full,
        "spmm_rows on b=128 ({sliced:?}) should be at least 4x faster than full spmm ({full:?})"
    );
}

criterion_group!(benches, row_slice_benchmarks);
criterion_main!(benches);
