//! Thread-scaling of the shared execution layer: spmm and LocalPush
//! throughput at 1/2/4/8 threads on the Fig. 5 (pokec-like) graph sizes.
//!
//! The parallel kernels partition disjoint output-row ranges, so every
//! configuration produces bitwise-identical results (asserted below) — the
//! only thing the thread count changes is wall-clock time. On a machine
//! with ≥ 4 physical cores the expected shape is a ≥ 2× spmm speedup at 4
//! threads on the largest graph; on fewer cores the extra threads timeshare
//! and the ratio flattens toward 1×.

use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;
use sigma_graph::sym_normalized_adjacency;
use sigma_simrank::{LocalPush, SimRankConfig};
use std::time::Instant;

const THREAD_SWEEP: [usize; 4] = [1, 2, 4, 8];

fn main() {
    let cfg = BenchConfig::from_env();
    let mut table = TablePrinter::new(vec![
        "edges",
        "threads",
        "spmm (ms)",
        "spmm speed-up",
        "LocalPush (s)",
        "LocalPush speed-up",
        "parity",
    ]);
    // The three largest Fig. 5 scales (edge counts spaced by 2.5×).
    for i in (0..3usize).rev() {
        let scale = cfg.scale * 1.6 / 2.5f64.powi(i as i32);
        let data = DatasetPreset::Pokec
            .build(scale, 31)
            .expect("preset generation cannot fail for valid scales");
        let graph = data.graph.clone();
        let operator = sym_normalized_adjacency(&graph);
        let features = data.features.clone();
        let edges = graph.num_edges();
        // Size the spmm repetition count so each measurement is a few
        // hundred milliseconds of kernel time at 1 thread.
        let spmm_reps = {
            sigma_parallel::set_global_threads(1);
            let start = Instant::now();
            let _ = operator.spmm(&features).unwrap();
            let once = start.elapsed().as_secs_f64();
            ((0.25 / once.max(1e-6)) as usize).clamp(3, 200)
        };
        let simrank_cfg = SimRankConfig::default().with_top_k(16);

        let mut baseline_spmm = f64::NAN;
        let mut baseline_push = f64::NAN;
        let mut reference = None;
        let mut reference_op = None;
        for threads in THREAD_SWEEP {
            sigma_parallel::set_global_threads(threads);

            let start = Instant::now();
            let mut product = None;
            for _ in 0..spmm_reps {
                product = Some(operator.spmm(&features).unwrap());
            }
            let spmm_ms = start.elapsed().as_secs_f64() * 1e3 / spmm_reps as f64;

            let start = Instant::now();
            let push_operator = LocalPush::new(&graph, simrank_cfg)
                .unwrap()
                .run_to_operator();
            let push_s = start.elapsed().as_secs_f64();

            // Bitwise parity against the 1-thread reference.
            let product = product.expect("spmm_reps >= 3");
            let parity = match (&reference, &reference_op) {
                (None, None) => {
                    baseline_spmm = spmm_ms;
                    baseline_push = push_s;
                    reference = Some(product);
                    reference_op = Some(push_operator);
                    "ref"
                }
                (Some(r), Some(op)) => {
                    let bitwise = r
                        .as_slice()
                        .iter()
                        .zip(product.as_slice())
                        .all(|(a, b)| a.to_bits() == b.to_bits())
                        && *op == push_operator;
                    if bitwise {
                        "ok"
                    } else {
                        "MISMATCH"
                    }
                }
                _ => unreachable!("references are set together"),
            };
            table.add_row(vec![
                edges.to_string(),
                threads.to_string(),
                format!("{spmm_ms:.2}"),
                format!("{:.2}x", baseline_spmm / spmm_ms),
                format!("{push_s:.3}"),
                format!("{:.2}x", baseline_push / push_s),
                parity.to_string(),
            ]);
        }
    }
    sigma_parallel::set_global_threads(0);
    table.print("Kernel thread-scaling on Fig. 5 graph sizes (shared sigma-parallel pool)");
    println!("expected shape: with >= 4 physical cores, spmm reaches >= 2x at 4 threads on the");
    println!("largest graph and LocalPush scales with it; every row must report parity ok —");
    println!("the execution layer guarantees bitwise-identical results at any thread count.");
    println!(
        "this host reports {} available core(s).",
        std::thread::available_parallelism().map_or(1, |n| n.get())
    );
}
