//! Incremental operator repair vs full refresh on fig5-sized pokec-like
//! graphs.
//!
//! For each graph size the bench measures (a) a from-scratch seed-decomposed
//! LocalPush refresh — scores plus top-k operator — and (b) an incremental
//! `DynamicSimRank::repair` after `k` edge edits, patching only the dirty
//! region. Push counts are deterministic, so the bench *asserts* the
//! locality claim (repair re-pushes strictly fewer seeds than the full run)
//! and reports wall-clock times; everything is also emitted as
//! `BENCH_incremental.json` to seed the performance trajectory.

use criterion::{criterion_group, criterion_main, Criterion};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;
use sigma_simrank::{DynamicSimRank, EdgeUpdate, LocalPush, RepairOutcome, SimRankConfig};
use std::time::Instant;

struct Row {
    nodes: usize,
    edges: usize,
    edits: usize,
    full_ms: f64,
    repair_ms: f64,
    full_pushes: usize,
    repair_pushes: usize,
    changed_rows: usize,
}

fn measure(scale: f64, edits: usize) -> Row {
    let data = DatasetPreset::Pokec.build(scale, 47).expect("preset");
    let graph = data.graph;
    let n = graph.num_nodes();
    let config = SimRankConfig::default().with_top_k(16);

    let mut maintainer =
        DynamicSimRank::new(graph.clone(), config, usize::MAX / 2).expect("maintainer");
    let _ = maintainer.operator().expect("initial operator");

    // A deterministic mixed edit batch: chord inserts plus ring deletions.
    let updates: Vec<EdgeUpdate> = (0..edits)
        .map(|i| {
            if i % 2 == 0 {
                EdgeUpdate::Insert((i * 17) % n, (i * 17 + n / 2) % n)
            } else {
                EdgeUpdate::Delete((i * 29) % n, (i * 29 + 1) % n)
            }
        })
        .collect();
    maintainer.apply_batch(&updates).expect("edits in bounds");

    // Incremental path: repair the decomposition and patch the operator.
    let start = Instant::now();
    let outcome = maintainer.repair().expect("repair");
    let _patched_operator = maintainer.operator().expect("patched operator");
    let repair_time = start.elapsed();
    let repair = match outcome {
        RepairOutcome::Patched(repair) => repair,
        RepairOutcome::FullRefresh => panic!("maintainer lost its decomposition"),
    };

    // Reference path: from-scratch refresh on the edited graph.
    let edited = maintainer.graph().clone();
    let mut solver = LocalPush::new(&edited, config).expect("solver");
    let start = Instant::now();
    let fresh = solver.run_decomposed();
    let scores = fresh.assemble();
    let reference_operator = scores.to_csr(config.top_k);
    let full_time = start.elapsed();

    // Deterministic correctness + locality guarantees, asserted on every
    // bench run: identical operators, strictly less push work.
    assert_eq!(
        maintainer.operator().expect("patched operator"),
        reference_operator,
        "repair diverged from the full refresh"
    );
    assert!(
        repair.pushes < solver.pushes_performed(),
        "repair re-pushed no fewer seeds than the full run ({} vs {})",
        repair.pushes,
        solver.pushes_performed()
    );

    Row {
        nodes: n,
        edges: edited.num_edges(),
        edits: updates.len(),
        full_ms: full_time.as_secs_f64() * 1e3,
        repair_ms: repair_time.as_secs_f64() * 1e3,
        full_pushes: solver.pushes_performed(),
        repair_pushes: repair.pushes,
        changed_rows: repair.changed_rows.len(),
    }
}

fn emit_json(rows: &[Row]) {
    let mut out = String::from("[\n");
    for (i, row) in rows.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"nodes\": {}, \"edges\": {}, \"edits\": {}, \"full_ms\": {:.3}, \
             \"repair_ms\": {:.3}, \"full_pushes\": {}, \"repair_pushes\": {}, \
             \"changed_rows\": {}}}{}\n",
            row.nodes,
            row.edges,
            row.edits,
            row.full_ms,
            row.repair_ms,
            row.full_pushes,
            row.repair_pushes,
            row.changed_rows,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    std::fs::write("BENCH_incremental.json", out).expect("write BENCH_incremental.json");
    println!("wrote BENCH_incremental.json");
}

fn incremental_repair_benchmarks(_c: &mut Criterion) {
    let cfg = BenchConfig::from_env();
    let mut table = TablePrinter::new(vec![
        "nodes",
        "edges",
        "edits",
        "full (ms)",
        "repair (ms)",
        "speed-up",
        "pushes full",
        "pushes repair",
        "rows patched",
    ]);
    let mut rows = Vec::new();
    for i in (0..3i32).rev() {
        let scale = cfg.scale * 1.6 / 2.5f64.powi(i);
        let row = measure(scale, 4);
        table.add_row(vec![
            row.nodes.to_string(),
            row.edges.to_string(),
            row.edits.to_string(),
            format!("{:.2}", row.full_ms),
            format!("{:.2}", row.repair_ms),
            format!("{:.2}x", row.full_ms / row.repair_ms.max(1e-9)),
            row.full_pushes.to_string(),
            row.repair_pushes.to_string(),
            row.changed_rows.to_string(),
        ]);
        rows.push(row);
    }
    table.print("Incremental repair vs full refresh (pokec-like, 4 edits)");
    emit_json(&rows);
}

criterion_group!(benches, incremental_repair_benchmarks);
criterion_main!(benches);
