//! Table VIII: component ablation of SIGMA (and GloGNN) on the large-scale
//! presets — the effect of the SimRank operator S, the localized S·A variant,
//! the attribute branch X, and the adjacency branch A.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sigma::{AggregatorKind, Model, ModelHyperParams, ModelKind, SigmaModel, TrainConfig, Trainer};
use sigma_bench::runner::{default_hyper, prepare, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;

struct Variant {
    name: &'static str,
    aggregator: AggregatorKind,
    hyper: ModelHyperParams,
}

fn variants(base: ModelHyperParams) -> Vec<Variant> {
    vec![
        Variant {
            name: "SIGMA",
            aggregator: AggregatorKind::SimRank,
            hyper: base,
        },
        Variant {
            name: "SIGMA w/o S",
            aggregator: AggregatorKind::None,
            hyper: base,
        },
        Variant {
            name: "SIGMA w/ S*A",
            aggregator: AggregatorKind::SimRankTimesA,
            hyper: base,
        },
        Variant {
            name: "SIGMA w/ PPR",
            aggregator: AggregatorKind::Ppr,
            hyper: base,
        },
        Variant {
            name: "SIGMA w/o X",
            aggregator: AggregatorKind::SimRank,
            hyper: base.with_delta(0.0),
        },
        Variant {
            name: "SIGMA w/o A",
            aggregator: AggregatorKind::SimRank,
            hyper: base.with_delta(1.0),
        },
    ]
}

fn main() {
    let cfg = BenchConfig::from_env();
    let base = default_hyper();
    let trainer = Trainer::new(TrainConfig {
        epochs: cfg.epochs,
        patience: (cfg.epochs / 3).max(10),
        ..TrainConfig::default()
    });

    let mut header = vec!["variant".to_string()];
    header.extend(
        DatasetPreset::LARGE
            .iter()
            .map(|p| p.stats().name.to_string()),
    );
    header.push("avg drop".to_string());
    header.push("max drop".to_string());
    let mut table = TablePrinter::new(header);

    // Collect accuracy per (variant, dataset).
    let names: Vec<&'static str> = variants(base).iter().map(|v| v.name).collect();
    let mut results: Vec<Vec<f64>> = vec![Vec::new(); names.len() + 2];
    for preset in DatasetPreset::LARGE {
        let (ctx, split) = prepare(preset, &cfg, OperatorSet::full(), 43);
        for (idx, variant) in variants(base).into_iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(43);
            let mut model =
                SigmaModel::with_aggregator(&ctx, &variant.hyper, variant.aggregator, &mut rng)
                    .expect("variant builds");
            let report = trainer
                .train(&mut model as &mut dyn Model, &ctx, &split, 43)
                .expect("variant trains");
            results[idx].push(report.test_accuracy as f64 * 100.0);
        }
        // GloGNN full and GloGNN w/o A (δ = 1) reference rows.
        for (offset, hyper) in [(0usize, base), (1usize, base.with_delta(1.0))] {
            let mut model = ModelKind::GloGnn
                .build(&ctx, &hyper, 43)
                .expect("glognn builds");
            let report = trainer
                .train(model.as_mut(), &ctx, &split, 43)
                .expect("glognn trains");
            results[names.len() + offset].push(report.test_accuracy as f64 * 100.0);
        }
    }

    let sigma_full = results[0].clone();
    let mut all_names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
    all_names.push("GloGNN".to_string());
    all_names.push("GloGNN w/o A".to_string());
    for (idx, name) in all_names.iter().enumerate() {
        let accs = &results[idx];
        let drops: Vec<f64> = accs
            .iter()
            .zip(sigma_full.iter())
            .map(|(a, f)| f - a)
            .collect();
        let avg_drop = drops.iter().sum::<f64>() / drops.len().max(1) as f64;
        let max_drop = drops.iter().cloned().fold(f64::MIN, f64::max);
        let mut row = vec![name.clone()];
        row.extend(accs.iter().map(|a| format!("{a:.1}")));
        if idx == 0 {
            row.push("-".to_string());
            row.push("-".to_string());
        } else {
            row.push(format!("{avg_drop:.2}"));
            row.push(format!("{max_drop:.2}"));
        }
        table.add_row(row);
    }
    table.print("Table VIII: component ablation (test accuracy %, drops relative to full SIGMA)");
    println!("paper shape: removing S costs a couple of points on average; restricting it to");
    println!("S*A also hurts; removing A is by far the most damaging; removing X hurts less.");
}
