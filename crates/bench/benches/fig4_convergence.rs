//! Fig. 4: convergence efficiency — validation accuracy as a function of
//! wall-clock training time for SIGMA and the leading baselines.

use sigma::ModelKind;
use sigma_bench::runner::{default_hyper, prepare, train, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;

fn main() {
    let cfg = BenchConfig::from_env();
    let models = [
        ModelKind::MixHop,
        ModelKind::Gcnii,
        ModelKind::Linkx,
        ModelKind::GloGnn,
        ModelKind::Sigma,
    ];
    // Two representative large presets keep the default run short; raise
    // SIGMA_SCALE / SIGMA_EPOCHS for the full sweep.
    for preset in [DatasetPreset::Penn94, DatasetPreset::Pokec] {
        let ops = OperatorSet {
            two_hop: true,
            ..OperatorSet::default()
        };
        let (ctx, split) = prepare(preset, &cfg, ops, 29);
        let mut table = TablePrinter::new(vec![
            "model",
            "time-to-50% (s)",
            "time-to-best (s)",
            "best val acc (%)",
            "epochs",
        ]);
        for kind in models {
            let report = train(kind, &ctx, &split, &cfg, &default_hyper(), 29);
            let best = report.best_val_accuracy;
            let time_to_half = report
                .history
                .iter()
                .find(|r| r.val_accuracy >= 0.5)
                .map(|r| format!("{:.3}", r.elapsed.as_secs_f64()))
                .unwrap_or_else(|| "-".to_string());
            let time_to_best = report
                .history
                .iter()
                .find(|r| r.val_accuracy >= best - 1e-6)
                .map(|r| r.elapsed.as_secs_f64())
                .unwrap_or_else(|| report.train_time.as_secs_f64());
            table.add_row(vec![
                kind.name().to_string(),
                time_to_half,
                format!("{time_to_best:.3}"),
                format!("{:.1}", best * 100.0),
                report.epochs_run.to_string(),
            ]);
            // Print the raw curve (the Fig. 4 series) for plotting.
            let curve: Vec<String> = report
                .history
                .iter()
                .map(|r| {
                    format!(
                        "({:.2}s, {:.1}%)",
                        r.elapsed.as_secs_f64(),
                        r.val_accuracy * 100.0
                    )
                })
                .collect();
            println!(
                "{:<7} {} curve: {}",
                kind.name(),
                preset.stats().name,
                curve.join(" ")
            );
        }
        table.print(&format!("Fig. 4: convergence on {}", preset.stats().name));
    }
    println!("paper shape: SIGMA (and the other simple decoupled models) converge quickly;");
    println!(
        "SIGMA reaches a higher final accuracy than LINKX/MixHop and converges faster than GloGNN."
    );
}
