//! Table VII: learning-time breakdown (precomputation / aggregation / total)
//! of the decoupled heterophilous models — LINKX, GloGNN and SIGMA — on the
//! six large-scale presets, plus SIGMA's average speed-up.

use sigma::ModelKind;
use sigma_bench::runner::{default_hyper, prepare, train, OperatorSet};
use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;

fn main() {
    let cfg = BenchConfig::from_env();
    let models = [ModelKind::Linkx, ModelKind::GloGnn, ModelKind::Sigma];
    let mut table = TablePrinter::new(vec!["dataset", "model", "Pre. (s)", "AGG (s)", "Learn (s)"]);
    let mut speedups_vs_glognn = Vec::new();
    let mut speedups_vs_linkx = Vec::new();
    for preset in DatasetPreset::LARGE {
        let (ctx, split) = prepare(preset, &cfg, OperatorSet::default(), 23);
        let mut learn_times = std::collections::HashMap::new();
        for kind in models {
            let report = train(kind, &ctx, &split, &cfg, &default_hyper(), 23);
            // Only SIGMA pays the SimRank precomputation; the baselines'
            // precompute column is effectively zero.
            let pre = if kind == ModelKind::Sigma {
                report.precompute_time.as_secs_f64()
            } else {
                0.0
            };
            let learn = report.train_time.as_secs_f64() + pre;
            learn_times.insert(kind.name(), learn);
            table.add_row(vec![
                preset.stats().name.to_string(),
                kind.name().to_string(),
                format!("{pre:.3}"),
                format!("{:.3}", report.aggregation_time.as_secs_f64()),
                format!("{learn:.3}"),
            ]);
        }
        let sigma = learn_times["SIGMA"].max(1e-9);
        speedups_vs_glognn.push(learn_times["GloGNN"] / sigma);
        speedups_vs_linkx.push(learn_times["LINKX"] / sigma);
    }
    table.print("Table VII: learning time breakdown on large-scale presets");
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    println!(
        "average speed-up of SIGMA: {:.2}x vs GloGNN (paper: 4.30x), {:.2}x vs LINKX (paper: 1.73x)",
        avg(&speedups_vs_glognn),
        avg(&speedups_vs_linkx)
    );
    println!("paper shape: SIGMA has the lowest learning time on every large dataset, with a");
    println!("small one-time precomputation and a much cheaper per-epoch aggregation than GloGNN.");
}
