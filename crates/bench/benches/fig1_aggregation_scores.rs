//! Fig. 1(b)/(c): local (PPR) vs global (SimRank) aggregation scores around
//! centre nodes on the Texas-like heterophilous graph.
//!
//! For a set of centre nodes, we compare how much aggregation weight each
//! scheme assigns to *same-label* nodes versus *different-label* nodes.
//! The paper's qualitative finding: PPR concentrates weight on (mostly
//! differently-labelled) neighbours, while SimRank assigns its largest
//! weights to same-label nodes regardless of distance.

use sigma_bench::{BenchConfig, TablePrinter};
use sigma_datasets::DatasetPreset;
use sigma_simrank::{exact_simrank, power_iteration_ppr, PprConfig, SimRankConfig};

fn main() {
    let cfg = BenchConfig::from_env();
    let data = DatasetPreset::Texas
        .build(cfg.scale, 42)
        .expect("texas preset");
    println!(
        "Fig. 1(b)/(c) — aggregation score homophily on {}",
        data.summary()
    );

    let simrank = exact_simrank(&data.graph, &SimRankConfig::default()).expect("exact SimRank");
    let ppr_cfg = PprConfig::default();

    // Pick centre nodes with reasonable degree so both schemes have support.
    let centres: Vec<usize> = (0..data.num_nodes())
        .filter(|&v| data.graph.degree(v) >= 2)
        .take(10)
        .collect();

    let mut table = TablePrinter::new(vec![
        "centre",
        "label",
        "PPR same-label mass",
        "PPR diff-label mass",
        "SimRank same-label mass",
        "SimRank diff-label mass",
    ]);
    let mut ppr_same_total = 0.0f64;
    let mut ppr_diff_total = 0.0f64;
    let mut sim_same_total = 0.0f64;
    let mut sim_diff_total = 0.0f64;
    for &centre in &centres {
        let ppr = power_iteration_ppr(&data.graph, centre, &ppr_cfg).expect("ppr");
        let (mut ppr_same, mut ppr_diff) = (0.0f64, 0.0f64);
        let (mut sim_same, mut sim_diff) = (0.0f64, 0.0f64);
        for (v, &ppr_v) in ppr.iter().enumerate() {
            if v == centre {
                continue;
            }
            let same = data.labels[v] == data.labels[centre];
            if same {
                ppr_same += ppr_v;
                sim_same += simrank.get(centre, v) as f64;
            } else {
                ppr_diff += ppr_v;
                sim_diff += simrank.get(centre, v) as f64;
            }
        }
        ppr_same_total += ppr_same;
        ppr_diff_total += ppr_diff;
        sim_same_total += sim_same;
        sim_diff_total += sim_diff;
        table.add_row(vec![
            centre.to_string(),
            data.labels[centre].to_string(),
            format!("{ppr_same:.4}"),
            format!("{ppr_diff:.4}"),
            format!("{sim_same:.4}"),
            format!("{sim_diff:.4}"),
        ]);
    }
    table.print("Fig. 1: per-centre aggregation mass by label agreement");

    let ppr_ratio = ppr_same_total / (ppr_same_total + ppr_diff_total);
    let sim_ratio = sim_same_total / (sim_same_total + sim_diff_total);
    println!("aggregate same-label share: PPR (local) = {ppr_ratio:.3}, SimRank (SIGMA) = {sim_ratio:.3}");
    println!(
        "paper shape: SimRank's share should exceed PPR's on heterophilous graphs -> {}",
        if sim_ratio > ppr_ratio {
            "REPRODUCED"
        } else {
            "NOT reproduced on this draw"
        }
    );
}
