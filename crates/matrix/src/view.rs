//! Borrowed views over CSR and dense storage: the view-first kernel API.
//!
//! The zero-copy snapshot format (`sigma-serve` format v2) maps CSR and
//! dense sections straight off disk as `&[u32]`/`&[u64]`/`&[f32]` slices.
//! [`CsrView`] and [`DenseView`] wrap such slices — or the arrays inside an
//! owned [`CsrMatrix`]/[`DenseMatrix`] — and carry the *kernel
//! implementations* for the spmm family. The owned types delegate their
//! public `spmm`/`spmm_rows`/`spmm_transpose` methods here, so the owned
//! and borrowed paths run the same code and produce bitwise-identical
//! results at every thread count.
//!
//! [`CsrView`] is generic over the `indptr` word width via
//! [`sigma_parallel::PrefixWord`]: `usize` for in-memory matrices, `u32`
//! (the nnz < 2³² fast path) or `u64` for on-disk sections. [`CsrViewAny`]
//! erases that parameter for callers that hold either width at runtime.

use crate::{kernels, CsrMatrix, DenseMatrix, MatrixError, Result};
use sigma_obs::StaticCounter;
use sigma_parallel::{PrefixWord, ThreadPool};

pub(crate) static SPMM_CALLS: StaticCounter = StaticCounter::new(
    "sigma_spmm_calls_total",
    "spmm (sparse x dense) kernel invocations that reached the compute path",
);
pub(crate) static SPMM_NNZ: StaticCounter =
    StaticCounter::new("sigma_spmm_nnz_total", "stored entries processed by spmm");
pub(crate) static SPMM_TRANSPOSE_CALLS: StaticCounter = StaticCounter::new(
    "sigma_spmm_transpose_calls_total",
    "spmm_transpose (backward operator product) invocations that reached the compute path",
);
pub(crate) static SPMM_TRANSPOSE_NNZ: StaticCounter = StaticCounter::new(
    "sigma_spmm_transpose_nnz_total",
    "stored entries processed by spmm_transpose",
);
pub(crate) static SPMM_ROWS_CALLS: StaticCounter = StaticCounter::new(
    "sigma_spmm_rows_calls_total",
    "row-sliced spmm (serving batch) invocations that reached the compute path",
);
pub(crate) static SPMM_ROWS_ROWS: StaticCounter = StaticCounter::new(
    "sigma_spmm_rows_rows_total",
    "output rows produced by spmm_rows",
);

/// A borrowed row-major dense `f32` matrix.
///
/// The borrowed counterpart of [`DenseMatrix`]: same layout, no ownership.
/// Obtained from [`DenseMatrix::view`] or built over a memory-mapped
/// snapshot section with [`DenseView::new`].
#[derive(Debug, Clone, Copy)]
pub struct DenseView<'a> {
    rows: usize,
    cols: usize,
    data: &'a [f32],
}

impl<'a> DenseView<'a> {
    /// Wraps a row-major buffer; `data.len()` must equal `rows * cols`.
    pub fn new(rows: usize, cols: usize, data: &'a [f32]) -> Result<Self> {
        if data.len() != rows.saturating_mul(cols) {
            return Err(MatrixError::InvalidShape {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &'a [f32] {
        self.data
    }

    /// One row as a slice.
    #[inline]
    pub fn row(&self, row: usize) -> &'a [f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Copies the selected rows (in order, duplicates allowed) into a new
    /// owned matrix. Mirrors [`DenseMatrix::select_rows`] exactly.
    pub fn select_rows(&self, indices: &[usize]) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            if src >= self.rows {
                return Err(MatrixError::IndexOutOfBounds {
                    row: src,
                    col: 0,
                    shape: self.shape(),
                });
            }
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        Ok(out)
    }

    /// Copies the viewed data into an owned [`DenseMatrix`].
    pub fn to_owned_matrix(&self) -> DenseMatrix {
        DenseMatrix::from_vec(self.rows, self.cols, self.data.to_vec())
            .expect("view shape is consistent by construction")
    }
}

/// A borrowed CSR `f32` matrix, generic over the `indptr` word width.
///
/// The borrowed counterpart of [`CsrMatrix`]: three slices plus a shape.
/// Carries the spmm-family kernel implementations; [`CsrMatrix`] delegates
/// here, so owned and mapped storage run identical code.
///
/// [`CsrView::new`] performs only O(1) shape checks (lengths and `indptr`
/// endpoints). The O(nnz) structural invariants — `indptr` monotone,
/// within-row column sortedness, indices in bounds — are checked by
/// [`CsrView::validate_structure`], which snapshot loaders call once before
/// serving from the view.
#[derive(Debug, Clone, Copy)]
pub struct CsrView<'a, P: PrefixWord = usize> {
    rows: usize,
    cols: usize,
    indptr: &'a [P],
    indices: &'a [u32],
    values: &'a [f32],
}

impl<'a, P: PrefixWord> CsrView<'a, P> {
    /// Wraps raw CSR components after O(1) shape checks: `indptr` has
    /// `rows + 1` entries, starts at 0, ends at `indices.len()`, and
    /// `indices`/`values` have equal length.
    pub fn new(
        rows: usize,
        cols: usize,
        indptr: &'a [P],
        indices: &'a [u32],
        values: &'a [f32],
    ) -> Result<Self> {
        if indptr.len() != rows + 1
            || indptr.first().map(|p| p.as_usize()).unwrap_or(1) != 0
            || indptr.last().map(|p| p.as_usize()).unwrap_or(0) != indices.len()
            || indices.len() != values.len()
        {
            return Err(MatrixError::InvalidShape {
                rows,
                cols,
                len: indices.len(),
            });
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Internal constructor for views over already-validated owned storage.
    #[inline]
    pub(crate) fn from_parts_unchecked(
        rows: usize,
        cols: usize,
        indptr: &'a [P],
        indices: &'a [u32],
        values: &'a [f32],
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        debug_assert_eq!(indices.len(), values.len());
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Half-open entry range of one row.
    #[inline]
    pub fn row_range(&self, row: usize) -> std::ops::Range<usize> {
        self.indptr[row].as_usize()..self.indptr[row + 1].as_usize()
    }

    /// Number of stored entries in one row.
    #[inline]
    pub fn row_nnz(&self, row: usize) -> usize {
        let r = self.row_range(row);
        r.end - r.start
    }

    /// Column indices of one row.
    #[inline]
    pub fn row_cols(&self, row: usize) -> &'a [u32] {
        &self.indices[self.row_range(row)]
    }

    /// Stored values of one row.
    #[inline]
    pub fn row_vals(&self, row: usize) -> &'a [f32] {
        &self.values[self.row_range(row)]
    }

    /// Iterator over `(col, value)` pairs of one row.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = (usize, f32)> + 'a {
        self.row_cols(row)
            .iter()
            .zip(self.row_vals(row))
            .map(|(&c, &v)| (c as usize, v))
    }

    /// O(nnz) structural invariant check: `indptr` monotone non-decreasing,
    /// column indices `< cols` and sorted ascending within each row.
    ///
    /// Snapshot loaders run this once per mapped section instead of
    /// trusting the file; the parallel kernels rely on within-row
    /// sortedness for their column-window binary searches.
    pub fn validate_structure(&self) -> Result<()> {
        if self.indptr.windows(2).any(|w| w[1] < w[0]) {
            return Err(MatrixError::InvalidShape {
                rows: self.rows,
                cols: self.cols,
                len: self.indices.len(),
            });
        }
        for &c in self.indices {
            if c as usize >= self.cols {
                return Err(MatrixError::IndexOutOfBounds {
                    row: 0,
                    col: c as usize,
                    shape: self.shape(),
                });
            }
        }
        for r in 0..self.rows {
            if self.row_cols(r).windows(2).any(|w| w[1] < w[0]) {
                return Err(MatrixError::UnsortedRow { row: r });
            }
        }
        Ok(())
    }

    /// Copies the view into an owned [`CsrMatrix`] (widening `indptr` to
    /// `usize`), re-validating the structural invariants on the way in.
    pub fn to_owned_matrix(&self) -> Result<CsrMatrix> {
        CsrMatrix::from_raw(
            self.rows,
            self.cols,
            self.indptr.iter().map(|p| p.as_usize()).collect(),
            self.indices.to_vec(),
            self.values.to_vec(),
        )
    }

    /// Materialises the transpose as an owned [`CsrMatrix`] (counting
    /// sort, identical to [`CsrMatrix::transpose`]).
    pub fn transpose_owned(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        for r in 0..self.rows {
            for idx in self.row_range(r) {
                let c = self.indices[idx] as usize;
                let pos = indptr[c];
                indices[pos] = r as u32;
                values[pos] = self.values[idx];
                indptr[c] += 1;
            }
        }
        CsrMatrix::from_parts(self.cols, self.rows, counts, indices, values)
    }

    /// Extracts the given rows (in order, duplicates allowed) as an owned
    /// `rows.len() × cols` CSR matrix. Mirrors [`CsrMatrix::gather_rows`].
    pub fn gather_rows(&self, rows: &[usize]) -> Result<CsrMatrix> {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0usize);
        let nnz_estimate: usize = rows
            .iter()
            .map(|&r| if r < self.rows { self.row_nnz(r) } else { 0 })
            .sum();
        let mut indices: Vec<u32> = Vec::with_capacity(nnz_estimate);
        let mut values: Vec<f32> = Vec::with_capacity(nnz_estimate);
        for &r in rows {
            if r >= self.rows {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: 0,
                    shape: self.shape(),
                });
            }
            let range = self.row_range(r);
            indices.extend_from_slice(&self.indices[range.clone()]);
            values.extend_from_slice(&self.values[range]);
            indptr.push(indices.len());
        }
        Ok(CsrMatrix::from_parts(
            rows.len(),
            self.cols,
            indptr,
            indices,
            values,
        ))
    }

    /// Sparse × dense product `self · rhs`. The kernel behind
    /// [`CsrMatrix::spmm`]; see there for the parallelism and determinism
    /// contract.
    pub fn spmm(&self, rhs: DenseView<'_>) -> Result<DenseMatrix> {
        if self.cols != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "spmm",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let f = rhs.cols();
        let mut out = DenseMatrix::zeros(self.rows, f);
        if f == 0 || self.rows == 0 {
            return Ok(out);
        }
        SPMM_CALLS.inc();
        SPMM_NNZ.add(self.nnz() as u64);
        let _span = sigma_obs::span!("spmm", self.nnz());
        let pool = ThreadPool::global();
        if pool.should_parallelize(self.nnz().saturating_mul(f)) {
            pool.par_row_blocks_mut_by_prefix(
                out.as_mut_slice(),
                f,
                self.indptr,
                |first_row, block| {
                    self.spmm_block(first_row, rhs, block);
                },
            );
        } else {
            self.spmm_block(0, rhs, out.as_mut_slice());
        }
        Ok(out)
    }

    /// Computes output rows `first_row ..` of `self · rhs` into `block`.
    fn spmm_block(&self, first_row: usize, rhs: DenseView<'_>, block: &mut [f32]) {
        let f = rhs.cols();
        for (i, out_row) in block.chunks_exact_mut(f).enumerate() {
            let r = first_row + i;
            for idx in self.row_range(r) {
                let c = self.indices[idx] as usize;
                kernels::axpy(out_row, self.values[idx], rhs.row(c));
            }
        }
    }

    /// Row-sliced sparse × dense product `self[rows, :] · rhs`. The kernel
    /// behind [`CsrMatrix::spmm_rows`]; see there for the cost model.
    pub fn spmm_rows(&self, rows: &[usize], rhs: DenseView<'_>) -> Result<DenseMatrix> {
        if self.cols != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "spmm_rows",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let f = rhs.cols();
        let mut out = DenseMatrix::zeros(rows.len(), f);
        let mut work = 0usize;
        for &r in rows {
            if r >= self.rows {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: 0,
                    shape: self.shape(),
                });
            }
            work = work.saturating_add(self.row_nnz(r));
        }
        if f == 0 || rows.is_empty() {
            return Ok(out);
        }
        SPMM_ROWS_CALLS.inc();
        SPMM_ROWS_ROWS.add(rows.len() as u64);
        let _span = sigma_obs::span!("spmm_rows", work);
        let slice_block = |first: usize, block: &mut [f32]| {
            for (i, out_row) in block.chunks_exact_mut(f).enumerate() {
                let r = rows[first + i];
                for idx in self.row_range(r) {
                    let c = self.indices[idx] as usize;
                    kernels::axpy(out_row, self.values[idx], rhs.row(c));
                }
            }
        };
        let pool = ThreadPool::global();
        if pool.should_parallelize(work.saturating_mul(f)) {
            // The planner weights (selected-row nnz) are only materialised
            // on the parallel path: small serving batches stay serial and
            // must not pay an allocation for a plan they will not use.
            let weights: Vec<usize> = rows.iter().map(|&r| self.row_nnz(r)).collect();
            pool.par_row_blocks_mut_weighted(out.as_mut_slice(), f, &weights, slice_block);
        } else {
            slice_block(0, out.as_mut_slice());
        }
        Ok(out)
    }

    /// Transposed sparse × dense product `selfᵀ · rhs`. The kernel behind
    /// [`CsrMatrix::spmm_transpose`]; see there for the parallelism and
    /// determinism contract.
    pub fn spmm_transpose(&self, rhs: DenseView<'_>) -> Result<DenseMatrix> {
        if self.rows != rhs.rows() {
            return Err(MatrixError::DimensionMismatch {
                op: "spmm_transpose",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        let f = rhs.cols();
        let mut out = DenseMatrix::zeros(self.cols, f);
        if f == 0 || self.cols == 0 {
            return Ok(out);
        }
        SPMM_TRANSPOSE_CALLS.inc();
        SPMM_TRANSPOSE_NNZ.add(self.nnz() as u64);
        let _span = sigma_obs::span!("spmm_transpose", self.nnz());
        let pool = ThreadPool::global();
        if pool.should_parallelize(self.nnz().saturating_mul(f)) {
            // Each output row's work is its *column* count in `self`; one
            // O(nnz) histogram pass feeds the nnz-balanced planner so a few
            // super-popular columns do not serialise one thread.
            let mut col_nnz = vec![0usize; self.cols];
            for &c in self.indices {
                col_nnz[c as usize] += 1;
            }
            pool.par_row_blocks_mut_weighted(
                out.as_mut_slice(),
                f,
                &col_nnz,
                |first_col, block| {
                    let cols_in_block = block.len() / f;
                    let (c0, c1) = (first_col, first_col + cols_in_block);
                    for r in 0..self.rows {
                        let range = self.row_range(r);
                        let row_cols = &self.indices[range.clone()];
                        // Entries are sorted by column within a row: hoist
                        // the whole column window `[c0, c1)` out of the
                        // entry loop (two binary searches per row) instead
                        // of re-testing the upper bound per entry.
                        let lo = range.start + row_cols.partition_point(|&c| (c as usize) < c0);
                        let hi = range.start + row_cols.partition_point(|&c| (c as usize) < c1);
                        if lo == hi {
                            continue;
                        }
                        let rhs_row = rhs.row(r);
                        for idx in lo..hi {
                            let c = self.indices[idx] as usize;
                            let out_row = &mut block[(c - c0) * f..(c - c0 + 1) * f];
                            kernels::axpy(out_row, self.values[idx], rhs_row);
                        }
                    }
                },
            );
        } else {
            // Serial scatter. The scattered, cache-unfriendly writes punish
            // the 8-lane axpy's chunked shape here (the one spot it loses to
            // the scalar loop — the spmm_transpose single-thread regression
            // in BENCH_kernels.json), so this path keeps the plain indexed
            // loop; `kernels::axpy` is documented bit-identical to it, so
            // the parallel path above still matches bitwise.
            let out_slice = out.as_mut_slice();
            for r in 0..self.rows {
                let rhs_row = rhs.row(r);
                for idx in self.row_range(r) {
                    let c = self.indices[idx] as usize;
                    let v = self.values[idx];
                    let out_row = &mut out_slice[c * f..(c + 1) * f];
                    for j in 0..f {
                        out_row[j] += v * rhs_row[j];
                    }
                }
            }
        }
        Ok(out)
    }
}

/// A [`CsrView`] with the `indptr` word width erased.
///
/// Snapshot loaders pick the width at runtime (the v2 format stores
/// `indptr` as `u32` when nnz < 2³², `u64` otherwise); this enum lets the
/// serve engine hold either — or a view of an owned matrix — behind one
/// type.
#[derive(Debug, Clone, Copy)]
pub enum CsrViewAny<'a> {
    /// View over in-memory `usize` row pointers (an owned [`CsrMatrix`]).
    Native(CsrView<'a, usize>),
    /// View over on-disk `u32` row pointers (nnz < 2³² fast path).
    Narrow(CsrView<'a, u32>),
    /// View over on-disk `u64` row pointers.
    Wide(CsrView<'a, u64>),
}

macro_rules! dispatch {
    ($self:expr, $v:ident => $body:expr) => {
        match $self {
            CsrViewAny::Native($v) => $body,
            CsrViewAny::Narrow($v) => $body,
            CsrViewAny::Wide($v) => $body,
        }
    };
}

impl<'a> CsrViewAny<'a> {
    /// Number of rows.
    pub fn rows(&self) -> usize {
        dispatch!(self, v => v.rows())
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        dispatch!(self, v => v.cols())
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        dispatch!(self, v => v.shape())
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        dispatch!(self, v => v.nnz())
    }

    /// Number of stored entries in one row.
    pub fn row_nnz(&self, row: usize) -> usize {
        dispatch!(self, v => v.row_nnz(row))
    }

    /// Column indices of one row.
    pub fn row_cols(&self, row: usize) -> &'a [u32] {
        dispatch!(self, v => v.row_cols(row))
    }

    /// Stored values of one row.
    pub fn row_vals(&self, row: usize) -> &'a [f32] {
        dispatch!(self, v => v.row_vals(row))
    }

    /// O(nnz) structural invariant check; see
    /// [`CsrView::validate_structure`].
    pub fn validate_structure(&self) -> Result<()> {
        dispatch!(self, v => v.validate_structure())
    }

    /// Copies the view into an owned [`CsrMatrix`].
    pub fn to_owned_matrix(&self) -> Result<CsrMatrix> {
        dispatch!(self, v => v.to_owned_matrix())
    }

    /// Materialises the transpose as an owned [`CsrMatrix`].
    pub fn transpose_owned(&self) -> CsrMatrix {
        dispatch!(self, v => v.transpose_owned())
    }

    /// Extracts the given rows as an owned CSR matrix.
    pub fn gather_rows(&self, rows: &[usize]) -> Result<CsrMatrix> {
        dispatch!(self, v => v.gather_rows(rows))
    }

    /// Sparse × dense product `self · rhs`.
    pub fn spmm(&self, rhs: DenseView<'_>) -> Result<DenseMatrix> {
        dispatch!(self, v => v.spmm(rhs))
    }

    /// Row-sliced sparse × dense product `self[rows, :] · rhs`.
    pub fn spmm_rows(&self, rows: &[usize], rhs: DenseView<'_>) -> Result<DenseMatrix> {
        dispatch!(self, v => v.spmm_rows(rows, rhs))
    }

    /// Transposed sparse × dense product `selfᵀ · rhs`.
    pub fn spmm_transpose(&self, rhs: DenseView<'_>) -> Result<DenseMatrix> {
        dispatch!(self, v => v.spmm_transpose(rhs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[0, 2, 0],
        //  [1, 0, 3],
        //  [0, 0, 0]]
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0)]).unwrap()
    }

    fn narrow_parts(m: &CsrMatrix) -> (Vec<u32>, Vec<u32>, Vec<f32>) {
        (
            m.indptr().iter().map(|&p| p as u32).collect(),
            m.indices().to_vec(),
            m.values().to_vec(),
        )
    }

    #[test]
    fn narrow_view_kernels_match_owned_bitwise() {
        let m = sample();
        let (indptr, indices, values) = narrow_parts(&m);
        let v = CsrView::<u32>::new(3, 3, &indptr, &indices, &values).unwrap();
        v.validate_structure().unwrap();
        let x = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 + 0.25);
        for (owned, viewed) in [
            (m.spmm(&x).unwrap(), v.spmm(x.view()).unwrap()),
            (
                m.spmm_transpose(&x).unwrap(),
                v.spmm_transpose(x.view()).unwrap(),
            ),
            (
                m.spmm_rows(&[1, 0, 1], &x).unwrap(),
                v.spmm_rows(&[1, 0, 1], x.view()).unwrap(),
            ),
        ] {
            assert_eq!(owned.shape(), viewed.shape());
            for (a, b) in owned.as_slice().iter().zip(viewed.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        assert_eq!(v.to_owned_matrix().unwrap(), m);
        assert_eq!(v.transpose_owned(), m.transpose());
        assert_eq!(v.gather_rows(&[1]).unwrap(), m.gather_rows(&[1]).unwrap());
    }

    #[test]
    fn view_construction_rejects_bad_shapes() {
        let (indptr, indices, values) = ([0u32, 1, 2, 2], [1u32, 0], [2.0f32, 1.0]);
        assert!(CsrView::<u32>::new(3, 3, &indptr, &indices, &values).is_ok());
        // indptr too short for the row count.
        assert!(CsrView::<u32>::new(4, 3, &indptr, &indices, &values).is_err());
        // endpoint disagrees with the index count.
        let bad_end = [0u32, 1, 2, 3];
        assert!(CsrView::<u32>::new(3, 3, &bad_end, &indices, &values).is_err());
        // indices/values length mismatch.
        assert!(CsrView::<u32>::new(3, 3, &indptr, &indices, &values[..1]).is_err());
    }

    #[test]
    fn validate_structure_catches_each_invariant() {
        // Non-monotone indptr.
        let v = CsrView::<u32>::new(3, 3, &[0, 2, 1, 2], &[1, 0], &[1.0, 1.0]).unwrap();
        assert!(matches!(
            v.validate_structure(),
            Err(MatrixError::InvalidShape { .. })
        ));
        // Column out of bounds.
        let v = CsrView::<u32>::new(2, 2, &[0, 1, 2], &[0, 7], &[1.0, 1.0]).unwrap();
        assert!(matches!(
            v.validate_structure(),
            Err(MatrixError::IndexOutOfBounds { .. })
        ));
        // Unsorted columns within a row.
        let v = CsrView::<u32>::new(1, 3, &[0, 2], &[2, 0], &[1.0, 1.0]).unwrap();
        assert!(matches!(
            v.validate_structure(),
            Err(MatrixError::UnsortedRow { row: 0 })
        ));
    }

    #[test]
    fn dense_view_matches_owned() {
        let d = DenseMatrix::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
        let v = d.view();
        assert_eq!(v.shape(), d.shape());
        assert_eq!(v.row(1), d.row(1));
        assert_eq!(
            v.select_rows(&[2, 0]).unwrap(),
            d.select_rows(&[2, 0]).unwrap()
        );
        assert_eq!(v.to_owned_matrix(), d);
        assert!(v.select_rows(&[3]).is_err());
    }

    #[test]
    fn any_view_dispatches_all_widths() {
        let m = sample();
        let x = DenseMatrix::from_fn(3, 2, |r, c| (r + c) as f32 + 0.5);
        let want = m.spmm(&x).unwrap();
        let (nptr, nidx, nval) = narrow_parts(&m);
        let wptr: Vec<u64> = m.indptr().iter().map(|&p| p as u64).collect();
        let views = [
            CsrViewAny::Native(m.view()),
            CsrViewAny::Narrow(CsrView::new(3, 3, &nptr, &nidx, &nval).unwrap()),
            CsrViewAny::Wide(CsrView::new(3, 3, &wptr, m.indices(), m.values()).unwrap()),
        ];
        for v in views {
            assert_eq!(v.nnz(), m.nnz());
            assert_eq!(v.row_cols(1), &[0, 2]);
            let got = v.spmm(x.view()).unwrap();
            for (a, b) in want.as_slice().iter().zip(got.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }
}
