use crate::{kernels, MatrixError, Result};
use sigma_parallel::ThreadPool;

/// A row-major dense `f32` matrix.
///
/// `DenseMatrix` is the workhorse container for node features, hidden
/// representations, MLP weights and gradients throughout the SIGMA
/// reproduction. It deliberately exposes a small, allocation-conscious API:
/// in-place element-wise updates, GEMM variants needed by manual
/// backpropagation (`A·B`, `Aᵀ·B`, `A·Bᵀ`), and the reductions used by the
/// training loop (row argmax, norms, means). The three GEMM variants are
/// parallelised over disjoint output-row ranges on the shared
/// [`sigma_parallel::ThreadPool`]; every output element keeps the serial
/// accumulation order, so results are bitwise identical to the serial path
/// at any thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl DenseMatrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows x cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n x n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major buffer.
    ///
    /// Returns [`MatrixError::InvalidShape`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(MatrixError::InvalidShape {
                rows,
                cols,
                len: data.len(),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Creates a matrix from row slices. All rows must have equal length.
    pub fn from_rows(rows: &[&[f32]]) -> Result<Self> {
        if rows.is_empty() {
            return Ok(Self::zeros(0, 0));
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            if r.len() != cols {
                return Err(MatrixError::InvalidShape {
                    rows: rows.len(),
                    cols,
                    len: r.len(),
                });
            }
            data.extend_from_slice(r);
        }
        Ok(Self {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for i in 0..rows {
            for j in 0..cols {
                data.push(f(i, j));
            }
        }
        Self { rows, cols, data }
    }

    /// A borrowed [`crate::DenseView`] over this matrix's storage, for the
    /// view-first kernel API shared with memory-mapped snapshot sections.
    #[inline]
    pub fn view(&self) -> crate::DenseView<'_> {
        crate::DenseView::new(self.rows, self.cols, &self.data)
            .expect("owned storage is shape-consistent")
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Immutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying row-major buffer.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Returns the element at `(row, col)`.
    ///
    /// # Panics
    /// Panics if the index is out of bounds (internal invariant violation in
    /// callers; use [`DenseMatrix::try_get`] for checked access).
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f32 {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col]
    }

    /// Checked element access.
    pub fn try_get(&self, row: usize, col: usize) -> Result<f32> {
        if row >= self.rows || col >= self.cols {
            return Err(MatrixError::IndexOutOfBounds {
                row,
                col,
                shape: self.shape(),
            });
        }
        Ok(self.data[row * self.cols + col])
    }

    /// Sets the element at `(row, col)`.
    #[inline]
    pub fn set(&mut self, row: usize, col: usize, value: f32) {
        debug_assert!(row < self.rows && col < self.cols);
        self.data[row * self.cols + col] = value;
    }

    /// Immutable view of one row.
    #[inline]
    pub fn row(&self, row: usize) -> &[f32] {
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Mutable view of one row.
    #[inline]
    pub fn row_mut(&mut self, row: usize) -> &mut [f32] {
        &mut self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Copies the contents of `other` into `self`.
    ///
    /// Returns an error if shapes differ. Reuses the existing allocation.
    pub fn copy_from(&mut self, other: &DenseMatrix) -> Result<()> {
        self.check_same_shape("copy_from", other)?;
        self.data.copy_from_slice(&other.data);
        Ok(())
    }

    /// Sets every element to zero (keeps the allocation).
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Sets every element to `value`.
    pub fn fill(&mut self, value: f32) {
        self.data.iter_mut().for_each(|v| *v = value);
    }

    /// Applies `f` to every element in place.
    pub fn map_inplace(&mut self, mut f: impl FnMut(f32) -> f32) {
        self.data.iter_mut().for_each(|v| *v = f(*v));
    }

    /// Returns a new matrix with `f` applied to every element.
    pub fn map(&self, mut f: impl FnMut(f32) -> f32) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every element by `s` in place.
    pub fn scale(&mut self, s: f32) {
        self.data.iter_mut().for_each(|v| *v *= s);
    }

    /// `self += other`.
    pub fn add_assign(&mut self, other: &DenseMatrix) -> Result<()> {
        self.check_same_shape("add_assign", other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// `self -= other`.
    pub fn sub_assign(&mut self, other: &DenseMatrix) -> Result<()> {
        self.check_same_shape("sub_assign", other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a -= b;
        }
        Ok(())
    }

    /// `self += alpha * other` (axpy).
    pub fn add_scaled(&mut self, alpha: f32, other: &DenseMatrix) -> Result<()> {
        self.check_same_shape("add_scaled", other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Element-wise (Hadamard) product in place: `self[i] *= other[i]`.
    pub fn hadamard_assign(&mut self, other: &DenseMatrix) -> Result<()> {
        self.check_same_shape("hadamard_assign", other)?;
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a *= b;
        }
        Ok(())
    }

    /// Returns `alpha * self + beta * other` as a new matrix.
    pub fn linear_combination(
        &self,
        alpha: f32,
        beta: f32,
        other: &DenseMatrix,
    ) -> Result<DenseMatrix> {
        self.check_same_shape("linear_combination", other)?;
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| alpha * a + beta * b)
            .collect();
        Ok(DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Dense GEMM: returns `self · other`.
    ///
    /// Output-row blocks run in parallel on the shared pool; each row keeps
    /// the serial i-k-j accumulation order (bitwise-identical results).
    pub fn matmul(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        if self.rows == 0 || other.cols == 0 {
            return Ok(out);
        }
        let oc = other.cols;
        let block_fn = |first_row: usize, block: &mut [f32]| {
            // i-k-j loop order: streams through `other` row-by-row for
            // locality; the inner update is the 8-lane axpy (element-wise,
            // bit-exact at any vector width).
            for (i, out_row) in block.chunks_exact_mut(oc).enumerate() {
                let r = first_row + i;
                for k in 0..self.cols {
                    let a = self.data[r * self.cols + k];
                    if a == 0.0 {
                        continue;
                    }
                    kernels::axpy(out_row, a, &other.data[k * oc..(k + 1) * oc]);
                }
            }
        };
        let work = self
            .rows
            .saturating_mul(self.cols)
            .saturating_mul(other.cols);
        let pool = ThreadPool::global();
        if pool.should_parallelize(work) {
            pool.par_row_blocks_mut(out.as_mut_slice(), oc, block_fn);
        } else {
            block_fn(0, out.as_mut_slice());
        }
        Ok(out)
    }

    /// Returns `selfᵀ · other`. Used for weight gradients (`dW = Xᵀ·dY`).
    ///
    /// The serial path scatters row-by-row; the parallel path partitions the
    /// *output* rows (columns of `self`) so writes stay disjoint. For a fixed
    /// output row both accumulate over input rows in ascending order, so the
    /// results are bitwise identical.
    pub fn matmul_transpose_self(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != other.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul_transpose_self",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.cols, other.cols);
        if self.cols == 0 || other.cols == 0 {
            return Ok(out);
        }
        let oc = other.cols;
        let work = self
            .rows
            .saturating_mul(self.cols)
            .saturating_mul(other.cols);
        let pool = ThreadPool::global();
        if pool.should_parallelize(work) {
            pool.par_row_blocks_mut(out.as_mut_slice(), oc, |first_k, block| {
                for r in 0..self.rows {
                    let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
                    let b_row = &other.data[r * oc..(r + 1) * oc];
                    for (i, out_row) in block.chunks_exact_mut(oc).enumerate() {
                        let a = a_row[first_k + i];
                        if a == 0.0 {
                            continue;
                        }
                        kernels::axpy(out_row, a, b_row);
                    }
                }
            });
        } else {
            for r in 0..self.rows {
                let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
                let b_row = &other.data[r * oc..(r + 1) * oc];
                for (k, &a) in a_row.iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    kernels::axpy(&mut out.data[k * oc..(k + 1) * oc], a, b_row);
                }
            }
        }
        Ok(out)
    }

    /// Returns `self · otherᵀ`. Used for input gradients (`dX = dY·Wᵀ`).
    ///
    /// Each output row is an independent set of dot products computed with
    /// [`kernels::dot`] — the canonical 8-lane reduction order, a pure
    /// function of the operands that is identical at every thread count and
    /// for every compiler vectorisation choice (it is *not* the historical
    /// left-to-right sum; see the `kernels` module docs). Row blocks run in
    /// parallel with identical per-element accumulation order.
    pub fn matmul_transpose_other(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "matmul_transpose_other",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, other.rows);
        if self.rows == 0 || other.rows == 0 {
            return Ok(out);
        }
        let or = other.rows;
        let block_fn = |first_row: usize, block: &mut [f32]| {
            for (i, out_row) in block.chunks_exact_mut(or).enumerate() {
                let r = first_row + i;
                let a_row = &self.data[r * self.cols..(r + 1) * self.cols];
                for (j, o) in out_row.iter_mut().enumerate() {
                    let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                    *o = kernels::dot(a_row, b_row);
                }
            }
        };
        let work = self
            .rows
            .saturating_mul(self.cols)
            .saturating_mul(other.rows);
        let pool = ThreadPool::global();
        if pool.should_parallelize(work) {
            pool.par_row_blocks_mut(out.as_mut_slice(), or, block_fn);
        } else {
            block_fn(0, out.as_mut_slice());
        }
        Ok(out)
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                out.data[j * self.rows + i] = self.data[i * self.cols + j];
            }
        }
        out
    }

    /// Horizontally concatenates `self` and `other` (same row count).
    pub fn hconcat(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != other.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "hconcat",
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        let cols = self.cols + other.cols;
        let mut out = DenseMatrix::zeros(self.rows, cols);
        for i in 0..self.rows {
            out.data[i * cols..i * cols + self.cols].copy_from_slice(self.row(i));
            out.data[i * cols + self.cols..(i + 1) * cols].copy_from_slice(other.row(i));
        }
        Ok(out)
    }

    /// Returns a new matrix containing the selected rows, in order.
    pub fn select_rows(&self, indices: &[usize]) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            if src >= self.rows {
                return Err(MatrixError::IndexOutOfBounds {
                    row: src,
                    col: 0,
                    shape: self.shape(),
                });
            }
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
        Ok(out)
    }

    /// Index of the maximum value in each row (ties resolved to the first).
    pub fn argmax_rows(&self) -> Vec<usize> {
        self.rows_iter()
            .map(|row| {
                row.iter()
                    .enumerate()
                    .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                        if v > bv {
                            (i, v)
                        } else {
                            (bi, bv)
                        }
                    })
                    .0
            })
            .collect()
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// L2 norm of one row.
    pub fn row_norm(&self, row: usize) -> f32 {
        self.row(row).iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Euclidean distance between two rows of this matrix.
    pub fn row_distance(&self, a: usize, b: usize) -> f32 {
        self.row(a)
            .iter()
            .zip(self.row(b).iter())
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    }

    /// Mean of all entries.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        self.data.iter().sum::<f32>() / self.data.len() as f32
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Returns true if all entries are finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }

    /// Row-wise softmax, returned as a new matrix.
    ///
    /// Numerically stabilised by subtracting the per-row maximum.
    pub fn softmax_rows(&self) -> DenseMatrix {
        let mut out = self.clone();
        for i in 0..out.rows {
            let row = out.row_mut(i);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    fn check_same_shape(&self, op: &'static str, other: &DenseMatrix) -> Result<()> {
        if self.shape() != other.shape() {
            return Err(MatrixError::DimensionMismatch {
                op,
                lhs: self.shape(),
                rhs: other.shape(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx_eq(a: f32, b: f32) -> bool {
        (a - b).abs() < 1e-5
    }

    #[test]
    fn zeros_and_shape() {
        let m = DenseMatrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_diagonal() {
        let m = DenseMatrix::identity(4);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(m.get(i, j), if i == j { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_vec_rejects_bad_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn from_rows_rejects_ragged() {
        let r1: &[f32] = &[1.0, 2.0];
        let r2: &[f32] = &[3.0];
        assert!(DenseMatrix::from_rows(&[r1, r2]).is_err());
    }

    #[test]
    fn matmul_small_known_result() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_dimension_mismatch() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            a.matmul(&b),
            Err(MatrixError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let i = DenseMatrix::identity(3);
        let c = a.matmul(&i).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn transpose_matmul_variants_agree() {
        let a = DenseMatrix::from_fn(4, 3, |i, j| (i * 3 + j) as f32 * 0.5 - 1.0);
        let b = DenseMatrix::from_fn(4, 5, |i, j| (i + j) as f32 * 0.25);
        let direct = a.transpose().matmul(&b).unwrap();
        let fused = a.matmul_transpose_self(&b).unwrap();
        assert_eq!(direct.shape(), fused.shape());
        for (x, y) in direct.as_slice().iter().zip(fused.as_slice()) {
            assert!(approx_eq(*x, *y));
        }

        let c = DenseMatrix::from_fn(5, 3, |i, j| (2 * i + j) as f32 * 0.1);
        let direct2 = a.matmul(&c.transpose()).unwrap();
        let fused2 = a.matmul_transpose_other(&c).unwrap();
        for (x, y) in direct2.as_slice().iter().zip(fused2.as_slice()) {
            assert!(approx_eq(*x, *y));
        }
    }

    #[test]
    fn transpose_twice_is_identity() {
        let a = DenseMatrix::from_fn(3, 5, |i, j| (i * 7 + j) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn add_sub_scaled() {
        let mut a = DenseMatrix::filled(2, 2, 1.0);
        let b = DenseMatrix::filled(2, 2, 2.0);
        a.add_assign(&b).unwrap();
        assert!(a.as_slice().iter().all(|&v| v == 3.0));
        a.sub_assign(&b).unwrap();
        assert!(a.as_slice().iter().all(|&v| v == 1.0));
        a.add_scaled(0.5, &b).unwrap();
        assert!(a.as_slice().iter().all(|&v| v == 2.0));
    }

    #[test]
    fn hadamard() {
        let mut a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[2.0, 0.5], &[1.0, 0.25]]).unwrap();
        a.hadamard_assign(&b).unwrap();
        assert_eq!(a.row(0), &[2.0, 1.0]);
        assert_eq!(a.row(1), &[3.0, 1.0]);
    }

    #[test]
    fn linear_combination_matches_manual() {
        let a = DenseMatrix::filled(2, 3, 2.0);
        let b = DenseMatrix::filled(2, 3, 4.0);
        let c = a.linear_combination(0.5, 0.25, &b).unwrap();
        assert!(c.as_slice().iter().all(|&v| approx_eq(v, 2.0)));
    }

    #[test]
    fn hconcat_shapes_and_content() {
        let a = DenseMatrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
        let b = DenseMatrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let c = a.hconcat(&b).unwrap();
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn select_rows_and_bounds() {
        let a = DenseMatrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let s = a.select_rows(&[2, 0]).unwrap();
        assert_eq!(s.row(0), &[3.0, 3.0]);
        assert_eq!(s.row(1), &[1.0, 1.0]);
        assert!(a.select_rows(&[5]).is_err());
    }

    #[test]
    fn argmax_rows_picks_first_max() {
        let a = DenseMatrix::from_rows(&[&[0.1, 0.9, 0.9], &[2.0, 1.0, -1.0]]).unwrap();
        assert_eq!(a.argmax_rows(), vec![1, 0]);
    }

    #[test]
    fn norms_and_distances() {
        let a = DenseMatrix::from_rows(&[&[3.0, 4.0], &[0.0, 0.0]]).unwrap();
        assert!(approx_eq(a.frobenius_norm(), 5.0));
        assert!(approx_eq(a.row_norm(0), 5.0));
        assert!(approx_eq(a.row_distance(0, 1), 5.0));
    }

    #[test]
    fn softmax_rows_sums_to_one() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[-1.0, 0.0, 1.0]]).unwrap();
        let s = a.softmax_rows();
        for i in 0..2 {
            let sum: f32 = s.row(i).iter().sum();
            assert!(approx_eq(sum, 1.0));
            assert!(s.row(i).iter().all(|&v| v > 0.0 && v < 1.0));
        }
        // Softmax is monotone: ordering preserved.
        assert!(s.get(0, 2) > s.get(0, 1) && s.get(0, 1) > s.get(0, 0));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = DenseMatrix::from_rows(&[&[1000.0, 1001.0]]).unwrap();
        let s = a.softmax_rows();
        assert!(s.is_finite());
        assert!(approx_eq(s.row(0).iter().sum::<f32>(), 1.0));
    }

    #[test]
    fn map_and_scale() {
        let mut a = DenseMatrix::filled(2, 2, -2.0);
        let b = a.map(|v| v.abs());
        assert!(b.as_slice().iter().all(|&v| v == 2.0));
        a.scale(0.5);
        assert!(a.as_slice().iter().all(|&v| v == -1.0));
    }

    #[test]
    fn copy_from_requires_same_shape() {
        let mut a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::filled(2, 2, 7.0);
        a.copy_from(&b).unwrap();
        assert_eq!(a, b);
        let c = DenseMatrix::zeros(3, 2);
        assert!(a.copy_from(&c).is_err());
    }

    #[test]
    fn mean_and_sum() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!(approx_eq(a.sum(), 10.0));
        assert!(approx_eq(a.mean(), 2.5));
        assert_eq!(DenseMatrix::zeros(0, 0).mean(), 0.0);
    }
}
