use crate::{CsrView, DenseMatrix, MatrixError, Result};
use sigma_obs::StaticCounter;
use sigma_parallel::{ScratchPool, ThreadPool};

static SPGEMM_CALLS: StaticCounter = StaticCounter::new(
    "sigma_spgemm_calls_total",
    "spgemm (sparse x sparse) invocations",
);

/// Reused Gustavson working set for [`CsrMatrix::spgemm`]: the dense
/// accumulator plus the touched-column list. Site invariant: buffers return
/// to the pool with the accumulator all-zero and the touched list empty, so
/// a taker only ever pays `resize` (never a full re-zeroing) when the
/// output width grows.
static GUSTAVSON_SCRATCH: ScratchPool<(Vec<f32>, Vec<u32>)> = ScratchPool::new();

/// A compressed sparse row (CSR) `f32` matrix.
///
/// In the SIGMA reproduction, `CsrMatrix` represents every *constant
/// propagation operator*: the (normalized) adjacency matrix, the top-k
/// pruned SimRank matrix `S`, and top-k Personalized PageRank matrices.
/// The two kernels that dominate training cost are [`CsrMatrix::spmm`]
/// (`S·H` in the forward pass) and [`CsrMatrix::spmm_transpose`]
/// (`Sᵀ·dZ` in the backward pass); both run in `O(nnz · f)` and are
/// parallelised over disjoint output-row ranges on the shared
/// [`sigma_parallel::ThreadPool`], with results bitwise identical to the
/// serial path for every thread count.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate coordinates are summed. Entries equal to zero are kept out
    /// of the structure. Returns an error if any coordinate is out of bounds.
    pub fn from_triplets(
        rows: usize,
        cols: usize,
        triplets: &[(usize, usize, f32)],
    ) -> Result<Self> {
        for &(r, c, v) in triplets {
            if r >= rows || c >= cols {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: c,
                    shape: (rows, cols),
                });
            }
            if !v.is_finite() {
                return Err(MatrixError::NonFiniteValue {
                    op: "from_triplets",
                });
            }
        }
        // Sort triplet positions by (row, col) so rows are contiguous and
        // duplicates are adjacent.
        let mut order: Vec<usize> = (0..triplets.len()).collect();
        order.sort_unstable_by_key(|&i| (triplets[i].0, triplets[i].1));

        let mut indptr = vec![0usize; rows + 1];
        let mut indices: Vec<u32> = Vec::with_capacity(triplets.len());
        let mut values: Vec<f32> = Vec::with_capacity(triplets.len());
        let mut current_row = 0usize;
        for &idx in &order {
            let (r, c, v) = triplets[idx];
            while current_row < r {
                current_row += 1;
                indptr[current_row] = indices.len();
            }
            // Merge duplicates within the same row.
            if let Some(last) = indices.last() {
                if indptr[current_row] < indices.len()
                    && *last as usize == c
                    && indices.len() > indptr[r]
                {
                    *values.last_mut().expect("values parallel to indices") += v;
                    continue;
                }
            }
            if v != 0.0 {
                indices.push(c as u32);
                values.push(v);
            }
        }
        while current_row < rows {
            current_row += 1;
            indptr[current_row] = indices.len();
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Builds a CSR matrix directly from raw components.
    ///
    /// `indptr` must have length `rows + 1`, be non-decreasing, start at 0 and
    /// end at `indices.len()`; column indices must be `< cols` and sorted
    /// within each row. This is the fast path used by graph/SimRank builders
    /// that already produce CSR layout.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1
            || indptr.first().copied().unwrap_or(1) != 0
            || indptr.last().copied().unwrap_or(0) != indices.len()
            || indices.len() != values.len()
        {
            return Err(MatrixError::InvalidShape {
                rows,
                cols,
                len: indices.len(),
            });
        }
        for w in indptr.windows(2) {
            if w[1] < w[0] {
                return Err(MatrixError::InvalidShape {
                    rows,
                    cols,
                    len: indices.len(),
                });
            }
        }
        for &c in &indices {
            if c as usize >= cols {
                return Err(MatrixError::IndexOutOfBounds {
                    row: 0,
                    col: c as usize,
                    shape: (rows, cols),
                });
            }
        }
        // Column indices must be sorted within each row: the column-range
        // partitioned parallel kernels binary-search row slices.
        for r in 0..rows {
            let row = &indices[indptr[r]..indptr[r + 1]];
            if row.windows(2).any(|w| w[1] < w[0]) {
                return Err(MatrixError::UnsortedRow { row: r });
            }
        }
        Ok(Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// Internal constructor for components whose invariants the caller has
    /// already established (the view/kernel materialisers).
    #[inline]
    pub(crate) fn from_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(indptr.len(), rows + 1);
        debug_assert_eq!(indices.len(), values.len());
        Self {
            rows,
            cols,
            indptr,
            indices,
            values,
        }
    }

    /// A borrowed [`CsrView`] over this matrix's storage.
    ///
    /// The spmm-family methods below delegate to the view kernels, so owned
    /// matrices and memory-mapped snapshot sections run identical code.
    #[inline]
    pub fn view(&self) -> CsrView<'_, usize> {
        CsrView::from_parts_unchecked(
            self.rows,
            self.cols,
            &self.indptr,
            &self.indices,
            &self.values,
        )
    }

    /// Identity operator of size `n`.
    pub fn identity(n: usize) -> Self {
        Self {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n as u32).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (structurally non-zero) entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Raw row pointer array (length `rows + 1`).
    #[inline]
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Raw column index array.
    #[inline]
    pub fn indices(&self) -> &[u32] {
        &self.indices
    }

    /// Raw value array.
    #[inline]
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Iterator over `(col, value)` pairs of one row.
    pub fn row_iter(&self, row: usize) -> impl Iterator<Item = (usize, f32)> + '_ {
        let start = self.indptr[row];
        let end = self.indptr[row + 1];
        self.indices[start..end]
            .iter()
            .zip(self.values[start..end].iter())
            .map(|(&c, &v)| (c as usize, v))
    }

    /// Number of stored entries in one row.
    pub fn row_nnz(&self, row: usize) -> usize {
        self.indptr[row + 1] - self.indptr[row]
    }

    /// Value at `(row, col)`, or 0.0 if not stored.
    pub fn get(&self, row: usize, col: usize) -> f32 {
        if row >= self.rows || col >= self.cols {
            return 0.0;
        }
        self.row_iter(row)
            .find(|&(c, _)| c == col)
            .map(|(_, v)| v)
            .unwrap_or(0.0)
    }

    /// Sum of each row's values.
    pub fn row_sums(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| self.row_iter(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Scales every row `r` by `factors[r]` in place.
    pub fn scale_rows(&mut self, factors: &[f32]) -> Result<()> {
        if factors.len() != self.rows {
            return Err(MatrixError::InvalidShape {
                rows: self.rows,
                cols: 1,
                len: factors.len(),
            });
        }
        for (r, &factor) in factors.iter().enumerate() {
            let (start, end) = (self.indptr[r], self.indptr[r + 1]);
            for v in &mut self.values[start..end] {
                *v *= factor;
            }
        }
        Ok(())
    }

    /// Multiplies all stored values by `s`.
    pub fn scale(&mut self, s: f32) {
        self.values.iter_mut().for_each(|v| *v *= s);
    }

    /// Sparse × dense product: `self · rhs`.
    ///
    /// Parallelised over disjoint output-row blocks on the shared pool,
    /// with the blocks cut to near-equal total **nnz** (the `indptr` prefix
    /// sums feed [`sigma_parallel::partition_by_prefix`]) so power-law row
    /// distributions spread evenly across threads. Each output row is
    /// produced by exactly one thread with the serial accumulation order
    /// (an 8-lane [`kernels::axpy`] per stored entry — element-wise, hence
    /// bit-exact), so the result is bitwise identical to the serial path at
    /// every thread count.
    pub fn spmm(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.view().spmm(rhs.view())
    }

    /// Transposed sparse × dense product: `selfᵀ · rhs`.
    ///
    /// The serial path is a scatter over rows of `self`, avoiding an
    /// explicit transpose; used for backpropagation through constant
    /// operators. The parallel path partitions the *output* rows (columns of
    /// `self`) instead — cut to near-equal total column nnz by the weighted
    /// planner: each thread scans every input row and binary-searches the
    /// window of entries landing in its column range, so writes stay
    /// disjoint. For a fixed output row both paths accumulate contributions
    /// in the same `(input row, entry)` order, making the result bitwise
    /// identical to the serial scatter at every thread count.
    pub fn spmm_transpose(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.view().spmm_transpose(rhs.view())
    }

    /// Sparse × sparse product `self · rhs`, returned as CSR.
    ///
    /// Used to form multi-hop operators such as `Â²` (H2GCN / MixHop) and
    /// `S·A` (the localized SIGMA ablation of Table VIII). Output rows are
    /// independent (classic Gustavson algorithm), so row ranges run in
    /// parallel with per-range buffers concatenated in range order — the
    /// assembled matrix is identical to the serial result.
    pub fn spgemm(&self, rhs: &CsrMatrix) -> Result<CsrMatrix> {
        if self.cols != rhs.rows {
            return Err(MatrixError::DimensionMismatch {
                op: "spgemm",
                lhs: self.shape(),
                rhs: rhs.shape(),
            });
        }
        SPGEMM_CALLS.inc();
        let _span = sigma_obs::span!("spgemm", self.nnz().saturating_add(rhs.nnz()));
        let pool = ThreadPool::global();
        // Dispatch estimate: nnz(self) + nnz(rhs) is a cheap stand-in for the
        // true flop count and only gates *whether* to parallelise.
        let parts = if pool.should_parallelize(self.nnz().saturating_add(rhs.nnz())) {
            // Range planning uses the exact per-row cost, flops(r) =
            // Σ_{k ∈ row r} nnz(rhs row k) — one O(nnz(self)) pass — so one
            // dense output row cannot serialise a whole thread.
            let flops: Vec<usize> = (0..self.rows)
                .map(|r| {
                    self.row_iter(r)
                        .map(|(k, _)| rhs.row_nnz(k))
                        .fold(0usize, usize::saturating_add)
                })
                .collect();
            pool.par_map_ranges_weighted(&flops, |range| self.spgemm_rows(rhs, range))
        } else {
            vec![self.spgemm_rows(rhs, 0..self.rows)]
        };
        let (indptr, indices, values) = concat_row_parts(self.rows, parts);
        Ok(CsrMatrix {
            rows: self.rows,
            cols: rhs.cols,
            indptr,
            indices,
            values,
        })
    }

    /// Gustavson sparse × sparse over one output-row range; returns the
    /// range's cumulative per-row nnz plus its indices/values, concatenated
    /// by [`CsrMatrix::spgemm`] in range order.
    fn spgemm_rows(
        &self,
        rhs: &CsrMatrix,
        range: std::ops::Range<usize>,
    ) -> (Vec<usize>, Vec<u32>, Vec<f32>) {
        let mut row_nnz = Vec::with_capacity(range.len());
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        // Dense accumulator reused across rows (classic Gustavson algorithm)
        // *and* across calls: the scratch pool hands back a buffer that a
        // previous range left all-zero, so only width growth pays a resize.
        let mut scratch = GUSTAVSON_SCRATCH.take_or_else(|| (Vec::new(), Vec::new()));
        let (acc, touched) = &mut *scratch;
        if acc.len() < rhs.cols {
            acc.resize(rhs.cols, 0.0);
        }
        debug_assert!(acc.iter().all(|&v| v == 0.0), "pooled accumulator dirty");
        debug_assert!(touched.is_empty(), "pooled touch list dirty");
        for r in range {
            touched.clear();
            for (k, v) in self.row_iter(r) {
                let (start, end) = (rhs.indptr[k], rhs.indptr[k + 1]);
                for idx in start..end {
                    let c = rhs.indices[idx];
                    if acc[c as usize] == 0.0 {
                        touched.push(c);
                    }
                    acc[c as usize] += v * rhs.values[idx];
                }
            }
            touched.sort_unstable();
            for &c in touched.iter() {
                let v = acc[c as usize];
                if v != 0.0 {
                    indices.push(c);
                    values.push(v);
                }
                acc[c as usize] = 0.0;
            }
            row_nnz.push(indices.len());
        }
        // Pool invariant: the per-row cleanup above left `acc` all-zero;
        // clear the touch list so the next taker starts clean.
        touched.clear();
        (row_nnz, indices, values)
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.indices {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let mut indptr = counts.clone();
        let mut indices = vec![0u32; self.nnz()];
        let mut values = vec![0.0f32; self.nnz()];
        for r in 0..self.rows {
            for idx in self.indptr[r]..self.indptr[r + 1] {
                let c = self.indices[idx] as usize;
                let pos = indptr[c];
                indices[pos] = r as u32;
                values[pos] = self.values[idx];
                indptr[c] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr: counts,
            indices,
            values,
        }
    }

    /// Keeps only the `k` largest-magnitude entries of each row.
    ///
    /// This is the top-k pruning scheme SIGMA applies to the approximate
    /// SimRank matrix to obtain an `O(kn)` aggregation operator. Ties at the
    /// `k` boundary break towards the smaller column index, so the selection
    /// is a pure function of the row's contents (never of iteration or
    /// scheduling order). Rows are materialised in parallel over disjoint
    /// row ranges on the shared [`sigma_parallel::ThreadPool`] and
    /// concatenated in range order, bitwise identical to the serial pass.
    pub fn top_k_per_row(&self, k: usize) -> CsrMatrix {
        let pool = ThreadPool::global();
        let parts = if pool.should_parallelize(self.nnz()) {
            // Per-row cost is the row's nnz (the sort dominates); `indptr`
            // is exactly the prefix sum the nnz-balanced planner wants.
            pool.par_map_ranges_by_prefix(&self.indptr, |range| self.top_k_rows(k, range))
        } else {
            vec![self.top_k_rows(k, 0..self.rows)]
        };
        let (indptr, indices, values) = concat_row_parts(self.rows, parts);
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        }
    }

    /// Top-k selection over one row range; returns the range's cumulative
    /// per-row nnz plus its indices/values, concatenated by
    /// [`CsrMatrix::top_k_per_row`] in range order.
    fn top_k_rows(
        &self,
        k: usize,
        range: std::ops::Range<usize>,
    ) -> (Vec<usize>, Vec<u32>, Vec<f32>) {
        let mut row_nnz = Vec::with_capacity(range.len());
        let mut indices: Vec<u32> = Vec::new();
        let mut values: Vec<f32> = Vec::new();
        let mut row_buf: Vec<(u32, f32)> = Vec::new();
        for r in range {
            row_buf.clear();
            row_buf.extend(self.row_iter(r).map(|(c, v)| (c as u32, v)));
            if row_buf.len() > k {
                // Canonical order: |value| descending, column ascending on
                // ties. `row_iter` yields sorted columns, so the sort input
                // (and with the total ordering, the output) is deterministic.
                row_buf.sort_unstable_by(|a, b| {
                    b.1.abs()
                        .partial_cmp(&a.1.abs())
                        .unwrap_or(std::cmp::Ordering::Equal)
                        .then(a.0.cmp(&b.0))
                });
                row_buf.truncate(k);
            }
            row_buf.sort_unstable_by_key(|&(c, _)| c);
            for &(c, v) in &row_buf {
                indices.push(c);
                values.push(v);
            }
            row_nnz.push(indices.len());
        }
        (row_nnz, indices, values)
    }

    /// Returns a copy of `self` with the listed rows replaced by the rows of
    /// `replacement` (its `i`-th row becomes row `rows[i]`).
    ///
    /// `rows` must be strictly ascending (sorted, duplicate-free) and in
    /// bounds; `replacement` must have exactly `rows.len()` rows and the
    /// same column count. The splice is a single `O(nnz)` pass.
    ///
    /// This is the operator-patching primitive behind incremental repair:
    /// after an edge edit perturbs a handful of SimRank rows, only those
    /// rows of the top-k aggregation operator are re-materialised and
    /// spliced in, instead of rebuilding the whole matrix.
    pub fn replace_rows(&self, rows: &[usize], replacement: &CsrMatrix) -> Result<CsrMatrix> {
        if replacement.rows != rows.len() || replacement.cols != self.cols {
            return Err(MatrixError::DimensionMismatch {
                op: "replace_rows",
                lhs: self.shape(),
                rhs: replacement.shape(),
            });
        }
        if rows.windows(2).any(|w| w[1] <= w[0]) {
            return Err(MatrixError::UnsortedSelection { op: "replace_rows" });
        }
        if let Some(&last) = rows.last() {
            if last >= self.rows {
                return Err(MatrixError::IndexOutOfBounds {
                    row: last,
                    col: 0,
                    shape: self.shape(),
                });
            }
        }
        let replaced_nnz: usize = rows.iter().map(|&r| self.row_nnz(r)).sum();
        let new_nnz = self.nnz() - replaced_nnz + replacement.nnz();
        let mut indptr = Vec::with_capacity(self.rows + 1);
        indptr.push(0usize);
        let mut indices: Vec<u32> = Vec::with_capacity(new_nnz);
        let mut values: Vec<f32> = Vec::with_capacity(new_nnz);
        let mut next = rows.iter().copied().zip(0..rows.len()).peekable();
        for r in 0..self.rows {
            let (src, start, end) = match next.peek() {
                Some(&(patch_row, i)) if patch_row == r => {
                    next.next();
                    (
                        replacement,
                        replacement.indptr[i],
                        replacement.indptr[i + 1],
                    )
                }
                _ => (self, self.indptr[r], self.indptr[r + 1]),
            };
            indices.extend_from_slice(&src.indices[start..end]);
            values.extend_from_slice(&src.values[start..end]);
            indptr.push(indices.len());
        }
        Ok(CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            indptr,
            indices,
            values,
        })
    }

    /// Normalizes every row to sum to one (rows with zero sum are left empty).
    pub fn row_normalize(&mut self) {
        for r in 0..self.rows {
            let (start, end) = (self.indptr[r], self.indptr[r + 1]);
            let sum: f32 = self.values[start..end].iter().sum();
            if sum != 0.0 {
                for v in &mut self.values[start..end] {
                    *v /= sum;
                }
            }
        }
    }

    /// Extracts the given rows (in order, duplicates allowed) as a new
    /// `rows.len() × cols` CSR matrix.
    ///
    /// This is the operator-slicing primitive behind online inference: a
    /// query batch of `b` nodes only needs the `b` corresponding rows of the
    /// top-k aggregation operator, so the slice costs `O(b·k)` instead of
    /// touching all `n` rows.
    pub fn gather_rows(&self, rows: &[usize]) -> Result<CsrMatrix> {
        let mut indptr = Vec::with_capacity(rows.len() + 1);
        indptr.push(0usize);
        let nnz_estimate: usize = rows
            .iter()
            .map(|&r| if r < self.rows { self.row_nnz(r) } else { 0 })
            .sum();
        let mut indices: Vec<u32> = Vec::with_capacity(nnz_estimate);
        let mut values: Vec<f32> = Vec::with_capacity(nnz_estimate);
        for &r in rows {
            if r >= self.rows {
                return Err(MatrixError::IndexOutOfBounds {
                    row: r,
                    col: 0,
                    shape: self.shape(),
                });
            }
            let (start, end) = (self.indptr[r], self.indptr[r + 1]);
            indices.extend_from_slice(&self.indices[start..end]);
            values.extend_from_slice(&self.values[start..end]);
            indptr.push(indices.len());
        }
        Ok(CsrMatrix {
            rows: rows.len(),
            cols: self.cols,
            indptr,
            indices,
            values,
        })
    }

    /// Row-sliced sparse × dense product: `self[rows, :] · rhs`.
    ///
    /// Returns a `rows.len() × rhs.cols()` dense matrix whose `i`-th row is
    /// `Σ_j self[rows[i], j] · rhs[j, :]`. Equivalent to
    /// `gather_rows(rows)?.spmm(rhs)` but without materialising the slice;
    /// for a batch of `b` rows of a top-k operator this is `O(b·k·f)` versus
    /// the `O(n·k·f)` of a full [`CsrMatrix::spmm`].
    pub fn spmm_rows(&self, rows: &[usize], rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.view().spmm_rows(rows, rhs.view())
    }

    /// Converts to a dense matrix. Intended for tests and small graphs only.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for r in 0..self.rows {
            for (c, v) in self.row_iter(r) {
                out.set(r, c, out.get(r, c) + v);
            }
        }
        out
    }

    /// Converts a dense matrix to CSR, dropping entries with `|v| <= threshold`.
    pub fn from_dense(dense: &DenseMatrix, threshold: f32) -> CsrMatrix {
        let mut indptr = Vec::with_capacity(dense.rows() + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for r in 0..dense.rows() {
            for (c, &v) in dense.row(r).iter().enumerate() {
                if v.abs() > threshold {
                    indices.push(c as u32);
                    values.push(v);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix {
            rows: dense.rows(),
            cols: dense.cols(),
            indptr,
            indices,
            values,
        }
    }

    /// Frobenius norm of the stored values.
    pub fn frobenius_norm(&self) -> f32 {
        self.values.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Average number of stored entries per row.
    pub fn avg_row_nnz(&self) -> f32 {
        if self.rows == 0 {
            0.0
        } else {
            self.nnz() as f32 / self.rows as f32
        }
    }
}

/// Concatenates per-row-range CSR fragments — `(cumulative per-row nnz,
/// indices, values)` triples in range order, as produced by the row-range
/// materialisers — into one `(indptr, indices, values)` set.
///
/// A single part (the serial path, or a one-range plan) is **moved**, not
/// copied: the hot serial paths of `spgemm` / `top_k_per_row` /
/// `SparseScores::to_csr` pay no assembly memcpy at all. Multi-part
/// assembly reserves the exact total and appends in range order, so the
/// result is identical to the serial construction for any partition.
pub fn concat_row_parts(
    rows: usize,
    parts: Vec<(Vec<usize>, Vec<u32>, Vec<f32>)>,
) -> (Vec<usize>, Vec<u32>, Vec<f32>) {
    if parts.len() == 1 {
        let (row_nnz, indices, values) = parts.into_iter().next().expect("one part");
        debug_assert_eq!(row_nnz.len(), rows, "one cumulative count per row");
        let mut indptr = Vec::with_capacity(rows + 1);
        indptr.push(0usize);
        indptr.extend(row_nnz);
        return (indptr, indices, values);
    }
    let total_nnz: usize = parts.iter().map(|(_, idx, _)| idx.len()).sum();
    let mut indptr = Vec::with_capacity(rows + 1);
    indptr.push(0usize);
    let mut indices: Vec<u32> = Vec::with_capacity(total_nnz);
    let mut values: Vec<f32> = Vec::with_capacity(total_nnz);
    for (row_nnz, part_indices, part_values) in parts {
        let base = indices.len();
        for nnz in row_nnz {
            indptr.push(base + nnz);
        }
        indices.extend_from_slice(&part_indices);
        values.extend_from_slice(&part_values);
    }
    (indptr, indices, values)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [[0, 2, 0],
        //  [1, 0, 3],
        //  [0, 0, 0]]
        CsrMatrix::from_triplets(3, 3, &[(0, 1, 2.0), (1, 0, 1.0), (1, 2, 3.0)]).unwrap()
    }

    #[test]
    fn from_triplets_basic() {
        let m = sample();
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 1.0);
        assert_eq!(m.get(1, 2), 3.0);
        assert_eq!(m.get(2, 2), 0.0);
        assert_eq!(m.row_nnz(0), 1);
        assert_eq!(m.row_nnz(2), 0);
    }

    #[test]
    fn from_triplets_sums_duplicates() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5)]).unwrap();
        assert_eq!(m.nnz(), 1);
        assert_eq!(m.get(0, 0), 3.5);
    }

    #[test]
    fn from_triplets_rejects_out_of_bounds_and_nan() {
        assert!(CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]).is_err());
        assert!(CsrMatrix::from_triplets(2, 2, &[(0, 0, f32::NAN)]).is_err());
    }

    #[test]
    fn from_raw_validates() {
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 1], vec![1.0, 1.0]).is_ok());
        // wrong indptr length
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2], vec![0, 1], vec![1.0, 1.0]).is_err());
        // decreasing indptr
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 2, 1], vec![0, 1], vec![1.0, 1.0]).is_err());
        // column out of range
        assert!(CsrMatrix::from_raw(2, 2, vec![0, 1, 2], vec![0, 5], vec![1.0, 1.0]).is_err());
    }

    #[test]
    fn identity_spmm_is_noop() {
        let i = CsrMatrix::identity(3);
        let x = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32);
        let y = i.spmm(&x).unwrap();
        assert_eq!(y, x);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let m = sample();
        let x = DenseMatrix::from_fn(3, 2, |r, c| (r + c) as f32 + 0.5);
        let sparse = m.spmm(&x).unwrap();
        let dense = m.to_dense().matmul(&x).unwrap();
        for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn spmm_transpose_matches_dense() {
        let m = sample();
        let x = DenseMatrix::from_fn(3, 2, |r, c| (2 * r + c) as f32);
        let sparse = m.spmm_transpose(&x).unwrap();
        let dense = m.to_dense().transpose().matmul(&x).unwrap();
        for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn spmm_dimension_mismatch() {
        let m = sample();
        let x = DenseMatrix::zeros(4, 2);
        assert!(m.spmm(&x).is_err());
        assert!(m.spmm_transpose(&x).is_err());
    }

    #[test]
    fn spgemm_matches_dense() {
        let a = sample();
        let b = CsrMatrix::from_triplets(3, 2, &[(0, 0, 1.0), (1, 1, 2.0), (2, 0, -1.0)]).unwrap();
        let c = a.spgemm(&b).unwrap();
        let dense = a.to_dense().matmul(&b.to_dense()).unwrap();
        for r in 0..3 {
            for col in 0..2 {
                assert!((c.get(r, col) - dense.get(r, col)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn spgemm_identity_operand_is_noop() {
        let m = sample();
        let i = CsrMatrix::identity(3);
        // Identity on either side reproduces the operand exactly.
        assert_eq!(i.spgemm(&m).unwrap(), m);
        assert_eq!(m.spgemm(&i).unwrap(), m);
    }

    #[test]
    fn spgemm_with_empty_matrices() {
        let m = sample();
        // A structurally empty operand annihilates the product but keeps shape.
        let zero = CsrMatrix::from_triplets(3, 3, &[]).unwrap();
        let left = zero.spgemm(&m).unwrap();
        assert_eq!(left.shape(), (3, 3));
        assert_eq!(left.nnz(), 0);
        let right = m.spgemm(&zero).unwrap();
        assert_eq!(right.shape(), (3, 3));
        assert_eq!(right.nnz(), 0);
        // Degenerate zero-dimension products: (0×3)·(3×3) and (3×3)·(3×0).
        let nil_rows = CsrMatrix::from_triplets(0, 3, &[]).unwrap();
        assert_eq!(nil_rows.spgemm(&m).unwrap().shape(), (0, 3));
        let nil_cols = CsrMatrix::from_triplets(3, 0, &[]).unwrap();
        assert_eq!(m.spgemm(&nil_cols).unwrap().shape(), (3, 0));
    }

    #[test]
    fn spgemm_dimension_mismatch_is_rejected() {
        let m = sample(); // 3 × 3
        let wide = CsrMatrix::from_triplets(4, 2, &[(0, 0, 1.0)]).unwrap();
        assert!(matches!(
            m.spgemm(&wide),
            Err(MatrixError::DimensionMismatch { op: "spgemm", .. })
        ));
    }

    #[test]
    fn spgemm_cancellation_drops_exact_zeros() {
        // Row 0 contributes +1·1 and −1·1 to output column 0: the exact
        // cancellation must be pruned from the structure, matching the
        // serial Gustavson behaviour.
        let a = CsrMatrix::from_triplets(1, 2, &[(0, 0, 1.0), (0, 1, -1.0)]).unwrap();
        let b = CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, 1.0)]).unwrap();
        let c = a.spgemm(&b).unwrap();
        assert_eq!(c.shape(), (1, 1));
        assert_eq!(c.nnz(), 0);
    }

    #[test]
    fn from_raw_rejects_unsorted_rows() {
        // Sorted-within-row is a structural invariant the column-partitioned
        // parallel kernels rely on; the error names the offending row.
        assert!(matches!(
            CsrMatrix::from_raw(1, 3, vec![0, 2], vec![2, 0], vec![1.0, 1.0]),
            Err(MatrixError::UnsortedRow { row: 0 })
        ));
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 1.0]).is_ok());
        // Duplicate (equal) columns within a row remain legal.
        assert!(CsrMatrix::from_raw(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 1.0]).is_ok());
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(t.get(1, 0), 2.0);
        assert_eq!(t.get(0, 1), 1.0);
        assert_eq!(t.get(2, 1), 3.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn top_k_keeps_largest_magnitude() {
        let m = CsrMatrix::from_triplets(
            1,
            5,
            &[
                (0, 0, 0.1),
                (0, 1, -0.9),
                (0, 2, 0.5),
                (0, 3, 0.2),
                (0, 4, 0.05),
            ],
        )
        .unwrap();
        let pruned = m.top_k_per_row(2);
        assert_eq!(pruned.nnz(), 2);
        assert_eq!(pruned.get(0, 1), -0.9);
        assert_eq!(pruned.get(0, 2), 0.5);
        assert_eq!(pruned.get(0, 0), 0.0);
    }

    #[test]
    fn top_k_larger_than_row_is_noop() {
        let m = sample();
        assert_eq!(m.top_k_per_row(10), m);
    }

    #[test]
    fn row_normalize_sums_to_one() {
        let mut m = sample();
        m.row_normalize();
        let sums = m.row_sums();
        assert!((sums[0] - 1.0).abs() < 1e-6);
        assert!((sums[1] - 1.0).abs() < 1e-6);
        assert_eq!(sums[2], 0.0);
    }

    #[test]
    fn scale_rows_and_scale() {
        let mut m = sample();
        m.scale_rows(&[2.0, 0.5, 1.0]).unwrap();
        assert_eq!(m.get(0, 1), 4.0);
        assert_eq!(m.get(1, 2), 1.5);
        m.scale(2.0);
        assert_eq!(m.get(0, 1), 8.0);
        assert!(m.scale_rows(&[1.0]).is_err());
    }

    #[test]
    fn dense_round_trip() {
        let m = sample();
        let d = m.to_dense();
        let back = CsrMatrix::from_dense(&d, 0.0);
        assert_eq!(back, m);
    }

    #[test]
    fn from_dense_threshold_drops_small() {
        let d = DenseMatrix::from_rows(&[&[0.001, 1.0], &[0.0, -0.002]]).unwrap();
        let s = CsrMatrix::from_dense(&d, 0.01);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.get(0, 1), 1.0);
    }

    #[test]
    fn gather_rows_selects_and_reorders() {
        let m = sample();
        let g = m.gather_rows(&[1, 1, 0]).unwrap();
        assert_eq!(g.shape(), (3, 3));
        assert_eq!(g.nnz(), 5);
        assert_eq!(g.get(0, 0), 1.0);
        assert_eq!(g.get(0, 2), 3.0);
        assert_eq!(g.get(1, 2), 3.0);
        assert_eq!(g.get(2, 1), 2.0);
        // Empty selection produces a 0 × cols matrix.
        let empty = m.gather_rows(&[]).unwrap();
        assert_eq!(empty.shape(), (0, 3));
        assert_eq!(empty.nnz(), 0);
        // Out-of-bounds rows are rejected.
        assert!(m.gather_rows(&[3]).is_err());
    }

    #[test]
    fn spmm_rows_matches_full_spmm() {
        let m = sample();
        let x = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.25 - 1.0);
        let full = m.spmm(&x).unwrap();
        let rows = [2usize, 0, 1, 0];
        let sliced = m.spmm_rows(&rows, &x).unwrap();
        assert_eq!(sliced.shape(), (4, 4));
        for (dst, &src) in rows.iter().enumerate() {
            assert_eq!(sliced.row(dst), full.row(src));
        }
        // Agreement with the gather-then-spmm formulation.
        let via_gather = m.gather_rows(&rows).unwrap().spmm(&x).unwrap();
        assert_eq!(sliced, via_gather);
    }

    #[test]
    fn spmm_rows_validates_shapes_and_bounds() {
        let m = sample();
        assert!(m.spmm_rows(&[0], &DenseMatrix::zeros(4, 2)).is_err());
        assert!(m.spmm_rows(&[9], &DenseMatrix::zeros(3, 2)).is_err());
        let empty = m.spmm_rows(&[], &DenseMatrix::zeros(3, 2)).unwrap();
        assert_eq!(empty.shape(), (0, 2));
    }

    #[test]
    fn top_k_zero_empties_every_row() {
        let m = sample();
        let pruned = m.top_k_per_row(0);
        assert_eq!(pruned.shape(), m.shape());
        assert_eq!(pruned.nnz(), 0);
        for r in 0..3 {
            assert_eq!(pruned.row_nnz(r), 0);
        }
    }

    #[test]
    fn top_k_on_empty_rows_and_empty_matrix() {
        // Row 2 of the sample is structurally empty and must stay empty.
        let m = sample();
        let pruned = m.top_k_per_row(1);
        assert_eq!(pruned.row_nnz(2), 0);
        assert_eq!(pruned.row_nnz(0), 1);
        // A matrix with no stored entries at all survives pruning.
        let zero = CsrMatrix::from_triplets(3, 3, &[]).unwrap();
        assert_eq!(zero.top_k_per_row(2), zero);
        // Degenerate 0 × 0 matrix.
        let nil = CsrMatrix::from_triplets(0, 0, &[]).unwrap();
        assert_eq!(nil.top_k_per_row(3).shape(), (0, 0));
    }

    #[test]
    fn top_k_at_exact_row_nnz_is_identity() {
        let m = sample();
        // Row 1 holds exactly two entries; k = 2 must keep both.
        let pruned = m.top_k_per_row(2);
        assert_eq!(pruned, m);
    }

    #[test]
    fn row_normalize_handles_zero_and_cancelling_rows() {
        // Row 0 sums to zero by cancellation, row 1 is structurally empty.
        let mut m =
            CsrMatrix::from_triplets(3, 3, &[(0, 0, 2.0), (0, 1, -2.0), (2, 2, 4.0)]).unwrap();
        m.row_normalize();
        // Cancelling rows are left untouched (no division by zero, no NaN).
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(0, 1), -2.0);
        assert_eq!(m.row_nnz(1), 0);
        assert_eq!(m.get(2, 2), 1.0);
        assert!(m.values().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn row_normalize_on_all_zero_matrix_is_noop() {
        let mut zero = CsrMatrix::from_triplets(2, 2, &[]).unwrap();
        let before = zero.clone();
        zero.row_normalize();
        assert_eq!(zero, before);
    }

    #[test]
    fn replace_rows_splices_patch_rows() {
        let m = sample();
        // Replace rows 0 and 2 of the sample with new contents.
        let patch =
            CsrMatrix::from_triplets(2, 3, &[(0, 0, 5.0), (0, 2, 6.0), (1, 1, -1.0)]).unwrap();
        let patched = m.replace_rows(&[0, 2], &patch).unwrap();
        assert_eq!(patched.shape(), (3, 3));
        assert_eq!(patched.get(0, 0), 5.0);
        assert_eq!(patched.get(0, 2), 6.0);
        assert_eq!(patched.get(0, 1), 0.0);
        // Untouched row 1 is carried over verbatim.
        assert_eq!(patched.get(1, 0), 1.0);
        assert_eq!(patched.get(1, 2), 3.0);
        assert_eq!(patched.get(2, 1), -1.0);
        assert_eq!(patched.nnz(), 5);
    }

    #[test]
    fn replace_rows_with_empty_selection_is_identity() {
        let m = sample();
        let empty = CsrMatrix::from_triplets(0, 3, &[]).unwrap();
        assert_eq!(m.replace_rows(&[], &empty).unwrap(), m);
    }

    #[test]
    fn replace_rows_can_empty_and_widen_rows() {
        let m = sample();
        // Row 1 (two entries) becomes empty; row 2 (empty) gains three.
        let patch =
            CsrMatrix::from_triplets(2, 3, &[(1, 0, 1.0), (1, 1, 2.0), (1, 2, 3.0)]).unwrap();
        let patched = m.replace_rows(&[1, 2], &patch).unwrap();
        assert_eq!(patched.row_nnz(1), 0);
        assert_eq!(patched.row_nnz(2), 3);
        assert_eq!(patched.get(2, 1), 2.0);
        assert_eq!(patched.get(0, 1), 2.0);
    }

    #[test]
    fn replace_rows_validates_inputs() {
        let m = sample();
        let patch = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]).unwrap();
        // Selection length must match the patch row count.
        assert!(matches!(
            m.replace_rows(&[0], &patch),
            Err(MatrixError::DimensionMismatch {
                op: "replace_rows",
                ..
            })
        ));
        // Column count must match.
        let narrow = CsrMatrix::from_triplets(2, 2, &[]).unwrap();
        assert!(m.replace_rows(&[0, 1], &narrow).is_err());
        // Selection must be strictly ascending.
        assert!(matches!(
            m.replace_rows(&[1, 0], &patch),
            Err(MatrixError::UnsortedSelection { .. })
        ));
        assert!(matches!(
            m.replace_rows(&[1, 1], &patch),
            Err(MatrixError::UnsortedSelection { .. })
        ));
        // Selection must be in bounds.
        assert!(matches!(
            m.replace_rows(&[0, 3], &patch),
            Err(MatrixError::IndexOutOfBounds { row: 3, .. })
        ));
    }

    #[test]
    fn replace_rows_round_trips_through_gather() {
        // Splicing a gathered slice back in reproduces the original matrix.
        let m = sample();
        let rows = [0usize, 2];
        let slice = m.gather_rows(&rows).unwrap();
        assert_eq!(m.replace_rows(&rows, &slice).unwrap(), m);
    }

    #[test]
    fn top_k_tie_break_prefers_smaller_columns() {
        // Three equal-magnitude entries, k = 2: the canonical order keeps
        // the two smallest column indices regardless of traversal order.
        let m = CsrMatrix::from_triplets(1, 4, &[(0, 0, 0.5), (0, 1, -0.5), (0, 3, 0.5)]).unwrap();
        let pruned = m.top_k_per_row(2);
        assert_eq!(pruned.nnz(), 2);
        assert_eq!(pruned.get(0, 0), 0.5);
        assert_eq!(pruned.get(0, 1), -0.5);
        assert_eq!(pruned.get(0, 3), 0.0);
    }

    #[test]
    fn stats_helpers() {
        let m = sample();
        assert!((m.frobenius_norm() - (4.0f32 + 1.0 + 9.0).sqrt()).abs() < 1e-6);
        assert!((m.avg_row_nnz() - 1.0).abs() < 1e-6);
        assert_eq!(CsrMatrix::identity(0).avg_row_nnz(), 0.0);
    }
}
