//! # sigma-matrix
//!
//! Dense and sparse (CSR) linear-algebra substrate for the SIGMA reproduction.
//!
//! The SIGMA paper's computations decompose into a small set of kernels:
//!
//! * dense GEMM for MLP layers (`H = X·W`),
//! * sparse-dense SpMM for propagation operators (`Z = S·H`, `Â·H`, `Π_ppr·H`),
//! * transposed SpMM for backpropagation through constant operators (`dH = Sᵀ·dZ`),
//! * element-wise maps and reductions for activations, losses and metrics.
//!
//! This crate implements exactly those kernels on two container types,
//! [`DenseMatrix`] (row-major `f32`) and [`CsrMatrix`] (compressed sparse row),
//! with no external BLAS dependency. Downstream crates (`sigma-graph`,
//! `sigma-nn`, `sigma-simrank`, `sigma`) build every model and experiment on
//! top of these types.
//!
//! ## Example
//!
//! ```
//! use sigma_matrix::{DenseMatrix, CsrMatrix};
//!
//! // A 2x3 dense matrix and a sparse 2x2 adjacency-like operator.
//! let h = DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
//! let s = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]).unwrap();
//! let z = s.spmm(&h).unwrap();
//! assert_eq!(z.row(0), &[4.0, 5.0, 6.0]);
//! assert_eq!(z.row(1), &[1.0, 2.0, 3.0]);
//! ```

#![deny(missing_docs)]

mod csr;
mod dense;
mod error;
pub mod kernels;
mod view;

pub use csr::{concat_row_parts, CsrMatrix};
pub use dense::DenseMatrix;
pub use error::MatrixError;
pub use view::{CsrView, CsrViewAny, DenseView};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MatrixError>;
