use std::fmt;

/// Errors produced by matrix constructors and kernels.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatrixError {
    /// Two operands had incompatible shapes for the requested operation.
    DimensionMismatch {
        /// Human-readable name of the operation that failed.
        op: &'static str,
        /// Shape of the left operand as `(rows, cols)`.
        lhs: (usize, usize),
        /// Shape of the right operand as `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// A constructor received data whose length does not match `rows * cols`.
    InvalidShape {
        /// Requested number of rows.
        rows: usize,
        /// Requested number of columns.
        cols: usize,
        /// Length of the provided buffer.
        len: usize,
    },
    /// A sparse-matrix triplet referenced a row or column outside the matrix.
    IndexOutOfBounds {
        /// Offending row index.
        row: usize,
        /// Offending column index.
        col: usize,
        /// Matrix shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// A non-finite (NaN or infinite) value was encountered where finite data is required.
    NonFiniteValue {
        /// Name of the operation that detected the value.
        op: &'static str,
    },
    /// A CSR constructor received a row whose column indices are not sorted
    /// ascending — a structural invariant the column-range partitioned
    /// parallel kernels rely on.
    UnsortedRow {
        /// Index of the first offending row.
        row: usize,
    },
    /// A row-selection argument must be sorted strictly ascending (sorted
    /// and duplicate-free) but was not.
    UnsortedSelection {
        /// Name of the operation that rejected the selection.
        op: &'static str,
    },
}

impl fmt::Display for MatrixError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MatrixError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            MatrixError::InvalidShape { rows, cols, len } => write!(
                f,
                "invalid shape: {rows}x{cols} requires {} elements but buffer has {len}",
                rows * cols
            ),
            MatrixError::IndexOutOfBounds { row, col, shape } => write!(
                f,
                "index ({row}, {col}) out of bounds for {}x{} matrix",
                shape.0, shape.1
            ),
            MatrixError::NonFiniteValue { op } => {
                write!(f, "non-finite value encountered in {op}")
            }
            MatrixError::UnsortedRow { row } => write!(
                f,
                "row {row} has unsorted column indices (CSR rows must be sorted ascending)"
            ),
            MatrixError::UnsortedSelection { op } => write!(
                f,
                "{op} requires a strictly ascending (sorted, duplicate-free) row selection"
            ),
        }
    }
}

impl std::error::Error for MatrixError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_dimension_mismatch() {
        let e = MatrixError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let s = e.to_string();
        assert!(s.contains("matmul"));
        assert!(s.contains("2x3"));
        assert!(s.contains("4x5"));
    }

    #[test]
    fn display_invalid_shape() {
        let e = MatrixError::InvalidShape {
            rows: 2,
            cols: 2,
            len: 3,
        };
        assert!(e.to_string().contains("4 elements"));
    }

    #[test]
    fn display_index_out_of_bounds() {
        let e = MatrixError::IndexOutOfBounds {
            row: 7,
            col: 1,
            shape: (3, 3),
        };
        assert!(e.to_string().contains("(7, 1)"));
    }

    #[test]
    fn display_unsorted_row() {
        let e = MatrixError::UnsortedRow { row: 5 };
        assert!(e.to_string().contains("row 5"));
        assert!(e.to_string().contains("unsorted"));
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>() {}
        assert_err::<MatrixError>();
    }
}
