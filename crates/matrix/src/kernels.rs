//! SIMD-shaped scalar kernels: the innermost loops of every hot path.
//!
//! Every kernel here is written as *autovectorisable safe Rust*: fixed-width
//! 8-lane blocks over `chunks_exact`, with per-lane accumulators the
//! compiler can map 1:1 onto vector registers. There is deliberately no
//! `std::arch` intrinsic and no `unsafe` — the lane structure in the source
//! *is* the semantics, so the numerical result is identical whether the
//! backend emits AVX2, NEON, or plain scalar code.
//!
//! ## The canonical-reduction-order contract
//!
//! Element-wise kernels ([`axpy`], [`scale`]) have no cross-lane reduction:
//! each output element is a pure function of the matching input elements, so
//! their results are bit-identical to the naive `zip` loop by construction.
//!
//! Reducing kernels ([`dot`]) fix **one canonical order** and never deviate
//! from it: lane `l` accumulates elements `l, l + 8, l + 16, …` in index
//! order, the 8 lane sums are combined by the fixed binary tree
//! `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`, and the `len % 8` tail is
//! accumulated sequentially and added last. A compiler that vectorises the
//! lane loop computes exactly this expression; one that does not computes it
//! scalar-ly — the bits cannot differ. The parity tests in
//! `tests/parallel_parity.rs` (and the `#[cfg(test)]` references below) pin
//! the contract against straightforward scalar re-implementations.

/// Lane width of the register-blocked kernels. Eight `f32`s fill one AVX2
/// register (and two NEON registers); the value is part of the canonical
/// reduction order of [`dot`] and must never change silently.
pub const LANES: usize = 8;

/// `out[i] += s * x[i]` — the axpy row update at the heart of `spmm`,
/// `spmm_transpose`, `spmm_rows` and the dense `matmul` /
/// `matmul_transpose_self` accumulation.
///
/// Element-wise: bit-identical to the naive loop at any vector width.
///
/// # Panics
/// In debug builds, panics if the slices differ in length; in release the
/// shorter length wins (callers always pass equal lengths).
#[inline]
pub fn axpy(out: &mut [f32], s: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len(), "axpy operands must match");
    let mut oc = out.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (ov, xv) in oc.by_ref().zip(xc.by_ref()) {
        for (o, &v) in ov.iter_mut().zip(xv.iter()) {
            *o += s * v;
        }
    }
    for (o, &v) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o += s * v;
    }
}

/// `out[i] = s * x[i]` — the scaling half of an axpy, used where the
/// products are consumed by a scatter rather than added in place (LocalPush
/// materialises one neighbour row's push contributions through this before
/// scattering them into its residual map).
///
/// Element-wise: bit-identical to the naive loop at any vector width.
#[inline]
pub fn scale(out: &mut [f32], s: f32, x: &[f32]) {
    debug_assert_eq!(out.len(), x.len(), "scale operands must match");
    let mut oc = out.chunks_exact_mut(LANES);
    let mut xc = x.chunks_exact(LANES);
    for (ov, xv) in oc.by_ref().zip(xc.by_ref()) {
        for (o, &v) in ov.iter_mut().zip(xv.iter()) {
            *o = s * v;
        }
    }
    for (o, &v) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
        *o = s * v;
    }
}

/// Dot product in the canonical 8-lane reduction order (see the module
/// docs): the kernel behind `matmul_transpose_other` (`dX = dY·Wᵀ`).
///
/// The result is a pure function of the operands — independent of thread
/// count, compiler vectorisation choices, and target ISA — but it is *not*
/// the left-to-right sequential sum (lane-striped partial sums are combined
/// by a fixed tree). Callers that need the historical sequential order do
/// not exist anymore; the canonical order is the contract.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len(), "dot operands must match");
    let mut lanes = [0.0f32; LANES];
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    for (av, bv) in ac.by_ref().zip(bc.by_ref()) {
        for ((acc, &x), &y) in lanes.iter_mut().zip(av.iter()).zip(bv.iter()) {
            *acc += x * y;
        }
    }
    let mut tail = 0.0f32;
    for (&x, &y) in ac.remainder().iter().zip(bc.remainder()) {
        tail += x * y;
    }
    reduce_lanes(lanes) + tail
}

/// The fixed lane-combination tree of the canonical reduction order. Public
/// so parity tests (and future reducing kernels) can share the exact
/// expression instead of re-deriving it.
#[inline]
pub fn reduce_lanes(l: [f32; LANES]) -> f32 {
    ((l[0] + l[4]) + (l[1] + l[5])) + ((l[2] + l[6]) + (l[3] + l[7]))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic value noise (splitmix-style finaliser).
    fn pseudo(i: usize, seed: u64) -> f32 {
        let mut h = (i as u64)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
        h ^= h >> 33;
        h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
        h ^= h >> 33;
        ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
    }

    fn noise(len: usize, seed: u64) -> Vec<f32> {
        (0..len).map(|i| pseudo(i, seed)).collect()
    }

    /// Scalar reference for [`dot`]: the same canonical order written as
    /// plain indexed loops, retained to pin the contract.
    #[allow(clippy::needless_range_loop)] // indexed on purpose: mirrors the contract prose
    fn dot_reference(a: &[f32], b: &[f32]) -> f32 {
        let mut lanes = [0.0f32; LANES];
        let blocks = a.len() / LANES;
        for blk in 0..blocks {
            for l in 0..LANES {
                let i = blk * LANES + l;
                lanes[l] += a[i] * b[i];
            }
        }
        let mut tail = 0.0f32;
        for i in blocks * LANES..a.len() {
            tail += a[i] * b[i];
        }
        ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
            + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]))
            + tail
    }

    #[test]
    fn axpy_matches_naive_loop_bitwise() {
        for len in [0usize, 1, 7, 8, 9, 63, 64, 65, 1000] {
            let x = noise(len, 1);
            let s = 0.37f32;
            let mut fast = noise(len, 2);
            let mut naive = fast.clone();
            axpy(&mut fast, s, &x);
            for (o, &v) in naive.iter_mut().zip(&x) {
                *o += s * v;
            }
            for (a, b) in fast.iter().zip(&naive) {
                assert_eq!(a.to_bits(), b.to_bits(), "len {len}");
            }
        }
    }

    #[test]
    fn scale_matches_naive_loop_bitwise() {
        for len in [0usize, 3, 8, 17, 256] {
            let x = noise(len, 3);
            let s = -1.83f32;
            let mut fast = vec![0.0f32; len];
            scale(&mut fast, s, &x);
            for (o, &v) in fast.iter().zip(&x) {
                assert_eq!(o.to_bits(), (s * v).to_bits(), "len {len}");
            }
        }
    }

    #[test]
    fn dot_matches_scalar_reference_bitwise() {
        for len in [0usize, 1, 7, 8, 9, 15, 16, 17, 255, 256, 1031] {
            let a = noise(len, 4);
            let b = noise(len, 5);
            assert_eq!(
                dot(&a, &b).to_bits(),
                dot_reference(&a, &b).to_bits(),
                "len {len}"
            );
        }
    }

    #[test]
    fn dot_is_close_to_f64_reference() {
        let a = noise(4096, 6);
        let b = noise(4096, 7);
        let exact: f64 = a.iter().zip(&b).map(|(&x, &y)| x as f64 * y as f64).sum();
        assert!((dot(&a, &b) as f64 - exact).abs() < 1e-2);
    }
}
