//! Property-based tests for the linear-algebra substrate.
//!
//! These check the algebraic identities the rest of the SIGMA reproduction
//! relies on: agreement between sparse and dense kernels, transpose
//! involution, and shape/structure invariants of top-k pruning and row
//! normalization.

use proptest::prelude::*;
use sigma_matrix::{CsrMatrix, DenseMatrix};

const MAX_DIM: usize = 10;

fn dense_strategy(rows: usize, cols: usize) -> impl Strategy<Value = DenseMatrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |data| DenseMatrix::from_vec(rows, cols, data).expect("sized buffer"))
}

/// Raw triplets with indices in `[0, MAX_DIM)`; tests remap them into the
/// actual matrix shape with a modulo so shapes can vary independently.
fn raw_triplets() -> impl Strategy<Value = Vec<(usize, usize, f32)>> {
    prop::collection::vec((0..MAX_DIM, 0..MAX_DIM, -5.0f32..5.0), 0..60)
}

fn remap(trips: &[(usize, usize, f32)], rows: usize, cols: usize) -> Vec<(usize, usize, f32)> {
    trips
        .iter()
        .map(|&(r, c, v)| (r % rows, c % cols, v))
        .collect()
}

fn dense_from_seed(rows: usize, cols: usize, seed: &[f32]) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |i, j| {
        let idx = (i * cols + j) % seed.len().max(1);
        seed.get(idx).copied().unwrap_or(0.0)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn spmm_agrees_with_dense_matmul(
        rows in 1..MAX_DIM, inner in 1..MAX_DIM, cols in 1..MAX_DIM,
        trips in raw_triplets(),
        seed in prop::collection::vec(-3.0f32..3.0, 1..32),
    ) {
        let sparse = CsrMatrix::from_triplets(rows, inner, &remap(&trips, rows, inner)).unwrap();
        let rhs = dense_from_seed(inner, cols, &seed);
        let via_sparse = sparse.spmm(&rhs).unwrap();
        let via_dense = sparse.to_dense().matmul(&rhs).unwrap();
        prop_assert_eq!(via_sparse.shape(), via_dense.shape());
        for (a, b) in via_sparse.as_slice().iter().zip(via_dense.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3, "spmm mismatch: {} vs {}", a, b);
        }
    }

    #[test]
    fn spmm_transpose_agrees_with_transposed_dense(
        rows in 1..MAX_DIM, cols in 1..MAX_DIM, feat in 1..MAX_DIM,
        trips in raw_triplets(),
        seed in prop::collection::vec(-3.0f32..3.0, 1..32),
    ) {
        let sparse = CsrMatrix::from_triplets(rows, cols, &remap(&trips, rows, cols)).unwrap();
        let rhs = dense_from_seed(rows, feat, &seed);
        let fused = sparse.spmm_transpose(&rhs).unwrap();
        let explicit = sparse.transpose().spmm(&rhs).unwrap();
        prop_assert_eq!(fused.shape(), explicit.shape());
        for (a, b) in fused.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    #[test]
    fn spgemm_agrees_with_dense(
        rows in 1..MAX_DIM, inner in 1..MAX_DIM, cols in 1..MAX_DIM,
        t1 in raw_triplets(), t2 in raw_triplets(),
    ) {
        let a = CsrMatrix::from_triplets(rows, inner, &remap(&t1, rows, inner)).unwrap();
        let b = CsrMatrix::from_triplets(inner, cols, &remap(&t2, inner, cols)).unwrap();
        let sparse = a.spgemm(&b).unwrap();
        let dense = a.to_dense().matmul(&b.to_dense()).unwrap();
        for r in 0..rows {
            for c in 0..cols {
                prop_assert!((sparse.get(r, c) - dense.get(r, c)).abs() < 1e-3);
            }
        }
    }

    #[test]
    fn csr_transpose_is_involution(rows in 1..MAX_DIM, cols in 1..MAX_DIM, trips in raw_triplets()) {
        let sparse = CsrMatrix::from_triplets(rows, cols, &remap(&trips, rows, cols)).unwrap();
        prop_assert_eq!(sparse.transpose().transpose(), sparse);
    }

    #[test]
    fn dense_matmul_is_associative(
        a in dense_strategy(4, 3),
        b in dense_strategy(3, 5),
        c in dense_strategy(5, 2),
    ) {
        let left = a.matmul(&b).unwrap().matmul(&c).unwrap();
        let right = a.matmul(&b.matmul(&c).unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-1);
        }
    }

    #[test]
    fn dense_transpose_matmul_identities(a in dense_strategy(5, 4), b in dense_strategy(5, 3)) {
        // Aᵀ·B via the fused kernel equals the explicit formulation.
        let fused = a.matmul_transpose_self(&b).unwrap();
        let explicit = a.transpose().matmul(&b).unwrap();
        for (x, y) in fused.as_slice().iter().zip(explicit.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
        // A·Bᵀ via the fused kernel equals the explicit formulation.
        let c = DenseMatrix::from_fn(2, 4, |i, j| (i + j) as f32 * 0.3 - 0.5);
        let fused2 = a.matmul_transpose_other(&c).unwrap();
        let explicit2 = a.matmul(&c.transpose()).unwrap();
        for (x, y) in fused2.as_slice().iter().zip(explicit2.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn top_k_bounds_row_nnz(rows in 1..MAX_DIM, cols in 1..MAX_DIM, k in 1usize..6, trips in raw_triplets()) {
        let sparse = CsrMatrix::from_triplets(rows, cols, &remap(&trips, rows, cols)).unwrap();
        let pruned = sparse.top_k_per_row(k);
        for r in 0..rows {
            prop_assert!(pruned.row_nnz(r) <= k);
            prop_assert!(pruned.row_nnz(r) <= sparse.row_nnz(r));
        }
        // Pruning never increases the Frobenius norm.
        prop_assert!(pruned.frobenius_norm() <= sparse.frobenius_norm() + 1e-5);
    }

    #[test]
    fn row_normalize_produces_stochastic_rows(rows in 1..MAX_DIM, cols in 1..MAX_DIM, trips in raw_triplets()) {
        let positive: Vec<(usize, usize, f32)> = remap(&trips, rows, cols)
            .into_iter()
            .map(|(r, c, v)| (r, c, v.abs() + 0.01))
            .collect();
        let mut sparse = CsrMatrix::from_triplets(rows, cols, &positive).unwrap();
        sparse.row_normalize();
        for (r, sum) in sparse.row_sums().iter().enumerate() {
            if sparse.row_nnz(r) > 0 {
                prop_assert!((sum - 1.0).abs() < 1e-4);
            } else {
                prop_assert_eq!(*sum, 0.0);
            }
        }
    }

    #[test]
    fn dense_sparse_round_trip(rows in 1..MAX_DIM, cols in 1..MAX_DIM, trips in raw_triplets()) {
        let sparse = CsrMatrix::from_triplets(rows, cols, &remap(&trips, rows, cols)).unwrap();
        let round = CsrMatrix::from_dense(&sparse.to_dense(), 0.0);
        // Round trip preserves every stored value (possibly dropping explicit zeros).
        for r in 0..rows {
            for c in 0..cols {
                prop_assert!((sparse.get(r, c) - round.get(r, c)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn linear_combination_matches_elementwise(
        a in dense_strategy(6, 4),
        b in dense_strategy(6, 4),
        alpha in -2.0f32..2.0,
        beta in -2.0f32..2.0,
    ) {
        let combo = a.linear_combination(alpha, beta, &b).unwrap();
        for i in 0..6 {
            for j in 0..4 {
                let expect = alpha * a.get(i, j) + beta * b.get(i, j);
                prop_assert!((combo.get(i, j) - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn select_rows_preserves_content(a in dense_strategy(7, 3), idx in prop::collection::vec(0usize..7, 1..10)) {
        let sel = a.select_rows(&idx).unwrap();
        prop_assert_eq!(sel.rows(), idx.len());
        for (dst, &src) in idx.iter().enumerate() {
            prop_assert_eq!(sel.row(dst), a.row(src));
        }
    }
}
