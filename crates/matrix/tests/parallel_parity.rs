//! Serial/parallel parity: every kernel refactored onto the shared
//! `sigma-parallel` pool must produce **bitwise identical** results at every
//! thread count. These properties force the global pool to 1 and 4 threads
//! and compare `f32` bit patterns — no tolerance. Inputs are sized above
//! `sigma_parallel::MIN_PARALLEL_WORK` so the parallel path actually runs.
//!
//! CI additionally runs the whole suite under `SIGMA_NUM_THREADS=1` and
//! `SIGMA_NUM_THREADS=4`, so any thread-count-dependent result also fails
//! the ordinary kernel tests.

use proptest::prelude::*;
use sigma_matrix::{CsrMatrix, DenseMatrix};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialises the parity tests within this binary: they flip the global
/// thread override, and interleaving two tests could make both measurements
/// run at the same thread count (results would still match — determinism —
/// but the property would stop exercising the 1-vs-4 contrast).
fn parity_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("parity lock poisoned")
}

/// Deterministic value noise in `[-1, 1)` (splitmix-style finaliser).
fn pseudo(i: usize, j: usize, seed: u64) -> f32 {
    let mut h = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((j as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
}

fn dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |i, j| pseudo(i, j, seed))
}

/// A sparse matrix with expected density `density` and noise values.
fn sparse(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    let mut triplets = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            if (pseudo(i, j, seed ^ 0xA5A5) as f64 + 1.0) / 2.0 < density {
                triplets.push((i, j, pseudo(i, j, seed)));
            }
        }
    }
    CsrMatrix::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
}

/// A power-law ("skewed-degree") sparse matrix: row `i` holds roughly
/// `rows / (i + 1)` entries, so the first few rows carry most of the nnz —
/// the worst case for equal-row-count partitioning and the motivating
/// input for the nnz-balanced planner.
fn skewed(rows: usize, cols: usize, seed: u64) -> CsrMatrix {
    let mut triplets = Vec::new();
    for i in 0..rows {
        let nnz = (rows / (i + 1)).clamp(1, cols);
        for e in 0..nnz {
            // Spread deterministically over the columns; duplicates sum.
            let j = (e * 31 + i * 7 + seed as usize) % cols;
            triplets.push((i, j, pseudo(i, e, seed)));
        }
    }
    CsrMatrix::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
}

fn assert_bitwise_eq(a: &DenseMatrix, b: &DenseMatrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (idx, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: bit mismatch at flat index {idx}: {x:?} ({:#010x}) vs {y:?} ({:#010x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

/// Runs `f` under 1 thread and under 4 threads, restoring the override, and
/// returns both results.
fn at_1_and_4_threads<R>(f: impl Fn() -> R) -> (R, R) {
    sigma_parallel::set_global_threads(1);
    let serial = f();
    sigma_parallel::set_global_threads(4);
    let parallel = f();
    sigma_parallel::set_global_threads(0);
    (serial, parallel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn spmm_parallel_is_bitwise_identical(seed in 0u64..1_000_000, f in 16usize..40) {
        let _guard = parity_lock();
        // ~300·300·0.05 = 4.5k nnz; × f ≥ 72k flops — well above the
        // parallel threshold.
        let m = sparse(300, 300, 0.05, seed);
        let x = dense(300, f, seed ^ 1);
        let (serial, parallel) = at_1_and_4_threads(|| m.spmm(&x).unwrap());
        assert_bitwise_eq(&serial, &parallel, "spmm");
    }

    #[test]
    fn spmm_transpose_parallel_is_bitwise_identical(seed in 0u64..1_000_000, f in 16usize..40) {
        let _guard = parity_lock();
        // Rectangular on purpose: output rows = columns of the operator.
        let m = sparse(320, 250, 0.05, seed);
        let x = dense(320, f, seed ^ 2);
        let (serial, parallel) = at_1_and_4_threads(|| m.spmm_transpose(&x).unwrap());
        assert_bitwise_eq(&serial, &parallel, "spmm_transpose");
    }

    #[test]
    fn spmm_rows_parallel_is_bitwise_identical(seed in 0u64..1_000_000) {
        let _guard = parity_lock();
        let m = sparse(300, 300, 0.08, seed);
        let x = dense(300, 32, seed ^ 3);
        // Batch with duplicates and arbitrary order.
        let rows: Vec<usize> = (0..600).map(|i| (i * 7 + seed as usize) % 300).collect();
        let (serial, parallel) = at_1_and_4_threads(|| m.spmm_rows(&rows, &x).unwrap());
        assert_bitwise_eq(&serial, &parallel, "spmm_rows");
    }

    #[test]
    fn spgemm_parallel_is_identical(seed in 0u64..1_000_000) {
        let _guard = parity_lock();
        // nnz(a) + nnz(b) ≈ 2·300·300·0.2 = 36k ≥ the parallel threshold.
        let a = sparse(300, 300, 0.2, seed);
        let b = sparse(300, 300, 0.2, seed ^ 4);
        let (serial, parallel) = at_1_and_4_threads(|| a.spgemm(&b).unwrap());
        // CSR equality is structural + exact f32 values.
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn matmul_parallel_is_bitwise_identical(seed in 0u64..1_000_000, k in 32usize..64) {
        let _guard = parity_lock();
        let a = dense(120, k, seed);
        let b = dense(k, 90, seed ^ 5);
        let (serial, parallel) = at_1_and_4_threads(|| a.matmul(&b).unwrap());
        assert_bitwise_eq(&serial, &parallel, "matmul");
    }

    #[test]
    fn matmul_transpose_variants_are_bitwise_identical(seed in 0u64..1_000_000) {
        let _guard = parity_lock();
        let a = dense(200, 48, seed);
        let b = dense(200, 56, seed ^ 6);
        let (serial, parallel) = at_1_and_4_threads(|| a.matmul_transpose_self(&b).unwrap());
        assert_bitwise_eq(&serial, &parallel, "matmul_transpose_self");

        let c = dense(130, 48, seed ^ 7);
        let (serial, parallel) = at_1_and_4_threads(|| a.matmul_transpose_other(&c).unwrap());
        assert_bitwise_eq(&serial, &parallel, "matmul_transpose_other");
    }
}

// ---------------------------------------------------------------------------
// Scalar references for the SIMD-shaped kernels.
//
// These re-implement the canonical accumulation orders as plain loops: the
// optimised kernels (8-lane `sigma_matrix::kernels`, nnz-balanced blocks)
// must match them bit for bit at every thread count. They are the
// "pre-optimisation scalar path" the micro-opt bench also checks against.
// ---------------------------------------------------------------------------

/// Serial scalar spmm: per-row, per-entry, left-to-right over the feature
/// dimension — the historical kernel order.
fn reference_spmm(m: &CsrMatrix, x: &DenseMatrix) -> DenseMatrix {
    let f = x.cols();
    let mut out = DenseMatrix::zeros(m.rows(), f);
    for r in 0..m.rows() {
        for (c, v) in m.row_iter(r) {
            let x_row = x.row(c);
            let out_row = out.row_mut(r);
            for j in 0..f {
                out_row[j] += v * x_row[j];
            }
        }
    }
    out
}

/// Serial scalar transposed spmm: the historical scatter over input rows.
fn reference_spmm_transpose(m: &CsrMatrix, x: &DenseMatrix) -> DenseMatrix {
    let f = x.cols();
    let mut out = DenseMatrix::zeros(m.cols(), f);
    for r in 0..m.rows() {
        for (c, v) in m.row_iter(r) {
            let x_row = x.row(r);
            let out_row = out.row_mut(c);
            for j in 0..f {
                out_row[j] += v * x_row[j];
            }
        }
    }
    out
}

/// Scalar reference for `matmul_transpose_other`'s canonical 8-lane dot:
/// lane `l` sums elements `l, l+8, …` in index order, lanes combine by the
/// fixed tree `((l0+l4)+(l1+l5)) + ((l2+l6)+(l3+l7))`, tail added last.
fn reference_dot_canonical(a: &[f32], b: &[f32]) -> f32 {
    const LANES: usize = sigma_matrix::kernels::LANES;
    let mut lanes = [0.0f32; LANES];
    let blocks = a.len() / LANES;
    for blk in 0..blocks {
        for l in 0..LANES {
            lanes[l] += a[blk * LANES + l] * b[blk * LANES + l];
        }
    }
    let mut tail = 0.0f32;
    for i in blocks * LANES..a.len() {
        tail += a[i] * b[i];
    }
    ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]))
        + tail
}

fn reference_matmul_transpose_other(a: &DenseMatrix, b: &DenseMatrix) -> DenseMatrix {
    let mut out = DenseMatrix::zeros(a.rows(), b.rows());
    for i in 0..a.rows() {
        for j in 0..b.rows() {
            out.set(i, j, reference_dot_canonical(a.row(i), b.row(j)));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Skewed-degree graphs: nnz-balanced blocks cut rows unevenly, which
    /// must never show in the bits.
    #[test]
    fn skewed_spmm_matches_scalar_reference_at_1_and_4_threads(seed in 0u64..1_000_000) {
        let _guard = parity_lock();
        let m = skewed(400, 400, seed);
        let x = dense(400, 24, seed ^ 11);
        let expect = reference_spmm(&m, &x);
        let (serial, parallel) = at_1_and_4_threads(|| m.spmm(&x).unwrap());
        assert_bitwise_eq(&serial, &expect, "skewed spmm vs scalar reference (1t)");
        assert_bitwise_eq(&parallel, &expect, "skewed spmm vs scalar reference (4t)");
    }

    #[test]
    fn skewed_spmm_transpose_matches_scalar_reference_at_1_and_4_threads(
        seed in 0u64..1_000_000,
    ) {
        let _guard = parity_lock();
        // Transposing the skew puts the mass in a few *columns* — the
        // output rows of spmm_transpose — stressing the column histogram
        // planner and the hoisted column windows.
        let m = skewed(380, 300, seed);
        let x = dense(380, 20, seed ^ 12);
        let expect = reference_spmm_transpose(&m, &x);
        let (serial, parallel) = at_1_and_4_threads(|| m.spmm_transpose(&x).unwrap());
        assert_bitwise_eq(&serial, &expect, "skewed spmm_transpose vs reference (1t)");
        assert_bitwise_eq(&parallel, &expect, "skewed spmm_transpose vs reference (4t)");
    }

    #[test]
    fn skewed_spgemm_and_top_k_are_thread_count_independent(seed in 0u64..1_000_000) {
        let _guard = parity_lock();
        let a = skewed(300, 300, seed);
        let b = skewed(300, 300, seed ^ 13);
        let (serial, parallel) = at_1_and_4_threads(|| a.spgemm(&b).unwrap());
        prop_assert_eq!(serial, parallel);
        let (serial_k, parallel_k) = at_1_and_4_threads(|| a.top_k_per_row(8));
        prop_assert_eq!(serial_k, parallel_k);
    }

    #[test]
    fn matmul_transpose_other_matches_canonical_reference(seed in 0u64..1_000_000) {
        let _guard = parity_lock();
        // Feature widths straddling the 8-lane boundary exercise block,
        // tail, and mixed reductions.
        for k in [7usize, 8, 9, 48, 51] {
            let a = dense(120, k, seed);
            let b = dense(90, k, seed ^ 14);
            let expect = reference_matmul_transpose_other(&a, &b);
            let (serial, parallel) = at_1_and_4_threads(|| a.matmul_transpose_other(&b).unwrap());
            assert_bitwise_eq(&serial, &expect, "mto vs canonical reference (1t)");
            assert_bitwise_eq(&parallel, &expect, "mto vs canonical reference (4t)");
        }
    }
}

#[test]
fn skewed_spmm_rows_is_bitwise_stable_across_a_thread_sweep() {
    let _guard = parity_lock();
    let m = skewed(350, 350, 7);
    let x = dense(350, 24, 8);
    // A batch dominated by the heavy head rows plus a light tail: the
    // weighted planner cuts this very unevenly by row count.
    let rows: Vec<usize> = (0..700)
        .map(|i| if i % 3 == 0 { i % 5 } else { i % 350 })
        .collect();
    sigma_parallel::set_global_threads(1);
    let reference = m.spmm_rows(&rows, &x).unwrap();
    for threads in [2usize, 4, 8] {
        sigma_parallel::set_global_threads(threads);
        let result = m.spmm_rows(&rows, &x).unwrap();
        assert_bitwise_eq(
            &reference,
            &result,
            &format!("skewed spmm_rows at {threads} threads"),
        );
    }
    sigma_parallel::set_global_threads(0);
}

#[test]
fn spmm_is_bitwise_stable_across_a_thread_sweep() {
    let _guard = parity_lock();
    let m = sparse(400, 400, 0.04, 99);
    let x = dense(400, 24, 17);
    sigma_parallel::set_global_threads(1);
    let reference = m.spmm(&x).unwrap();
    for threads in [2usize, 3, 4, 8] {
        sigma_parallel::set_global_threads(threads);
        let result = m.spmm(&x).unwrap();
        assert_bitwise_eq(&reference, &result, &format!("spmm at {threads} threads"));
    }
    sigma_parallel::set_global_threads(0);
}
