//! Serial/parallel parity: every kernel refactored onto the shared
//! `sigma-parallel` pool must produce **bitwise identical** results at every
//! thread count. These properties force the global pool to 1 and 4 threads
//! and compare `f32` bit patterns — no tolerance. Inputs are sized above
//! `sigma_parallel::MIN_PARALLEL_WORK` so the parallel path actually runs.
//!
//! CI additionally runs the whole suite under `SIGMA_NUM_THREADS=1` and
//! `SIGMA_NUM_THREADS=4`, so any thread-count-dependent result also fails
//! the ordinary kernel tests.

use proptest::prelude::*;
use sigma_matrix::{CsrMatrix, DenseMatrix};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Serialises the parity tests within this binary: they flip the global
/// thread override, and interleaving two tests could make both measurements
/// run at the same thread count (results would still match — determinism —
/// but the property would stop exercising the 1-vs-4 contrast).
fn parity_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .expect("parity lock poisoned")
}

/// Deterministic value noise in `[-1, 1)` (splitmix-style finaliser).
fn pseudo(i: usize, j: usize, seed: u64) -> f32 {
    let mut h = (i as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((j as u64).wrapping_mul(0xD1B5_4A32_D192_ED03))
        .wrapping_add(seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^= h >> 33;
    ((h >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0) as f32
}

fn dense(rows: usize, cols: usize, seed: u64) -> DenseMatrix {
    DenseMatrix::from_fn(rows, cols, |i, j| pseudo(i, j, seed))
}

/// A sparse matrix with expected density `density` and noise values.
fn sparse(rows: usize, cols: usize, density: f64, seed: u64) -> CsrMatrix {
    let mut triplets = Vec::new();
    for i in 0..rows {
        for j in 0..cols {
            if (pseudo(i, j, seed ^ 0xA5A5) as f64 + 1.0) / 2.0 < density {
                triplets.push((i, j, pseudo(i, j, seed)));
            }
        }
    }
    CsrMatrix::from_triplets(rows, cols, &triplets).expect("in-bounds triplets")
}

fn assert_bitwise_eq(a: &DenseMatrix, b: &DenseMatrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape mismatch");
    for (idx, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert!(
            x.to_bits() == y.to_bits(),
            "{what}: bit mismatch at flat index {idx}: {x:?} ({:#010x}) vs {y:?} ({:#010x})",
            x.to_bits(),
            y.to_bits()
        );
    }
}

/// Runs `f` under 1 thread and under 4 threads, restoring the override, and
/// returns both results.
fn at_1_and_4_threads<R>(f: impl Fn() -> R) -> (R, R) {
    sigma_parallel::set_global_threads(1);
    let serial = f();
    sigma_parallel::set_global_threads(4);
    let parallel = f();
    sigma_parallel::set_global_threads(0);
    (serial, parallel)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn spmm_parallel_is_bitwise_identical(seed in 0u64..1_000_000, f in 16usize..40) {
        let _guard = parity_lock();
        // ~300·300·0.05 = 4.5k nnz; × f ≥ 72k flops — well above the
        // parallel threshold.
        let m = sparse(300, 300, 0.05, seed);
        let x = dense(300, f, seed ^ 1);
        let (serial, parallel) = at_1_and_4_threads(|| m.spmm(&x).unwrap());
        assert_bitwise_eq(&serial, &parallel, "spmm");
    }

    #[test]
    fn spmm_transpose_parallel_is_bitwise_identical(seed in 0u64..1_000_000, f in 16usize..40) {
        let _guard = parity_lock();
        // Rectangular on purpose: output rows = columns of the operator.
        let m = sparse(320, 250, 0.05, seed);
        let x = dense(320, f, seed ^ 2);
        let (serial, parallel) = at_1_and_4_threads(|| m.spmm_transpose(&x).unwrap());
        assert_bitwise_eq(&serial, &parallel, "spmm_transpose");
    }

    #[test]
    fn spmm_rows_parallel_is_bitwise_identical(seed in 0u64..1_000_000) {
        let _guard = parity_lock();
        let m = sparse(300, 300, 0.08, seed);
        let x = dense(300, 32, seed ^ 3);
        // Batch with duplicates and arbitrary order.
        let rows: Vec<usize> = (0..600).map(|i| (i * 7 + seed as usize) % 300).collect();
        let (serial, parallel) = at_1_and_4_threads(|| m.spmm_rows(&rows, &x).unwrap());
        assert_bitwise_eq(&serial, &parallel, "spmm_rows");
    }

    #[test]
    fn spgemm_parallel_is_identical(seed in 0u64..1_000_000) {
        let _guard = parity_lock();
        // nnz(a) + nnz(b) ≈ 2·300·300·0.2 = 36k ≥ the parallel threshold.
        let a = sparse(300, 300, 0.2, seed);
        let b = sparse(300, 300, 0.2, seed ^ 4);
        let (serial, parallel) = at_1_and_4_threads(|| a.spgemm(&b).unwrap());
        // CSR equality is structural + exact f32 values.
        prop_assert_eq!(serial, parallel);
    }

    #[test]
    fn matmul_parallel_is_bitwise_identical(seed in 0u64..1_000_000, k in 32usize..64) {
        let _guard = parity_lock();
        let a = dense(120, k, seed);
        let b = dense(k, 90, seed ^ 5);
        let (serial, parallel) = at_1_and_4_threads(|| a.matmul(&b).unwrap());
        assert_bitwise_eq(&serial, &parallel, "matmul");
    }

    #[test]
    fn matmul_transpose_variants_are_bitwise_identical(seed in 0u64..1_000_000) {
        let _guard = parity_lock();
        let a = dense(200, 48, seed);
        let b = dense(200, 56, seed ^ 6);
        let (serial, parallel) = at_1_and_4_threads(|| a.matmul_transpose_self(&b).unwrap());
        assert_bitwise_eq(&serial, &parallel, "matmul_transpose_self");

        let c = dense(130, 48, seed ^ 7);
        let (serial, parallel) = at_1_and_4_threads(|| a.matmul_transpose_other(&c).unwrap());
        assert_bitwise_eq(&serial, &parallel, "matmul_transpose_other");
    }
}

#[test]
fn spmm_is_bitwise_stable_across_a_thread_sweep() {
    let _guard = parity_lock();
    let m = sparse(400, 400, 0.04, 99);
    let x = dense(400, 24, 17);
    sigma_parallel::set_global_threads(1);
    let reference = m.spmm(&x).unwrap();
    for threads in [2usize, 3, 4, 8] {
        sigma_parallel::set_global_threads(threads);
        let result = m.spmm(&x).unwrap();
        assert_bitwise_eq(&reference, &result, &format!("spmm at {threads} threads"));
    }
    sigma_parallel::set_global_threads(0);
}
