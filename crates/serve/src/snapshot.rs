//! Versioned on-disk snapshots: trained weights, the top-k aggregation
//! operator, and the graph inputs needed to serve it.
//!
//! A [`ServeSnapshot`] bundles a [`ModelSnapshot`] (the trained SIGMA
//! parameters and operator) with the node features and adjacency matrix the
//! model embeds, making the file self-contained: `load` → build an
//! [`crate::InferenceEngine`] → answer queries, with no access to the
//! training pipeline. Files carry a magic tag and a format version; readers
//! reject newer versions and malformed sections with typed errors.

use crate::format::{self, decode_aggregator, encode_aggregator, read_mlp, write_mlp, MetaInfo};
use crate::mmap::to_legacy_error;
use crate::{codec, MappedSnapshot};
use crate::{Result, ServeError};
use sigma::snapshot::ModelSnapshot;
use sigma_matrix::{CsrMatrix, DenseMatrix};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying a SIGMA snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SIGMASNP";

/// Current (highest writable/readable) snapshot format version: the
/// zero-copy sectioned layout of [`crate::MappedSnapshot`]. Version 1
/// (streamed, length-prefixed) files remain readable.
pub const SNAPSHOT_VERSION: u32 = 2;

/// A self-contained serving artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Free-form tag recorded at save time (model name, dataset, run id…).
    pub tag: String,
    /// The trained model: weights, hyper-parameters, aggregation operator.
    pub model: ModelSnapshot,
    /// Node features `X` (`n × f`), input to `MLP_X`.
    pub features: DenseMatrix,
    /// Binary adjacency `A` (`n × n`), input to `MLP_A` and the source of
    /// neighbourhood information for cache invalidation.
    pub adjacency: CsrMatrix,
    /// Precomputed full-graph embeddings `H` (`n × classes`), populated by
    /// [`ServeSnapshot::precompute_embeddings`]. When present, a v2 file
    /// carries them as a mappable section and an engine built from the
    /// mapping skips the encoder entirely at cold start. Not written by
    /// the v1 format.
    pub embeddings: Option<DenseMatrix>,
}

impl ServeSnapshot {
    /// Bundles a model snapshot with its serving inputs, validating that all
    /// shapes agree.
    pub fn new(
        tag: impl Into<String>,
        model: ModelSnapshot,
        features: DenseMatrix,
        adjacency: CsrMatrix,
    ) -> Result<Self> {
        model.validate()?;
        let n = model.num_nodes();
        if features.rows() != n || features.cols() != model.feature_dim() {
            return Err(ServeError::Corrupt {
                reason: format!(
                    "feature matrix {:?} does not match the model's {} × {} inputs",
                    features.shape(),
                    n,
                    model.feature_dim()
                ),
            });
        }
        if adjacency.shape() != (n, n) {
            return Err(ServeError::OperatorMismatch {
                got: adjacency.shape(),
                expected: n,
            });
        }
        Ok(Self {
            tag: tag.into(),
            model,
            features,
            adjacency,
            embeddings: None,
        })
    }

    /// Number of nodes this snapshot serves.
    pub fn num_nodes(&self) -> usize {
        self.model.num_nodes()
    }

    /// Runs the encoder once and stores the full-graph embeddings `H` in
    /// the snapshot, so a subsequent [`ServeSnapshot::save`] emits them as
    /// a mappable `EMB` section and mapped engines cold-start in O(1).
    pub fn precompute_embeddings(&mut self) -> Result<()> {
        self.embeddings = Some(crate::forward::compute_embeddings(
            &self.model,
            &self.features,
            &self.adjacency,
        )?);
        Ok(())
    }

    /// Writes the snapshot to `path` (creating or truncating the file).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        self.write_to(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Reads a snapshot from `path`, validating magic, version and every
    /// section. v2 files are memory-mapped, verified (header table,
    /// checksums, CSR invariants) and then decoded; v1 files stream
    /// through the legacy reader. For zero-copy serving keep the mapping
    /// itself: [`MappedSnapshot::open`] +
    /// [`crate::InferenceEngine::from_mapped`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let mut prelude = [0u8; 12];
        {
            let mut f = File::open(&path)?;
            f.read_exact(&mut prelude)?;
        }
        if prelude[..8] == SNAPSHOT_MAGIC[..]
            && u32::from_le_bytes(prelude[8..12].try_into().unwrap()) == 2
        {
            return MappedSnapshot::open(path)
                .and_then(|m| m.to_snapshot())
                .map_err(to_legacy_error);
        }
        let file = File::open(path)?;
        let mut r = BufReader::new(file);
        Self::read_from(&mut r)
    }

    /// Serialises to any writer in the current (v2, zero-copy) format: a
    /// header table of CRC-stamped, 64-byte-aligned sections holding the
    /// CSR/dense arrays as raw little-endian data. The `save` body;
    /// exposed for tests and in-memory transport.
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        let n = self.num_nodes();
        let num_classes = self.model.num_classes();
        if let Some(emb) = &self.embeddings {
            if emb.shape() != (n, num_classes) {
                return Err(ServeError::Corrupt {
                    reason: format!(
                        "embedding matrix {:?} does not match the model's {} × {} output",
                        emb.shape(),
                        n,
                        num_classes
                    ),
                });
            }
        }
        let adj_nnz = self.adjacency.values().len();
        let adj_width = format::ptr_width_for(adj_nnz);
        let (op_nnz, op_width) = match &self.model.operator {
            Some(op) => (op.values().len(), format::ptr_width_for(op.values().len())),
            None => (0, 4),
        };
        let meta = MetaInfo {
            tag: self.tag.clone(),
            effective_alpha: self.model.effective_alpha(),
            num_nodes: n as u64,
            feature_dim: self.model.feature_dim() as u64,
            num_classes: num_classes as u64,
            adj_nnz: adj_nnz as u64,
            adj_ptr_width: adj_width,
            has_operator: self.model.operator.is_some(),
            op_nnz: op_nnz as u64,
            op_ptr_width: op_width,
            has_embeddings: self.embeddings.is_some(),
        };
        let mut sw = format::SectionWriter::new();
        sw.push(format::TAG_META, format::encode_meta(&meta)?);
        sw.push(
            format::TAG_ADJ_PTR,
            format::encode_indptr(self.adjacency.indptr(), adj_width),
        );
        sw.push(
            format::TAG_ADJ_IDX,
            format::encode_u32s(self.adjacency.indices()),
        );
        sw.push(
            format::TAG_ADJ_VAL,
            format::encode_f32s(self.adjacency.values()),
        );
        if let Some(op) = &self.model.operator {
            sw.push(
                format::TAG_OP_PTR,
                format::encode_indptr(op.indptr(), op_width),
            );
            sw.push(format::TAG_OP_IDX, format::encode_u32s(op.indices()));
            sw.push(format::TAG_OP_VAL, format::encode_f32s(op.values()));
        }
        sw.push(
            format::TAG_FEAT,
            format::encode_f32s(self.features.as_slice()),
        );
        if let Some(emb) = &self.embeddings {
            sw.push(format::TAG_EMB, format::encode_f32s(emb.as_slice()));
        }
        sw.push(format::TAG_MODEL, format::encode_model_blob(&self.model)?);
        sw.write_to(w)
    }

    /// Serialises in the legacy v1 streamed format (no mapping, no
    /// embeddings section). Kept for compatibility tests and downgrades.
    pub fn write_to_v1<W: Write>(&self, w: &mut W) -> Result<()> {
        w.write_all(SNAPSHOT_MAGIC)?;
        codec::write_u32(w, 1)?;
        codec::write_string(w, &self.tag)?;
        // Scalar hyper-parameters.
        codec::write_f64(w, self.model.delta)?;
        codec::write_f64(w, self.model.alpha)?;
        match self.model.alpha_raw {
            Some(raw) => {
                codec::write_u32(w, 1)?;
                codec::write_f32(w, raw)?;
            }
            None => codec::write_u32(w, 0)?,
        }
        codec::write_f32(w, self.model.dropout)?;
        codec::write_u32(w, encode_aggregator(self.model.aggregator))?;
        // Operator.
        match &self.model.operator {
            Some(op) => {
                codec::write_u32(w, 1)?;
                codec::write_csr(w, op)?;
            }
            None => codec::write_u32(w, 0)?,
        }
        // Weight stacks.
        write_mlp(w, &self.model.mlp_a)?;
        write_mlp(w, &self.model.mlp_x)?;
        write_mlp(w, &self.model.mlp_h)?;
        // Serving inputs.
        codec::write_dense(w, &self.features)?;
        codec::write_csr(w, &self.adjacency)?;
        Ok(())
    }

    /// Deserialises from any reader, dispatching on the format version:
    /// v1 streams through the legacy decoder, v2 adopts the remaining
    /// bytes via [`MappedSnapshot::from_bytes`] (aligned copy) and fully
    /// decodes. v2 structural damage is reported through the same
    /// [`ServeError::Corrupt`]/[`ServeError::UnsupportedVersion`] variants
    /// v1 callers already handle; use [`MappedSnapshot`] directly for the
    /// typed [`crate::SnapshotError`] detail.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != SNAPSHOT_MAGIC {
            return Err(ServeError::Corrupt {
                reason: "missing SIGMASNP magic; not a snapshot file".into(),
            });
        }
        let version = codec::read_u32(r)?;
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(ServeError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        if version == 2 {
            let mut buf = Vec::with_capacity(format::PRELUDE_LEN);
            buf.extend_from_slice(&magic);
            buf.extend_from_slice(&2u32.to_le_bytes());
            r.read_to_end(&mut buf)?;
            return MappedSnapshot::from_bytes(&buf)
                .and_then(|m| m.to_snapshot())
                .map_err(to_legacy_error);
        }
        let tag = codec::read_string(r)?;
        let delta = codec::read_f64(r)?;
        let alpha = codec::read_f64(r)?;
        let alpha_raw = match codec::read_u32(r)? {
            0 => None,
            1 => Some(codec::read_f32(r)?),
            t => {
                return Err(ServeError::Corrupt {
                    reason: format!("invalid alpha_raw tag {t}"),
                })
            }
        };
        let dropout = codec::read_f32(r)?;
        let aggregator = decode_aggregator(codec::read_u32(r)?)?;
        let operator = match codec::read_u32(r)? {
            0 => None,
            1 => Some(codec::read_csr(r)?),
            t => {
                return Err(ServeError::Corrupt {
                    reason: format!("invalid operator tag {t}"),
                })
            }
        };
        let mlp_a = read_mlp(r)?;
        let mlp_x = read_mlp(r)?;
        let mlp_h = read_mlp(r)?;
        let features = codec::read_dense(r)?;
        let adjacency = codec::read_csr(r)?;
        let model = ModelSnapshot {
            delta,
            alpha,
            alpha_raw,
            dropout,
            aggregator,
            operator,
            mlp_a,
            mlp_x,
            mlp_h,
        };
        Self::new(tag, model, features, adjacency)
    }
}
