//! Versioned on-disk snapshots: trained weights, the top-k aggregation
//! operator, and the graph inputs needed to serve it.
//!
//! A [`ServeSnapshot`] bundles a [`ModelSnapshot`] (the trained SIGMA
//! parameters and operator) with the node features and adjacency matrix the
//! model embeds, making the file self-contained: `load` → build an
//! [`crate::InferenceEngine`] → answer queries, with no access to the
//! training pipeline. Files carry a magic tag and a format version; readers
//! reject newer versions and malformed sections with typed errors.

use crate::codec;
use crate::{Result, ServeError};
use sigma::snapshot::{MlpWeights, ModelSnapshot};
use sigma::AggregatorKind;
use sigma_matrix::{CsrMatrix, DenseMatrix};
use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying a SIGMA snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"SIGMASNP";

/// Current (highest writable/readable) snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A self-contained serving artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeSnapshot {
    /// Free-form tag recorded at save time (model name, dataset, run id…).
    pub tag: String,
    /// The trained model: weights, hyper-parameters, aggregation operator.
    pub model: ModelSnapshot,
    /// Node features `X` (`n × f`), input to `MLP_X`.
    pub features: DenseMatrix,
    /// Binary adjacency `A` (`n × n`), input to `MLP_A` and the source of
    /// neighbourhood information for cache invalidation.
    pub adjacency: CsrMatrix,
}

impl ServeSnapshot {
    /// Bundles a model snapshot with its serving inputs, validating that all
    /// shapes agree.
    pub fn new(
        tag: impl Into<String>,
        model: ModelSnapshot,
        features: DenseMatrix,
        adjacency: CsrMatrix,
    ) -> Result<Self> {
        model.validate()?;
        let n = model.num_nodes();
        if features.rows() != n || features.cols() != model.feature_dim() {
            return Err(ServeError::Corrupt {
                reason: format!(
                    "feature matrix {:?} does not match the model's {} × {} inputs",
                    features.shape(),
                    n,
                    model.feature_dim()
                ),
            });
        }
        if adjacency.shape() != (n, n) {
            return Err(ServeError::OperatorMismatch {
                got: adjacency.shape(),
                expected: n,
            });
        }
        Ok(Self {
            tag: tag.into(),
            model,
            features,
            adjacency,
        })
    }

    /// Number of nodes this snapshot serves.
    pub fn num_nodes(&self) -> usize {
        self.model.num_nodes()
    }

    /// Writes the snapshot to `path` (creating or truncating the file).
    pub fn save(&self, path: impl AsRef<Path>) -> Result<()> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        self.write_to(&mut w)?;
        w.flush()?;
        Ok(())
    }

    /// Reads a snapshot from `path`, validating magic, version and every
    /// section.
    pub fn load(path: impl AsRef<Path>) -> Result<Self> {
        let file = File::open(path)?;
        let mut r = BufReader::new(file);
        Self::read_from(&mut r)
    }

    /// Serialises to any writer (the `save` body; exposed for tests and
    /// in-memory transport).
    pub fn write_to<W: Write>(&self, w: &mut W) -> Result<()> {
        w.write_all(SNAPSHOT_MAGIC)?;
        codec::write_u32(w, SNAPSHOT_VERSION)?;
        codec::write_string(w, &self.tag)?;
        // Scalar hyper-parameters.
        codec::write_f64(w, self.model.delta)?;
        codec::write_f64(w, self.model.alpha)?;
        match self.model.alpha_raw {
            Some(raw) => {
                codec::write_u32(w, 1)?;
                codec::write_f32(w, raw)?;
            }
            None => codec::write_u32(w, 0)?,
        }
        codec::write_f32(w, self.model.dropout)?;
        codec::write_u32(w, encode_aggregator(self.model.aggregator))?;
        // Operator.
        match &self.model.operator {
            Some(op) => {
                codec::write_u32(w, 1)?;
                codec::write_csr(w, op)?;
            }
            None => codec::write_u32(w, 0)?,
        }
        // Weight stacks.
        write_mlp(w, &self.model.mlp_a)?;
        write_mlp(w, &self.model.mlp_x)?;
        write_mlp(w, &self.model.mlp_h)?;
        // Serving inputs.
        codec::write_dense(w, &self.features)?;
        codec::write_csr(w, &self.adjacency)?;
        Ok(())
    }

    /// Deserialises from any reader.
    pub fn read_from<R: Read>(r: &mut R) -> Result<Self> {
        let mut magic = [0u8; 8];
        r.read_exact(&mut magic)?;
        if &magic != SNAPSHOT_MAGIC {
            return Err(ServeError::Corrupt {
                reason: "missing SIGMASNP magic; not a snapshot file".into(),
            });
        }
        let version = codec::read_u32(r)?;
        if version == 0 || version > SNAPSHOT_VERSION {
            return Err(ServeError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let tag = codec::read_string(r)?;
        let delta = codec::read_f64(r)?;
        let alpha = codec::read_f64(r)?;
        let alpha_raw = match codec::read_u32(r)? {
            0 => None,
            1 => Some(codec::read_f32(r)?),
            t => {
                return Err(ServeError::Corrupt {
                    reason: format!("invalid alpha_raw tag {t}"),
                })
            }
        };
        let dropout = codec::read_f32(r)?;
        let aggregator = decode_aggregator(codec::read_u32(r)?)?;
        let operator = match codec::read_u32(r)? {
            0 => None,
            1 => Some(codec::read_csr(r)?),
            t => {
                return Err(ServeError::Corrupt {
                    reason: format!("invalid operator tag {t}"),
                })
            }
        };
        let mlp_a = read_mlp(r)?;
        let mlp_x = read_mlp(r)?;
        let mlp_h = read_mlp(r)?;
        let features = codec::read_dense(r)?;
        let adjacency = codec::read_csr(r)?;
        let model = ModelSnapshot {
            delta,
            alpha,
            alpha_raw,
            dropout,
            aggregator,
            operator,
            mlp_a,
            mlp_x,
            mlp_h,
        };
        Self::new(tag, model, features, adjacency)
    }
}

fn encode_aggregator(kind: AggregatorKind) -> u32 {
    match kind {
        AggregatorKind::SimRank => 0,
        AggregatorKind::SimRankTimesA => 1,
        AggregatorKind::Ppr => 2,
        AggregatorKind::None => 3,
    }
}

fn decode_aggregator(tag: u32) -> Result<AggregatorKind> {
    Ok(match tag {
        0 => AggregatorKind::SimRank,
        1 => AggregatorKind::SimRankTimesA,
        2 => AggregatorKind::Ppr,
        3 => AggregatorKind::None,
        t => {
            return Err(ServeError::Corrupt {
                reason: format!("unknown aggregator tag {t}"),
            })
        }
    })
}

fn write_mlp<W: Write>(w: &mut W, stack: &MlpWeights) -> Result<()> {
    codec::write_u64(w, stack.len() as u64)?;
    for (weight, bias) in stack {
        codec::write_dense(w, weight)?;
        codec::write_dense(w, bias)?;
    }
    Ok(())
}

fn read_mlp<R: Read>(r: &mut R) -> Result<MlpWeights> {
    let layers = codec::read_u64(r)?;
    if layers > 1024 {
        return Err(ServeError::Corrupt {
            reason: format!("implausible MLP depth {layers}"),
        });
    }
    let mut stack = Vec::with_capacity(layers as usize);
    for _ in 0..layers {
        let weight = codec::read_dense(r)?;
        let bias = codec::read_dense(r)?;
        stack.push((weight, bias));
    }
    Ok(stack)
}
