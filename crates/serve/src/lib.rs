//! # sigma-serve
//!
//! The online half of the SIGMA reproduction: load a trained model snapshot
//! and answer node-classification queries without a full-graph forward pass.
//!
//! SIGMA's systems property (paper Sec. III-B) is that its aggregation
//! operator `S` is a *constant, precomputed* top-k matrix. At serve time the
//! model therefore collapses to three artifacts — the encoder weights, `S`,
//! and the scalar `α` — and a query for `b` nodes needs only
//!
//! 1. the precomputed full-graph embedding `H` (built once at engine start),
//! 2. the `b` rows of `S`, applied with the `O(b·k·f)` row-sliced kernel
//!    [`sigma_matrix::CsrMatrix::spmm_rows`],
//! 3. the Eq. 6 blend `Z = (1−α)·S·H + α·H` on those rows.
//!
//! The crate provides:
//!
//! * [`ServeSnapshot`] — a versioned, self-contained binary artifact
//!   (weights + operator + serving inputs) with typed load-time validation,
//! * [`InferenceEngine`] — single and batched queries planned through a
//!   bounded LRU cache of aggregated rows, fanned out across the shared
//!   [`sigma_parallel::ThreadPool`] (no engine-private threads),
//! * a staleness hook consuming [`sigma_simrank::EdgeUpdate`] streams and
//!   [`sigma_simrank::DynamicSimRank`] refreshes, so an evolving graph
//!   invalidates exactly the affected cached rows,
//! * [`ShardRouter`] — N engines behind one façade, each serving a row
//!   range of the operator cut by nnz mass, with scatter/gather queries
//!   and footprint-sparse repair fan-out, bitwise-equal to one engine.
//!
//! ## Example
//!
//! ```
//! use rand::SeedableRng;
//! use sigma::{ContextBuilder, ModelHyperParams, SigmaModel};
//! use sigma_serve::{EngineConfig, InferenceEngine, ServeSnapshot};
//!
//! // A trained (here: freshly initialised) SIGMA model over a small graph.
//! let data = sigma_datasets::DatasetPreset::Texas.build(0.5, 3).unwrap();
//! let features = data.features.clone();
//! let adjacency = data.graph.to_adjacency();
//! let ctx = ContextBuilder::new(data).with_simrank_topk(8).build().unwrap();
//! let mut rng = rand::rngs::StdRng::seed_from_u64(3);
//! let model = SigmaModel::new(&ctx, &ModelHyperParams::small(), &mut rng).unwrap();
//!
//! // Snapshot → engine → query.
//! let snapshot = ServeSnapshot::new(
//!     "texas-demo",
//!     model.snapshot(&ctx).unwrap(),
//!     features,
//!     adjacency,
//! )
//! .unwrap();
//! let engine = InferenceEngine::new(&snapshot, EngineConfig::default()).unwrap();
//! let prediction = engine.predict(0).unwrap();
//! assert!(prediction.label < engine.num_classes());
//! ```

#![deny(missing_docs)]

mod cache;
mod codec;
mod engine;
mod error;
mod format;
mod forward;
mod mmap;
mod shard;
mod snapshot;
mod store;

pub use cache::LruCache;
pub use engine::{
    EngineConfig, EngineRepair, EngineStats, InferenceEngine, OperatorPatch, Prediction,
    SimilarNode,
};
pub use error::{ServeError, SnapshotError};
pub use forward::{compute_embeddings, compute_embeddings_rows, mlp_infer_dense, mlp_infer_sparse};
pub use mmap::MappedSnapshot;
pub use shard::{RouterRepair, RouterStats, ShardPlan, ShardRouter, ShardRouterConfig};
pub use snapshot::{ServeSnapshot, SNAPSHOT_MAGIC, SNAPSHOT_VERSION};

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ServeError>;
