//! Owned-or-mapped storage behind the inference engine.
//!
//! The engine's serving state holds matrices either as owned
//! [`CsrMatrix`]/[`DenseMatrix`] (the v1 decode path) or as named sections
//! of a shared [`MappedSnapshot`] (the v2 zero-copy path). Every kernel
//! call goes through [`CsrStore::view`]/[`DenseStore::view`], so both
//! representations run the same view-first kernels and stay bitwise
//! identical. Mutation (incremental repair) promotes a mapped store to
//! owned copy-on-write via `make_owned` — the mapping itself is never
//! written.

use crate::{MappedSnapshot, Result};
use sigma::snapshot::ModelSnapshot;
use sigma_matrix::{CsrMatrix, CsrViewAny, DenseMatrix, DenseView};
use std::sync::Arc;

/// Which CSR section of a mapped snapshot a [`CsrStore`] points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CsrSection {
    Adjacency,
    Operator,
}

/// A CSR matrix owned in memory or borrowed from a mapped snapshot.
#[derive(Debug, Clone)]
pub(crate) enum CsrStore {
    Owned(CsrMatrix),
    Mapped {
        snap: Arc<MappedSnapshot>,
        section: CsrSection,
    },
}

impl CsrStore {
    pub(crate) fn view(&self) -> CsrViewAny<'_> {
        match self {
            CsrStore::Owned(m) => CsrViewAny::Native(m.view()),
            CsrStore::Mapped { snap, section } => match section {
                CsrSection::Adjacency => snap.adjacency_view(),
                CsrSection::Operator => snap
                    .operator_view()
                    .expect("operator store built only when the section exists"),
            },
        }
    }

    /// Copy-on-write promotion: a mapped store becomes owned (decoded and
    /// revalidated) so the caller can mutate it; an owned store is returned
    /// as-is.
    pub(crate) fn make_owned(&mut self) -> Result<&mut CsrMatrix> {
        if matches!(self, CsrStore::Mapped { .. }) {
            let owned = self.view().to_owned_matrix()?;
            *self = CsrStore::Owned(owned);
        }
        match self {
            CsrStore::Owned(m) => Ok(m),
            CsrStore::Mapped { .. } => unreachable!("promoted above"),
        }
    }

    /// An owned copy of the matrix (cloning or decoding as needed).
    pub(crate) fn to_matrix(&self) -> CsrMatrix {
        match self {
            CsrStore::Owned(m) => m.clone(),
            CsrStore::Mapped { .. } => self
                .view()
                .to_owned_matrix()
                .expect("mapped sections are verified before an engine is built"),
        }
    }
}

/// Which dense section of a mapped snapshot a [`DenseStore`] points at.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DenseSection {
    Features,
    Embeddings,
}

/// A dense matrix owned in memory or borrowed from a mapped snapshot.
#[derive(Debug, Clone)]
pub(crate) enum DenseStore {
    Owned(DenseMatrix),
    Mapped {
        snap: Arc<MappedSnapshot>,
        section: DenseSection,
    },
}

impl DenseStore {
    pub(crate) fn view(&self) -> DenseView<'_> {
        match self {
            DenseStore::Owned(m) => m.view(),
            DenseStore::Mapped { snap, section } => match section {
                DenseSection::Features => snap.features_view(),
                DenseSection::Embeddings => snap
                    .embeddings_view()
                    .expect("embedding store built only when the section exists"),
            },
        }
    }

    /// Copy-on-write promotion, mirroring [`CsrStore::make_owned`].
    pub(crate) fn make_owned(&mut self) -> &mut DenseMatrix {
        if matches!(self, DenseStore::Mapped { .. }) {
            let owned = self.view().to_owned_matrix();
            *self = DenseStore::Owned(owned);
        }
        match self {
            DenseStore::Owned(m) => m,
            DenseStore::Mapped { .. } => unreachable!("promoted above"),
        }
    }

    pub(crate) fn rows(&self) -> usize {
        self.view().rows()
    }
}

/// The model weights: decoded up front (owned path) or decoded lazily out
/// of the mapped `MODEL` section the first time the repair path needs them.
#[derive(Debug, Clone)]
pub(crate) enum ModelRef {
    Owned(Arc<ModelSnapshot>),
    Mapped(Arc<MappedSnapshot>),
}

impl ModelRef {
    /// The decoded model. Owned: a cheap `Arc` clone. Mapped: the first
    /// call decodes the `MODEL` blob (cached inside the mapping).
    pub(crate) fn get(&self) -> Result<Arc<ModelSnapshot>> {
        match self {
            ModelRef::Owned(m) => Ok(m.clone()),
            ModelRef::Mapped(snap) => snap.model(),
        }
    }
}
