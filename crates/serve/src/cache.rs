//! A bounded LRU cache for per-node aggregated embeddings (`Ẑ` rows).
//!
//! The engine's hot path is "gather the `Ẑ` rows of a query batch"; rows for
//! frequently queried nodes are kept here so repeat queries skip the
//! row-sliced SpMM entirely. The implementation is a `HashMap` keyed by node
//! id plus a monotone access stamp, with amortised-O(1) eviction via a lazy
//! min-heap of `(stamp, node)` candidates — entries whose stamp is out of
//! date are discarded when popped.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

/// Bounded least-recently-used map from node id to an owned embedding row.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    entries: HashMap<usize, (u64, Vec<f32>)>,
    /// Min-heap of `(stamp, node)` eviction candidates; may contain stale
    /// stamps, resolved lazily on eviction.
    eviction: BinaryHeap<Reverse<(u64, usize)>>,
    clock: u64,
}

impl LruCache {
    /// Creates a cache holding at most `capacity` rows (0 disables caching).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: HashMap::with_capacity(capacity.min(4096)),
            eviction: BinaryHeap::new(),
            clock: 0,
        }
    }

    /// Number of rows currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up a row, refreshing its recency on hit.
    pub fn get(&mut self, node: usize) -> Option<&[f32]> {
        self.clock += 1;
        self.maybe_compact();
        let clock = self.clock;
        match self.entries.get_mut(&node) {
            Some((stamp, row)) => {
                *stamp = clock;
                self.eviction.push(Reverse((clock, node)));
                Some(row.as_slice())
            }
            None => None,
        }
    }

    /// Rebuilds the eviction heap from live entries when stale candidates
    /// dominate it (read-heavy workloads refresh stamps without evicting, so
    /// without compaction the heap would grow with the query count).
    fn maybe_compact(&mut self) {
        if self.eviction.len() > self.entries.len() * 4 + 16 {
            self.eviction = self
                .entries
                .iter()
                .map(|(&node, (stamp, _))| Reverse((*stamp, node)))
                .collect();
        }
    }

    /// Inserts (or refreshes) a row, evicting least recently used entries
    /// while the cache is over capacity. Returns how many live entries were
    /// displaced (0 on a refresh or while under capacity) so the caller can
    /// account capacity pressure separately from correctness invalidations.
    pub fn insert(&mut self, node: usize, row: Vec<f32>) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        self.clock += 1;
        self.maybe_compact();
        let clock = self.clock;
        self.eviction.push(Reverse((clock, node)));
        self.entries.insert(node, (clock, row));
        let mut evicted = 0usize;
        while self.entries.len() > self.capacity {
            match self.eviction.pop() {
                Some(Reverse((stamp, candidate))) => {
                    if self
                        .entries
                        .get(&candidate)
                        .is_some_and(|(current, _)| *current == stamp)
                    {
                        self.entries.remove(&candidate);
                        evicted += 1;
                    }
                }
                // Heap exhausted: every remaining candidate was stale. Cannot
                // happen while entries is non-empty, but guard anyway.
                None => break,
            }
        }
        evicted
    }

    /// Removes one node's row, returning whether it was present.
    pub fn invalidate(&mut self, node: usize) -> bool {
        self.entries.remove(&node).is_some()
    }

    /// Removes every cached row.
    pub fn clear(&mut self) {
        self.entries.clear();
        self.eviction.clear();
    }

    /// The node ids currently cached (order unspecified).
    pub fn cached_nodes(&self) -> Vec<usize> {
        self.entries.keys().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: f32) -> Vec<f32> {
        vec![v, v + 1.0]
    }

    #[test]
    fn hit_and_miss() {
        let mut cache = LruCache::new(4);
        assert!(cache.get(0).is_none());
        cache.insert(0, row(1.0));
        assert_eq!(cache.get(0).unwrap(), &[1.0, 2.0]);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut cache = LruCache::new(3);
        cache.insert(1, row(1.0));
        cache.insert(2, row(2.0));
        cache.insert(3, row(3.0));
        // Touch 1 so 2 becomes the LRU entry.
        assert!(cache.get(1).is_some());
        cache.insert(4, row(4.0));
        assert_eq!(cache.len(), 3);
        assert!(cache.get(2).is_none(), "2 was LRU and must be evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(3).is_some());
        assert!(cache.get(4).is_some());
    }

    #[test]
    fn reinsert_refreshes_instead_of_growing() {
        let mut cache = LruCache::new(2);
        cache.insert(1, row(1.0));
        cache.insert(1, row(9.0));
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.get(1).unwrap(), &[9.0, 10.0]);
        cache.insert(2, row(2.0));
        cache.insert(3, row(3.0));
        assert_eq!(cache.len(), 2);
        assert!(
            cache.get(1).is_none(),
            "oldest entry evicted after refreshes"
        );
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut cache = LruCache::new(0);
        cache.insert(1, row(1.0));
        assert!(cache.is_empty());
        assert!(cache.get(1).is_none());
    }

    #[test]
    fn invalidate_and_clear() {
        let mut cache = LruCache::new(8);
        for i in 0..5 {
            cache.insert(i, row(i as f32));
        }
        assert!(cache.invalidate(3));
        assert!(!cache.invalidate(3));
        assert_eq!(cache.len(), 4);
        let mut nodes = cache.cached_nodes();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1, 2, 4]);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.capacity(), 8);
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut cache = LruCache::new(16);
        for i in 0..10_000 {
            cache.insert(i % 64, row(i as f32));
            let _ = cache.get((i * 7) % 64);
            assert!(cache.len() <= 16);
        }
    }

    #[test]
    fn read_heavy_workloads_compact_the_eviction_heap() {
        let mut cache = LruCache::new(8);
        for i in 0..8 {
            cache.insert(i, row(i as f32));
        }
        // Millions of hits without inserts must not grow internal state
        // unboundedly (lazy eviction candidates are compacted away).
        for i in 0..100_000usize {
            assert!(cache.get(i % 8).is_some());
        }
        assert!(cache.eviction.len() <= cache.entries.len() * 4 + 16);
        // LRU semantics still hold after compaction.
        cache.insert(100, row(1.0));
        assert_eq!(cache.len(), 8);
    }
}
