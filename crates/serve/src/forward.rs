//! Eval-mode forward passes from exported weights.
//!
//! The serve-side encoder rebuilds real [`sigma_nn::Mlp`] stacks from the
//! snapshot's weights via [`sigma_nn::Mlp::from_layers`] and runs them in
//! eval mode (dropout inactive), so the resulting embeddings are identical
//! to the training-side eval forward *by construction* — the same layer
//! code executes, not a re-implementation of it. `Linear::from_parts`
//! validates every layer's weight/bias shapes on the way in.

use crate::Result;
use sigma::snapshot::{MlpWeights, ModelSnapshot};
use sigma_matrix::{CsrMatrix, DenseMatrix};
use sigma_nn::{Linear, Mlp};

/// Rebuilds a runnable MLP from exported `(weight, bias)` pairs.
fn rebuild(stack: &MlpWeights) -> Result<Mlp> {
    let layers = stack
        .iter()
        .map(|(w, b)| Linear::from_parts(w.clone(), b.clone()))
        .collect::<sigma_nn::Result<Vec<_>>>()?;
    Ok(Mlp::from_layers(layers, 0.0)?)
}

/// Eval-mode RNG stub: with `training = false` and zero dropout the forward
/// pass never draws randomness, but the `Mlp` API still wants a generator.
fn eval_rng() -> rand::rngs::StdRng {
    <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0)
}

/// Runs an exported MLP on a dense input (eval mode: ReLU between layers,
/// no dropout).
pub fn mlp_infer_dense(stack: &MlpWeights, input: &DenseMatrix) -> Result<DenseMatrix> {
    let mut mlp = rebuild(stack)?;
    Ok(mlp.forward(input, false, &mut eval_rng())?)
}

/// Runs an exported MLP whose first layer consumes a sparse input (the
/// `MLP_A(A)` path).
pub fn mlp_infer_sparse(stack: &MlpWeights, input: &CsrMatrix) -> Result<DenseMatrix> {
    let mut mlp = rebuild(stack)?;
    Ok(mlp.forward_sparse(input, false, &mut eval_rng())?)
}

/// Computes the full-graph embedding `H` of Eq. 4 from a model snapshot:
/// `H = MLP_H(δ·MLP_X(X) + (1−δ)·MLP_A(A))`.
pub fn compute_embeddings(
    model: &ModelSnapshot,
    features: &DenseMatrix,
    adjacency: &CsrMatrix,
) -> Result<DenseMatrix> {
    let h_a = mlp_infer_sparse(&model.mlp_a, adjacency)?;
    let h_x = mlp_infer_dense(&model.mlp_x, features)?;
    let combined = h_x.linear_combination(model.delta as f32, (1.0 - model.delta) as f32, &h_a)?;
    mlp_infer_dense(&model.mlp_h, &combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_inference_matches_manual_two_layer() {
        // y = relu(x·W1 + b1)·W2 + b2 computed by hand on tiny matrices.
        let w1 = DenseMatrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]).unwrap();
        let b1 = DenseMatrix::from_rows(&[&[0.1, -0.2]]).unwrap();
        let w2 = DenseMatrix::from_rows(&[&[2.0], &[1.0]]).unwrap();
        let b2 = DenseMatrix::from_rows(&[&[-1.0]]).unwrap();
        let stack = vec![(w1, b1), (w2, b2)];
        let x = DenseMatrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        // Layer 1: [1*1 + 1*0.5 + 0.1, 1*-1 + 1*2 - 0.2] = [1.6, 0.8]
        // ReLU: unchanged. Layer 2: 1.6*2 + 0.8*1 - 1 = 3.0.
        let y = mlp_infer_dense(&stack, &x).unwrap();
        assert_eq!(y.shape(), (1, 1));
        assert!((y.get(0, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sparse_first_layer_matches_dense_equivalent() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0)]).unwrap();
        let w1 = DenseMatrix::from_fn(3, 4, |i, j| (i + j) as f32 * 0.3 - 0.4);
        let b1 = DenseMatrix::from_fn(1, 4, |_, j| j as f32 * 0.05);
        let w2 = DenseMatrix::from_fn(4, 2, |i, j| (i as f32 - j as f32) * 0.2);
        let b2 = DenseMatrix::zeros(1, 2);
        let stack = vec![(w1, b1), (w2, b2)];
        let sparse = mlp_infer_sparse(&stack, &a).unwrap();
        let dense = mlp_infer_dense(&stack, &a.to_dense()).unwrap();
        for (s, d) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!((s - d).abs() < 1e-6);
        }
    }

    #[test]
    fn malformed_layer_shapes_are_rejected_not_truncated() {
        // Bias narrower than the weight's output width must error, not
        // silently bias only the first columns.
        let stack = vec![(DenseMatrix::zeros(2, 3), DenseMatrix::zeros(1, 2))];
        let x = DenseMatrix::zeros(4, 2);
        assert!(mlp_infer_dense(&stack, &x).is_err());
        // Non-chaining consecutive layers must error too.
        let stack = vec![
            (DenseMatrix::zeros(2, 3), DenseMatrix::zeros(1, 3)),
            (DenseMatrix::zeros(4, 2), DenseMatrix::zeros(1, 2)),
        ];
        assert!(mlp_infer_dense(&stack, &x).is_err());
    }
}
