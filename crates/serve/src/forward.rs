//! Eval-mode forward passes from exported weights.
//!
//! The serve-side encoder rebuilds real [`sigma_nn::Mlp`] stacks from the
//! snapshot's weights via [`sigma_nn::Mlp::from_layers`] and runs them in
//! eval mode (dropout inactive), so the resulting embeddings are identical
//! to the training-side eval forward *by construction* — the same layer
//! code executes, not a re-implementation of it. `Linear::from_parts`
//! validates every layer's weight/bias shapes on the way in.

use crate::Result;
use sigma::snapshot::{MlpWeights, ModelSnapshot};
use sigma_matrix::{CsrMatrix, DenseMatrix, DenseView};
use sigma_nn::{Linear, Mlp};

/// Rebuilds a runnable MLP from exported `(weight, bias)` pairs.
fn rebuild(stack: &MlpWeights) -> Result<Mlp> {
    let layers = stack
        .iter()
        .map(|(w, b)| Linear::from_parts(w.clone(), b.clone()))
        .collect::<sigma_nn::Result<Vec<_>>>()?;
    Ok(Mlp::from_layers(layers, 0.0)?)
}

/// Eval-mode RNG stub: with `training = false` and zero dropout the forward
/// pass never draws randomness, but the `Mlp` API still wants a generator.
fn eval_rng() -> rand::rngs::StdRng {
    <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(0)
}

/// Runs an exported MLP on a dense input (eval mode: ReLU between layers,
/// no dropout).
pub fn mlp_infer_dense(stack: &MlpWeights, input: &DenseMatrix) -> Result<DenseMatrix> {
    let mut mlp = rebuild(stack)?;
    Ok(mlp.forward(input, false, &mut eval_rng())?)
}

/// Runs an exported MLP whose first layer consumes a sparse input (the
/// `MLP_A(A)` path).
pub fn mlp_infer_sparse(stack: &MlpWeights, input: &CsrMatrix) -> Result<DenseMatrix> {
    let mut mlp = rebuild(stack)?;
    Ok(mlp.forward_sparse(input, false, &mut eval_rng())?)
}

/// Computes the full-graph embedding `H` of Eq. 4 from a model snapshot:
/// `H = MLP_H(δ·MLP_X(X) + (1−δ)·MLP_A(A))`.
pub fn compute_embeddings(
    model: &ModelSnapshot,
    features: &DenseMatrix,
    adjacency: &CsrMatrix,
) -> Result<DenseMatrix> {
    let h_a = mlp_infer_sparse(&model.mlp_a, adjacency)?;
    let h_x = mlp_infer_dense(&model.mlp_x, features)?;
    let combined = h_x.linear_combination(model.delta as f32, (1.0 - model.delta) as f32, &h_a)?;
    mlp_infer_dense(&model.mlp_h, &combined)
}

/// Computes the embedding rows of the listed nodes only.
///
/// `adjacency` must be the *full* `n × n` adjacency; the listed rows are
/// gathered out of it before the encoder runs. Every operation in the
/// encoder stack (GEMM, SpMM, bias, ReLU) is row-local with a fixed per-row
/// accumulation order, so the returned rows are **bitwise identical** to the
/// corresponding rows of [`compute_embeddings`] on the same inputs — the
/// property that lets the engine's incremental repair patch `H` rows in
/// place after an edge edit instead of re-encoding the whole graph.
pub fn compute_embeddings_rows(
    model: &ModelSnapshot,
    features: DenseView<'_>,
    adjacency: &CsrMatrix,
    rows: &[usize],
) -> Result<DenseMatrix> {
    let adj_rows = adjacency.gather_rows(rows)?;
    let feat_rows = features.select_rows(rows)?;
    let h_a = mlp_infer_sparse(&model.mlp_a, &adj_rows)?;
    let h_x = mlp_infer_dense(&model.mlp_x, &feat_rows)?;
    let combined = h_x.linear_combination(model.delta as f32, (1.0 - model.delta) as f32, &h_a)?;
    mlp_infer_dense(&model.mlp_h, &combined)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_inference_matches_manual_two_layer() {
        // y = relu(x·W1 + b1)·W2 + b2 computed by hand on tiny matrices.
        let w1 = DenseMatrix::from_rows(&[&[1.0, -1.0], &[0.5, 2.0]]).unwrap();
        let b1 = DenseMatrix::from_rows(&[&[0.1, -0.2]]).unwrap();
        let w2 = DenseMatrix::from_rows(&[&[2.0], &[1.0]]).unwrap();
        let b2 = DenseMatrix::from_rows(&[&[-1.0]]).unwrap();
        let stack = vec![(w1, b1), (w2, b2)];
        let x = DenseMatrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        // Layer 1: [1*1 + 1*0.5 + 0.1, 1*-1 + 1*2 - 0.2] = [1.6, 0.8]
        // ReLU: unchanged. Layer 2: 1.6*2 + 0.8*1 - 1 = 3.0.
        let y = mlp_infer_dense(&stack, &x).unwrap();
        assert_eq!(y.shape(), (1, 1));
        assert!((y.get(0, 0) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn sparse_first_layer_matches_dense_equivalent() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (2, 2, 1.0)]).unwrap();
        let w1 = DenseMatrix::from_fn(3, 4, |i, j| (i + j) as f32 * 0.3 - 0.4);
        let b1 = DenseMatrix::from_fn(1, 4, |_, j| j as f32 * 0.05);
        let w2 = DenseMatrix::from_fn(4, 2, |i, j| (i as f32 - j as f32) * 0.2);
        let b2 = DenseMatrix::zeros(1, 2);
        let stack = vec![(w1, b1), (w2, b2)];
        let sparse = mlp_infer_sparse(&stack, &a).unwrap();
        let dense = mlp_infer_dense(&stack, &a.to_dense()).unwrap();
        for (s, d) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!((s - d).abs() < 1e-6);
        }
    }

    #[test]
    fn row_sliced_embeddings_match_the_full_encode_bitwise() {
        use sigma::snapshot::ModelSnapshot;
        use sigma::AggregatorKind;
        let n = 12usize;
        let f = 5usize;
        let hidden = 7usize;
        let classes = 3usize;
        let layer = |rows: usize, cols: usize, scale: f32| {
            (
                DenseMatrix::from_fn(rows, cols, move |i, j| {
                    ((i * 31 + j * 17) % 13) as f32 * scale - 0.4
                }),
                DenseMatrix::from_fn(1, cols, move |_, j| j as f32 * 0.03 - 0.1),
            )
        };
        let model = ModelSnapshot {
            delta: 0.55,
            alpha: 0.3,
            alpha_raw: None,
            dropout: 0.0,
            aggregator: AggregatorKind::SimRank,
            operator: None,
            mlp_a: vec![layer(n, hidden, 0.11), layer(hidden, hidden, 0.07)],
            mlp_x: vec![layer(f, hidden, 0.09), layer(hidden, hidden, 0.05)],
            mlp_h: vec![layer(hidden, classes, 0.13)],
        };
        let features = DenseMatrix::from_fn(n, f, |i, j| ((i * 7 + j) % 5) as f32 * 0.3 - 0.6);
        let adjacency = CsrMatrix::from_triplets(
            n,
            n,
            &(0..n)
                .flat_map(|i| [(i, (i + 1) % n, 1.0f32), ((i + 1) % n, i, 1.0f32)])
                .collect::<Vec<_>>(),
        )
        .unwrap();
        let full = compute_embeddings(&model, &features, &adjacency).unwrap();
        let rows = [0usize, 3, 4, 11];
        let sliced = compute_embeddings_rows(&model, features.view(), &adjacency, &rows).unwrap();
        assert_eq!(sliced.shape(), (rows.len(), classes));
        for (i, &r) in rows.iter().enumerate() {
            let full_bits: Vec<u32> = full.row(r).iter().map(|v| v.to_bits()).collect();
            let sliced_bits: Vec<u32> = sliced.row(i).iter().map(|v| v.to_bits()).collect();
            assert_eq!(full_bits, sliced_bits, "H row {r} is not bitwise equal");
        }
    }

    #[test]
    fn malformed_layer_shapes_are_rejected_not_truncated() {
        // Bias narrower than the weight's output width must error, not
        // silently bias only the first columns.
        let stack = vec![(DenseMatrix::zeros(2, 3), DenseMatrix::zeros(1, 2))];
        let x = DenseMatrix::zeros(4, 2);
        assert!(mlp_infer_dense(&stack, &x).is_err());
        // Non-chaining consecutive layers must error too.
        let stack = vec![
            (DenseMatrix::zeros(2, 3), DenseMatrix::zeros(1, 3)),
            (DenseMatrix::zeros(4, 2), DenseMatrix::zeros(1, 2)),
        ];
        assert!(mlp_infer_dense(&stack, &x).is_err());
    }
}
