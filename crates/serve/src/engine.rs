//! The online inference engine.
//!
//! [`InferenceEngine::new`] takes a [`ServeSnapshot`] and precomputes the
//! full-graph embedding `H = MLP_H(δ·MLP_X(X) + (1−δ)·MLP_A(A))` once. A
//! query for a batch of `b` nodes then costs `O(b·k·f)`: the engine gathers
//! the batch's rows of the constant top-k operator `S` with
//! `CsrMatrix::spmm_rows` and blends them with the local embedding
//! (`Z_u = (1−α)·(S·H)_u + α·H_u`, paper Eq. 5–6) — no full-graph SpMM, no
//! MLP re-execution. Aggregated rows `Ẑ_u` are memoised in a bounded LRU
//! cache, and large batches are chunked across the shared thread pool.
//!
//! The engine also consumes `sigma_simrank::dynamic` edge updates: edits
//! invalidate exactly the cached rows whose operator entries can change
//! (endpoints, their neighbours, and every row referencing them), and a
//! refreshed operator from [`sigma_simrank::DynamicSimRank`] can be swapped
//! in without rebuilding the engine. On top of the full swap,
//! [`InferenceEngine::repair_from`] performs **incremental repair**: it asks
//! the maintainer for the exact set of operator rows an edit trace changed,
//! patches those rows (and the `H` rows of the edited nodes — the encoder is
//! row-local, so the patch is bitwise identical to a full re-encode) in
//! place, and evicts only the affected cache entries instead of dropping the
//! whole cache with an operator-epoch bump.
//!
//! Concurrency comes from the process-wide [`sigma_parallel::ThreadPool`]
//! shared with the training kernels — the engine no longer owns threads of
//! its own. Large batches are chunked and fanned out as scoped tasks; the
//! [`EngineConfig::workers`] knob bounds how many chunks run concurrently
//! and is validated against the shared pool's size at construction.
//! Maintenance calls ([`InferenceEngine::install_operator`],
//! [`InferenceEngine::repair_from`]) may race queries freely, but must not
//! race each other — run them from a single maintenance thread.

use crate::cache::LruCache;
use crate::forward::{compute_embeddings, compute_embeddings_rows};
use crate::snapshot::ServeSnapshot;
use crate::{Result, ServeError};
use sigma::snapshot::ModelSnapshot;
use sigma_matrix::{CsrMatrix, DenseMatrix};
use sigma_obs::{Counter, Histogram, Registry, Stopwatch};
use sigma_parallel::ThreadPool;
use sigma_simrank::{DynamicSimRank, EdgeUpdate, RepairOutcome};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Tuning knobs of the [`InferenceEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum number of aggregated rows (`Ẑ_u`) kept in the LRU cache
    /// (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum batch chunks served concurrently on the shared
    /// [`sigma_parallel::ThreadPool`]. `0` means *auto*: use the pool's full
    /// capacity. Explicit values are validated against the pool size at
    /// engine construction ([`ServeError::WorkerConfig`]).
    pub workers: usize,
    /// Batches larger than this are split into chunks of at most this many
    /// nodes and fanned out across the shared pool. Must be non-zero.
    pub max_chunk: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cache_capacity: 4096,
            workers: 0,
            max_chunk: 256,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration against the shared pool's current size.
    ///
    /// Rejects zero-capacity setups — `max_chunk == 0` (chunks could hold no
    /// nodes) and `workers` exceeding the shared pool (the extra workers
    /// could never run concurrently, silently degrading to less parallelism
    /// than requested) — with a typed [`ServeError::WorkerConfig`] instead
    /// of silently serving inline.
    ///
    /// The check is point-in-time: the global pool can be resized later
    /// (e.g. by `sigma_parallel::set_global_threads`), in which case
    /// [`EngineConfig::effective_workers`] clamps to the width available at
    /// serve time — safe either way, since results are identical at any
    /// width.
    pub fn validate(&self, pool: &ThreadPool) -> Result<()> {
        let pool_threads = pool.num_threads();
        if self.max_chunk == 0 {
            return Err(ServeError::WorkerConfig {
                workers: self.workers,
                pool_threads,
                reason: "max_chunk must be non-zero (a zero-capacity chunk can serve no nodes)",
            });
        }
        if self.workers > pool_threads {
            return Err(ServeError::WorkerConfig {
                workers: self.workers,
                pool_threads,
                reason: "workers exceed the shared pool size (set SIGMA_NUM_THREADS or \
                         sigma_parallel::set_global_threads, or lower workers; 0 = auto)",
            });
        }
        Ok(())
    }

    /// The concurrent-chunk bound actually used at serve time: the explicit
    /// `workers` value, or the shared pool's capacity when `workers == 0`.
    pub fn effective_workers(&self, pool: &ThreadPool) -> usize {
        if self.workers == 0 {
            pool.num_threads()
        } else {
            self.workers.min(pool.num_threads())
        }
    }
}

/// The served answer for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The queried node.
    pub node: usize,
    /// Class logits (`Z_u`, Eq. 6).
    pub logits: Vec<f32>,
    /// `argmax` of the logits.
    pub label: usize,
    /// Whether the aggregated row was served from the cache.
    pub cached: bool,
    /// Whether pending edge updates may have invalidated this node's
    /// operator row (served value may be stale until the next refresh).
    pub stale: bool,
}

/// Monotone serving counters, read with [`InferenceEngine::stats`].
///
/// # Tearing semantics
///
/// A snapshot is assembled from independent relaxed loads of live counters,
/// **not** taken under any lock. Two guarantees hold:
///
/// * **Per-counter monotonicity.** Each field is an actually-attained value
///   of its counter, and successive snapshots never observe a field
///   decreasing.
/// * **No cross-counter consistency.** A snapshot taken while queries are in
///   flight may *tear* between fields: a batch bumps `cache_misses` before
///   `nodes_served`, so derived identities (e.g. `cache_hits + cache_misses
///   == nodes_served`) can be transiently off by in-flight requests. They
///   hold exactly once the engine quiesces.
///
/// This is deliberate: serving never pays a stats lock. Tests that assert
/// cross-field identities must stop issuing queries first (see
/// `stats_tearing.rs` in this crate's test suite).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total nodes served.
    pub nodes_served: u64,
    /// Total batches served.
    pub batches_served: u64,
    /// Aggregated rows found in the cache.
    pub cache_hits: u64,
    /// Aggregated rows recomputed via the row-sliced kernel.
    pub cache_misses: u64,
    /// Cached rows displaced by LRU capacity pressure (distinct from
    /// `rows_invalidated`, which counts correctness-driven drops).
    pub cache_evictions: u64,
    /// Cached rows dropped by edge-update invalidation or repair.
    pub rows_invalidated: u64,
    /// Operator swap-ins from a refreshed maintainer (whole-operator path;
    /// drops the entire cache).
    pub operator_refreshes: u64,
    /// Incremental repairs applied by [`InferenceEngine::repair_from`]
    /// (row-patch path; keeps unaffected cache entries).
    pub operator_repairs: u64,
    /// Operator rows patched in place across all repairs.
    pub rows_repaired: u64,
    /// Embedding (`H`) rows recomputed in place across all repairs.
    pub embedding_rows_repaired: u64,
    /// Dirty seed pairs re-pushed by the maintainer across all incremental
    /// repairs driven through [`InferenceEngine::repair_from`].
    pub repair_dirty_seeds: u64,
}

/// The engine's live counters and latency histograms, built on `sigma_obs`
/// primitives.
///
/// The counters are always functional (they are plain relaxed atomics, so
/// [`InferenceEngine::stats`] works identically with the `obs` feature
/// off); when `obs` is enabled they are additionally registered with the
/// process-wide [`Registry`] under `sigma_serve_*` names, where several
/// engines in one process merge by summation. The latency histograms are
/// only *recorded into* when `obs` is on — with it off the stopwatch reads
/// compile to nothing and the histograms stay empty.
struct EngineMetrics {
    nodes_served: Arc<Counter>,
    batches_served: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    rows_invalidated: Arc<Counter>,
    operator_refreshes: Arc<Counter>,
    operator_repairs: Arc<Counter>,
    rows_repaired: Arc<Counter>,
    embedding_rows_repaired: Arc<Counter>,
    repair_dirty_seeds: Arc<Counter>,
    /// Wall time of [`InferenceEngine::predict`] calls, nanoseconds.
    predict_ns: Arc<Histogram>,
    /// Wall time of [`InferenceEngine::predict_batch`] calls, nanoseconds.
    predict_batch_ns: Arc<Histogram>,
}

impl EngineMetrics {
    fn new() -> Self {
        let metrics = Self {
            nodes_served: Arc::new(Counter::new()),
            batches_served: Arc::new(Counter::new()),
            cache_hits: Arc::new(Counter::new()),
            cache_misses: Arc::new(Counter::new()),
            cache_evictions: Arc::new(Counter::new()),
            rows_invalidated: Arc::new(Counter::new()),
            operator_refreshes: Arc::new(Counter::new()),
            operator_repairs: Arc::new(Counter::new()),
            rows_repaired: Arc::new(Counter::new()),
            embedding_rows_repaired: Arc::new(Counter::new()),
            repair_dirty_seeds: Arc::new(Counter::new()),
            predict_ns: Arc::new(Histogram::new()),
            predict_batch_ns: Arc::new(Histogram::new()),
        };
        if sigma_obs::ENABLED {
            let registry = Registry::global();
            registry.register_arc_counter(
                "sigma_serve_nodes_served_total",
                "nodes served across all batches",
                &metrics.nodes_served,
            );
            registry.register_arc_counter(
                "sigma_serve_batches_served_total",
                "serve_batch calls completed",
                &metrics.batches_served,
            );
            registry.register_arc_counter(
                "sigma_serve_cache_hits_total",
                "aggregated rows served from the LRU cache",
                &metrics.cache_hits,
            );
            registry.register_arc_counter(
                "sigma_serve_cache_misses_total",
                "aggregated rows recomputed via the row-sliced kernel",
                &metrics.cache_misses,
            );
            registry.register_arc_counter(
                "sigma_serve_cache_evictions_total",
                "cached rows displaced by LRU capacity pressure",
                &metrics.cache_evictions,
            );
            registry.register_arc_counter(
                "sigma_serve_rows_invalidated_total",
                "cached rows dropped by edge-update invalidation or repair",
                &metrics.rows_invalidated,
            );
            registry.register_arc_counter(
                "sigma_serve_operator_refreshes_total",
                "whole-operator swap-ins (cache-dropping path)",
                &metrics.operator_refreshes,
            );
            registry.register_arc_counter(
                "sigma_serve_operator_repairs_total",
                "incremental row-patch repairs applied",
                &metrics.operator_repairs,
            );
            registry.register_arc_counter(
                "sigma_serve_rows_repaired_total",
                "operator rows patched in place across all repairs",
                &metrics.rows_repaired,
            );
            registry.register_arc_counter(
                "sigma_serve_embedding_rows_repaired_total",
                "embedding rows re-encoded in place across all repairs",
                &metrics.embedding_rows_repaired,
            );
            registry.register_arc_counter(
                "sigma_serve_repair_dirty_seeds_total",
                "dirty seed pairs re-pushed by the maintainer during repairs",
                &metrics.repair_dirty_seeds,
            );
            registry.register_arc_histogram(
                "sigma_serve_predict_ns",
                "single-node predict latency in nanoseconds",
                &metrics.predict_ns,
            );
            registry.register_arc_histogram(
                "sigma_serve_predict_batch_ns",
                "predict_batch latency in nanoseconds",
                &metrics.predict_batch_ns,
            );
        }
        metrics
    }

    /// Independent relaxed loads; see [`EngineStats`] for the exact tearing
    /// guarantees.
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            nodes_served: self.nodes_served.get(),
            batches_served: self.batches_served.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_evictions: self.cache_evictions.get(),
            rows_invalidated: self.rows_invalidated.get(),
            operator_refreshes: self.operator_refreshes.get(),
            operator_repairs: self.operator_repairs.get(),
            rows_repaired: self.rows_repaired.get(),
            embedding_rows_repaired: self.embedding_rows_repaired.get(),
            repair_dirty_seeds: self.repair_dirty_seeds.get(),
        }
    }
}

/// The aggregation operator plus its transposed sparsity pattern (used to
/// find the rows that reference an updated node during invalidation).
struct OperatorState {
    matrix: CsrMatrix,
    reverse: CsrMatrix,
}

impl OperatorState {
    fn new(matrix: CsrMatrix) -> Self {
        let reverse = matrix.transpose();
        Self { matrix, reverse }
    }
}

/// Everything a query must observe as one consistent unit: the embedding,
/// the adjacency it was encoded from, and the aggregation operator. Batches
/// take the read side; operator swaps and incremental repairs take the
/// write side, so a batch never sees a half-patched state.
struct ServingState {
    /// Precomputed full-graph embedding `H` (`n × C`).
    embeddings: DenseMatrix,
    /// Adjacency the embedding was computed from, kept in sync by repairs;
    /// also the source of first-order invalidation regions.
    adjacency: CsrMatrix,
    /// Constant aggregation operator (`None` = SIGMA w/o S: `Ẑ = H`).
    operator: Option<OperatorState>,
}

struct Shared {
    state: RwLock<ServingState>,
    /// Exported encoder weights, retained so repairs can re-encode the `H`
    /// rows of edited nodes.
    model: ModelSnapshot,
    /// Node features `X`, the dense half of the encoder input.
    features: DenseMatrix,
    /// Effective local/global balance `α`.
    alpha: f32,
    /// Node and class counts (immutable over the engine's lifetime).
    num_nodes: usize,
    num_classes: usize,
    /// Bounded memo of aggregated rows.
    cache: Mutex<LruCache>,
    /// Nodes whose operator rows may be stale w.r.t. applied edge updates.
    stale: Mutex<HashSet<usize>>,
    /// Operator generation counter, bumped whenever the serving state is
    /// mutated ([`InferenceEngine::install_operator`],
    /// [`InferenceEngine::repair_from`]). Rows computed against generation
    /// `g` may only enter the cache while the generation is still `g` —
    /// otherwise a batch racing a swap could cache old-operator rows after
    /// the swap's cache clear (or a repair's targeted eviction).
    epoch: AtomicU64,
    stats: EngineMetrics,
}

/// Online node-classification server for a snapshotted SIGMA model.
pub struct InferenceEngine {
    shared: Arc<Shared>,
    config: EngineConfig,
}

/// What one [`InferenceEngine::repair_from`] call changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineRepair {
    /// Operator rows patched in place (sorted). On a full refresh this
    /// lists every row.
    pub operator_rows: Vec<usize>,
    /// Embedding (`H`) rows re-encoded in place (sorted): the nodes whose
    /// adjacency rows differed from the engine's.
    pub embedding_rows: Vec<usize>,
    /// Cached `Ẑ` rows invalidated (sorted): the patched operator rows plus
    /// every row whose operator entries reference a re-encoded node. On a
    /// full refresh the whole cache is dropped instead and this is empty.
    pub invalidated_rows: Vec<usize>,
    /// Whether the engine fell back to a whole-operator install (first sync
    /// with a maintainer that had no prior state).
    pub full_refresh: bool,
}

impl std::fmt::Debug for InferenceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceEngine")
            .field("num_nodes", &self.num_nodes())
            .field("num_classes", &self.num_classes())
            .field("config", &self.config)
            .field(
                "workers",
                &self.config.effective_workers(ThreadPool::global()),
            )
            .finish()
    }
}

impl InferenceEngine {
    /// Builds an engine from a snapshot: validates the configuration against
    /// the shared thread pool and runs the encoder once over the full graph.
    pub fn new(snapshot: &ServeSnapshot, config: EngineConfig) -> Result<Self> {
        config.validate(ThreadPool::global())?;
        snapshot.model.validate()?;
        let embeddings =
            compute_embeddings(&snapshot.model, &snapshot.features, &snapshot.adjacency)?;
        let operator = snapshot.model.operator.clone().map(OperatorState::new);
        let num_nodes = embeddings.rows();
        let num_classes = embeddings.cols();
        let shared = Arc::new(Shared {
            state: RwLock::new(ServingState {
                embeddings,
                adjacency: snapshot.adjacency.clone(),
                operator,
            }),
            model: snapshot.model.clone(),
            features: snapshot.features.clone(),
            alpha: snapshot.model.effective_alpha() as f32,
            num_nodes,
            num_classes,
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            stale: Mutex::new(HashSet::new()),
            epoch: AtomicU64::new(0),
            stats: EngineMetrics::new(),
        });
        Ok(Self { shared, config })
    }

    /// Number of nodes the engine serves.
    pub fn num_nodes(&self) -> usize {
        self.shared.num_nodes
    }

    /// Number of classes per prediction.
    pub fn num_classes(&self) -> usize {
        self.shared.num_classes
    }

    /// The effective `α` blended at serve time.
    pub fn alpha(&self) -> f32 {
        self.shared.alpha
    }

    /// A copy of the aggregation operator currently served (`None` when the
    /// engine runs the operator-less `Ẑ = H` variant). Observability hook
    /// used by the differential test harness.
    pub fn operator(&self) -> Option<CsrMatrix> {
        self.shared
            .state
            .read()
            .expect("serving state poisoned")
            .operator
            .as_ref()
            .map(|state| state.matrix.clone())
    }

    /// Serves a single node.
    pub fn predict(&self, node: usize) -> Result<Prediction> {
        let sw = Stopwatch::start();
        let mut batch = serve_batch(&self.shared, &[node])?;
        if sigma_obs::ENABLED {
            self.shared.stats.predict_ns.record(sw.elapsed_ns());
        }
        Ok(batch.pop().expect("one prediction per queried node"))
    }

    /// Serves a batch of nodes, preserving query order.
    ///
    /// Batches larger than [`EngineConfig::max_chunk`] are split into chunks
    /// and fanned out as scoped tasks on the shared
    /// [`sigma_parallel::ThreadPool`], at most
    /// [`EngineConfig::effective_workers`] chunks in flight; smaller batches
    /// are served on the caller's thread. Chunks are grouped into tasks by
    /// **operator mass** (each queried node costs its operator row's nnz)
    /// through [`sigma_parallel::partition_by_weight`], so a batch that
    /// happens to concentrate hub rows in one region does not serialise one
    /// worker. Predictions are assembled in chunk order, so the grouping
    /// never affects results.
    pub fn predict_batch(&self, nodes: &[usize]) -> Result<Vec<Prediction>> {
        let sw = Stopwatch::start();
        let result = self.predict_batch_inner(nodes);
        if sigma_obs::ENABLED {
            self.shared.stats.predict_batch_ns.record(sw.elapsed_ns());
        }
        result
    }

    /// [`InferenceEngine::predict_batch`] minus the latency bookkeeping.
    fn predict_batch_inner(&self, nodes: &[usize]) -> Result<Vec<Prediction>> {
        let pool = ThreadPool::global();
        let concurrency = self.config.effective_workers(pool);
        if nodes.len() <= self.config.max_chunk || concurrency <= 1 {
            return serve_batch(&self.shared, nodes);
        }
        let chunks: Vec<&[usize]> = nodes.chunks(self.config.max_chunk).collect();
        // Per-chunk cost estimate: the aggregation SpMM dominates, and its
        // work is the sum of the queried rows' operator nnz (plus one unit
        // per node for the cache probe / blend). Out-of-range nodes weigh
        // one unit here and are rejected by `serve_batch` as before.
        let chunk_weights: Vec<usize> = {
            let state = self.shared.state.read().expect("serving state poisoned");
            chunks
                .iter()
                .map(|chunk| {
                    chunk
                        .iter()
                        .map(|&node| match state.operator.as_ref() {
                            Some(op) if node < op.matrix.rows() => 1 + op.matrix.row_nnz(node),
                            _ => 1,
                        })
                        .sum()
                })
                .collect()
        };
        let groups =
            sigma_parallel::partition_by_weight(&chunk_weights, concurrency.min(chunks.len()));
        let mut results: Vec<Option<Result<Vec<Prediction>>>> =
            (0..chunks.len()).map(|_| None).collect();
        {
            let shared = &self.shared;
            let mut rest: &mut [Option<Result<Vec<Prediction>>>] = &mut results;
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(groups.len());
            for group in groups {
                let (slot_group, tail) = rest.split_at_mut(group.len());
                rest = tail;
                let chunk_group = &chunks[group];
                tasks.push(Box::new(move || {
                    for (chunk, slot) in chunk_group.iter().zip(slot_group.iter_mut()) {
                        *slot = Some(serve_batch(shared, chunk));
                    }
                }));
            }
            pool.run(tasks);
        }
        let mut out = Vec::with_capacity(nodes.len());
        for slot in results {
            out.extend(slot.expect("every chunk task ran to completion")?);
        }
        Ok(out)
    }

    /// Applies a stream of edge updates to the staleness tracker.
    ///
    /// Marks the first-order affected region (endpoints plus their
    /// neighbours at snapshot time) stale, and evicts every cached row whose
    /// operator entries reference an affected node. Returns the number of
    /// cached rows invalidated.
    pub fn apply_edge_updates(&self, updates: &[EdgeUpdate]) -> Result<usize> {
        let n = self.num_nodes();
        let mut affected: HashSet<usize> = HashSet::new();
        {
            let state = self.shared.state.read().expect("serving state poisoned");
            for &update in updates {
                let (u, v) = match update {
                    EdgeUpdate::Insert(u, v) | EdgeUpdate::Delete(u, v) => (u, v),
                };
                if u >= n || v >= n {
                    return Err(ServeError::InvalidQuery {
                        node: u.max(v),
                        num_nodes: n,
                    });
                }
                for endpoint in [u, v] {
                    affected.insert(endpoint);
                    for (nb, _) in state.adjacency.row_iter(endpoint) {
                        affected.insert(nb);
                    }
                }
            }
        }
        Ok(self.invalidate_region(&affected))
    }

    /// Synchronises with a [`DynamicSimRank`] maintainer.
    ///
    /// If the maintainer's staleness budget is exhausted, its refreshed
    /// operator is swapped in (clearing the cache and staleness set) and
    /// `true` is returned. Otherwise the maintainer's affected-node set is
    /// marked stale here, bounding how wrong served rows can be, and `false`
    /// is returned. See [`InferenceEngine::repair_from`] for the incremental
    /// alternative that stays exact without dropping the cache.
    pub fn sync_with(&self, maintainer: &mut DynamicSimRank) -> Result<bool> {
        if maintainer.needs_refresh() {
            let operator = maintainer.operator()?;
            self.install_operator(operator)?;
            Ok(true)
        } else {
            let affected: HashSet<usize> = maintainer.affected_nodes().into_iter().collect();
            self.invalidate_region(&affected);
            Ok(false)
        }
    }

    /// Incrementally repairs the served state from a [`DynamicSimRank`]
    /// maintainer after graph edits, instead of swapping the whole operator.
    ///
    /// Drives [`DynamicSimRank::repair`] and then patches, in place and
    /// under one write lock:
    ///
    /// * the operator rows the maintainer reports as changed (spliced with
    ///   `CsrMatrix::replace_rows`),
    /// * the `H` rows of every node whose adjacency row differs from the
    ///   engine's copy (the encoder is row-local, so the re-encoded rows are
    ///   bitwise identical to a full re-encode),
    /// * the engine's adjacency itself.
    ///
    /// Afterwards only the affected cache entries — patched operator rows
    /// plus rows referencing a re-encoded node — are evicted; every other
    /// cached row is provably still exact, so a warm cache survives the
    /// edit. The staleness set is cleared: the engine is fully consistent
    /// with the maintainer's graph, bitwise identical to an engine rebuilt
    /// from scratch on it.
    ///
    /// The engine's operator must have come from the same maintainer (or an
    /// equal one): row patches are relative to the served operator. The
    /// first call against a maintainer with no prior state falls back to a
    /// whole-operator install (`full_refresh` in the returned report).
    pub fn repair_from(&self, maintainer: &mut DynamicSimRank) -> Result<EngineRepair> {
        let n = self.num_nodes();
        let graph_nodes = maintainer.graph().num_nodes();
        if graph_nodes != n {
            return Err(ServeError::OperatorMismatch {
                got: (graph_nodes, graph_nodes),
                expected: n,
            });
        }
        let outcome = maintainer.repair()?;
        let has_operator = self
            .shared
            .state
            .read()
            .expect("serving state poisoned")
            .operator
            .is_some();
        // Resolve the operator payload before taking the write lock (the
        // maintainer materialises rows lazily).
        let (operator_rows, operator_patch, full_operator) = match (&outcome, has_operator) {
            (RepairOutcome::Patched(repair), true) => {
                let rows = repair.changed_rows.clone();
                let patch = maintainer.operator_rows(&rows)?;
                (rows, Some(patch), None)
            }
            (RepairOutcome::FullRefresh, true) => {
                let operator = maintainer.operator()?;
                if operator.shape() != (n, n) {
                    return Err(ServeError::OperatorMismatch {
                        got: operator.shape(),
                        expected: n,
                    });
                }
                ((0..n).collect(), None, Some(operator))
            }
            // Operator-less engine (`Ẑ = H`): only the embedding needs care.
            (_, false) => (Vec::new(), None, None),
        };
        let adjacency_new = maintainer.graph().to_adjacency();

        // Re-encode exactly the nodes whose adjacency rows differ. The diff
        // is against the engine's own copy, so it also catches edits the
        // maintainer absorbed before this engine ever synced. Both the diff
        // and the re-encode run *before* the write lock: the encoder
        // dispatches onto the shared pool, and the pool's help-first join
        // may hand this thread a queued serve-batch task that needs the
        // state read lock — dispatching while holding the write lock would
        // self-deadlock. (Maintenance calls are externally serialised, and
        // queries never mutate the state, so the diff cannot go stale
        // between here and the write section below.)
        let embedding_rows = {
            let state = self.shared.state.read().expect("serving state poisoned");
            changed_adjacency_rows(&state.adjacency, &adjacency_new)
        };
        let patched_h = if embedding_rows.is_empty() {
            None
        } else {
            Some(compute_embeddings_rows(
                &self.shared.model,
                &self.shared.features,
                &adjacency_new,
                &embedding_rows,
            )?)
        };

        let full_refresh = full_operator.is_some();
        let mut evicted = 0usize;
        let invalidated_rows: Vec<usize>;
        {
            let mut state = self.write_state();
            if let Some(patched_h) = &patched_h {
                for (i, &row) in embedding_rows.iter().enumerate() {
                    state
                        .embeddings
                        .row_mut(row)
                        .copy_from_slice(patched_h.row(i));
                }
            }
            state.adjacency = adjacency_new;
            if let Some(operator) = full_operator {
                state.operator = Some(OperatorState::new(operator));
            } else if let Some(patch) = operator_patch {
                let operator = state
                    .operator
                    .as_mut()
                    .expect("patch path implies an operator");
                operator.matrix = operator.matrix.replace_rows(&operator_rows, &patch)?;
                operator.reverse = operator.matrix.transpose();
            }
            // Bump the generation while still holding the write lock, so an
            // in-flight batch that computed rows against the pre-repair
            // state observes a changed epoch and skips caching them.
            self.shared.epoch.fetch_add(1, Ordering::SeqCst);

            // Invalidation set: rows whose own operator row was patched,
            // plus rows whose `Ẑ` reads a re-encoded `H` row.
            let mut invalid: HashSet<usize> = operator_rows.iter().copied().collect();
            match state.operator.as_ref() {
                Some(operator) => {
                    for &node in &embedding_rows {
                        for (row, _) in operator.reverse.row_iter(node) {
                            invalid.insert(row);
                        }
                    }
                }
                // Without an operator a cached row is `H` itself.
                None => invalid.extend(embedding_rows.iter().copied()),
            }
            let mut sorted: Vec<usize> = invalid.into_iter().collect();
            sorted.sort_unstable();
            invalidated_rows = sorted;

            // Evict while still holding the write lock (queries acquire the
            // cache lock only inside or after their state read section, so
            // the state → cache order is deadlock-free): once the patched
            // state is visible, no stale `Ẑ` row can be served against it.
            let mut cache = self.shared.cache.lock().expect("cache lock poisoned");
            if full_refresh {
                cache.clear();
            } else {
                for &row in &invalidated_rows {
                    if cache.invalidate(row) {
                        evicted += 1;
                    }
                }
            }
        }
        self.shared
            .stale
            .lock()
            .expect("stale lock poisoned")
            .clear();
        let stats = &self.shared.stats;
        stats.rows_invalidated.add(evicted as u64);
        stats
            .embedding_rows_repaired
            .add(embedding_rows.len() as u64);
        if let RepairOutcome::Patched(report) = &outcome {
            stats.repair_dirty_seeds.add(report.dirty_seeds as u64);
        }
        if full_refresh {
            stats.operator_refreshes.inc();
        } else {
            stats.operator_repairs.inc();
            stats.rows_repaired.add(operator_rows.len() as u64);
        }
        Ok(EngineRepair {
            operator_rows,
            embedding_rows,
            invalidated_rows: if full_refresh {
                Vec::new()
            } else {
                invalidated_rows
            },
            full_refresh,
        })
    }

    /// Replaces the aggregation operator (e.g. after a SimRank refresh on an
    /// updated graph), clearing the row cache and the staleness set.
    pub fn install_operator(&self, operator: CsrMatrix) -> Result<()> {
        let n = self.num_nodes();
        if operator.shape() != (n, n) {
            return Err(ServeError::OperatorMismatch {
                got: operator.shape(),
                expected: n,
            });
        }
        let new_state = OperatorState::new(operator);
        {
            let mut state = self.write_state();
            state.operator = Some(new_state);
            // Bump the generation while still holding the write lock, so any
            // in-flight batch that read the old operator observes a changed
            // epoch and skips caching its rows.
            self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        }
        self.shared
            .cache
            .lock()
            .expect("cache lock poisoned")
            .clear();
        self.shared
            .stale
            .lock()
            .expect("stale lock poisoned")
            .clear();
        self.shared.stats.operator_refreshes.inc();
        Ok(())
    }

    /// Nodes currently marked stale, sorted by id.
    pub fn stale_nodes(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .shared
            .stale
            .lock()
            .expect("stale lock poisoned")
            .iter()
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of aggregated rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.shared.cache.lock().expect("cache lock poisoned").len()
    }

    /// A point-in-time copy of the serving counters.
    ///
    /// Lock-free: see [`EngineStats`] for the exact guarantees — each field
    /// is individually monotone and exact, but fields may tear against each
    /// other while queries are in flight.
    pub fn stats(&self) -> EngineStats {
        self.shared.stats.snapshot()
    }

    /// Acquires the serving-state write lock without ever *queueing* behind
    /// active readers.
    ///
    /// A serve batch holds the read lock while dispatching onto the shared
    /// pool, and the pool's help-first join can hand that thread another
    /// batch task which re-acquires the read lock. Recursive reads are only
    /// safe while no writer is waiting (std's `RwLock` may be
    /// writer-preferring), so maintenance writers spin on `try_write`
    /// instead of blocking — batches are short and maintenance is rare.
    fn write_state(&self) -> std::sync::RwLockWriteGuard<'_, ServingState> {
        loop {
            match self.shared.state.try_write() {
                Ok(guard) => return guard,
                Err(std::sync::TryLockError::WouldBlock) => std::thread::yield_now(),
                Err(std::sync::TryLockError::Poisoned(_)) => panic!("serving state poisoned"),
            }
        }
    }

    /// Marks `affected` nodes stale and evicts every cached row referencing
    /// them; returns the number of evicted rows.
    fn invalidate_region(&self, affected: &HashSet<usize>) -> usize {
        if affected.is_empty() {
            return 0;
        }
        // Rows whose operator entries touch an affected column.
        let mut rows: HashSet<usize> = affected.iter().copied().collect();
        {
            let state = self.shared.state.read().expect("serving state poisoned");
            if let Some(operator) = state.operator.as_ref() {
                for &a in affected {
                    if a < operator.reverse.rows() {
                        for (row, _) in operator.reverse.row_iter(a) {
                            rows.insert(row);
                        }
                    }
                }
            }
        }
        let mut invalidated = 0usize;
        {
            let mut cache = self.shared.cache.lock().expect("cache lock poisoned");
            for &row in &rows {
                if cache.invalidate(row) {
                    invalidated += 1;
                }
            }
        }
        {
            let mut stale = self.shared.stale.lock().expect("stale lock poisoned");
            stale.extend(rows.iter().copied());
        }
        self.shared.stats.rows_invalidated.add(invalidated as u64);
        invalidated
    }
}

/// Rows on which two equal-shape CSR matrices differ (indices or values).
fn changed_adjacency_rows(old: &CsrMatrix, new: &CsrMatrix) -> Vec<usize> {
    debug_assert_eq!(old.shape(), new.shape());
    (0..old.rows())
        .filter(|&r| {
            let (os, oe) = (old.indptr()[r], old.indptr()[r + 1]);
            let (ns, ne) = (new.indptr()[r], new.indptr()[r + 1]);
            old.indices()[os..oe] != new.indices()[ns..ne]
                || old.values()[os..oe] != new.values()[ns..ne]
        })
        .collect()
}

/// Serves one batch: cache lookups, one row-sliced SpMM for the misses,
/// Eq. 6 blending, staleness tagging.
fn serve_batch(shared: &Shared, nodes: &[usize]) -> Result<Vec<Prediction>> {
    let n = shared.num_nodes;
    let classes = shared.num_classes;
    for &node in nodes {
        if node >= n {
            return Err(ServeError::InvalidQuery { node, num_nodes: n });
        }
    }
    let _span = sigma_obs::span!("serve_batch", nodes.len());

    // Plan and compute under ONE read of the serving state: the cache
    // probe, the row-sliced SpMM for every miss, and the `H` rows blended
    // below. Probing inside the guard matters — a repair patches `H` and
    // evicts stale `Ẑ` rows under the write lock, so a hit observed here is
    // always consistent with the `H` rows read here (the state → cache lock
    // order matches the repair path).
    let mut z_hat: Vec<Option<Vec<f32>>> = vec![None; nodes.len()];
    let mut cached = vec![false; nodes.len()];
    let mut misses: Vec<usize> = Vec::new();
    let mut miss_slots: Vec<usize> = Vec::new();
    let (computed, h_rows, computed_epoch): (DenseMatrix, DenseMatrix, u64) = {
        let state = shared.state.read().expect("serving state poisoned");
        // Capture the generation while holding the state lock, pairing the
        // epoch with the matrices the rows are computed from.
        let epoch = shared.epoch.load(Ordering::SeqCst);
        {
            let mut cache = shared.cache.lock().expect("cache lock poisoned");
            for (slot, &node) in nodes.iter().enumerate() {
                match cache.get(node) {
                    Some(row) => {
                        z_hat[slot] = Some(row.to_vec());
                        cached[slot] = true;
                    }
                    None => {
                        misses.push(node);
                        miss_slots.push(slot);
                    }
                }
            }
        }
        let computed = if misses.is_empty() {
            DenseMatrix::zeros(0, classes)
        } else {
            match state.operator.as_ref() {
                Some(operator) => operator.matrix.spmm_rows(&misses, &state.embeddings)?,
                None => state.embeddings.select_rows(&misses)?,
            }
        };
        let h_rows = state.embeddings.select_rows(nodes)?;
        (computed, h_rows, epoch)
    };
    shared
        .stats
        .cache_hits
        .add((nodes.len() - misses.len()) as u64);
    shared.stats.cache_misses.add(misses.len() as u64);
    if !misses.is_empty() {
        let mut evicted = 0usize;
        let mut cache = shared.cache.lock().expect("cache lock poisoned");
        // If the serving state was mutated while we computed, the rows are
        // still a consistent answer for this query (it raced the update) but
        // must not poison the freshly cleared/repaired cache.
        let cache_rows = shared.epoch.load(Ordering::SeqCst) == computed_epoch;
        for (i, &slot) in miss_slots.iter().enumerate() {
            let row = computed.row(i).to_vec();
            if cache_rows {
                evicted += cache.insert(misses[i], row.clone());
            }
            z_hat[slot] = Some(row);
        }
        drop(cache);
        shared.stats.cache_evictions.add(evicted as u64);
    }

    // Eq. 6: Z_u = (1−α)·Ẑ_u + α·H_u, exactly as the training-side forward.
    let alpha = shared.alpha;
    let stale = shared.stale.lock().expect("stale lock poisoned");
    let mut out = Vec::with_capacity(nodes.len());
    for (slot, &node) in nodes.iter().enumerate() {
        let z_hat_row = z_hat[slot].take().expect("every slot resolved");
        let h_row = h_rows.row(slot);
        let mut logits = Vec::with_capacity(classes);
        for (z, &h) in z_hat_row.iter().zip(h_row.iter()) {
            logits.push((1.0 - alpha) * z + alpha * h);
        }
        let label = logits
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0;
        out.push(Prediction {
            node,
            logits,
            label,
            cached: cached[slot],
            stale: stale.contains(&node),
        });
    }
    drop(stale);
    shared.stats.nodes_served.add(nodes.len() as u64);
    shared.stats.batches_served.inc();
    Ok(out)
}
