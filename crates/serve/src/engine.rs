//! The online inference engine.
//!
//! [`InferenceEngine::new`] takes a [`ServeSnapshot`] and precomputes the
//! full-graph embedding `H = MLP_H(δ·MLP_X(X) + (1−δ)·MLP_A(A))` once. A
//! query for a batch of `b` nodes then costs `O(b·k·f)`: the engine gathers
//! the batch's rows of the constant top-k operator `S` with
//! `CsrMatrix::spmm_rows` and blends them with the local embedding
//! (`Z_u = (1−α)·(S·H)_u + α·H_u`, paper Eq. 5–6) — no full-graph SpMM, no
//! MLP re-execution. Aggregated rows `Ẑ_u` are memoised in a bounded LRU
//! cache, and large batches are chunked across the shared thread pool.
//!
//! The engine also consumes `sigma_simrank::dynamic` edge updates: edits
//! invalidate exactly the cached rows whose operator entries can change
//! (endpoints, their neighbours, and every row referencing them), and a
//! refreshed operator from [`sigma_simrank::DynamicSimRank`] can be swapped
//! in without rebuilding the engine.
//!
//! Concurrency comes from the process-wide [`sigma_parallel::ThreadPool`]
//! shared with the training kernels — the engine no longer owns threads of
//! its own. Large batches are chunked and fanned out as scoped tasks; the
//! [`EngineConfig::workers`] knob bounds how many chunks run concurrently
//! and is validated against the shared pool's size at construction.

use crate::cache::LruCache;
use crate::forward::compute_embeddings;
use crate::snapshot::ServeSnapshot;
use crate::{Result, ServeError};
use sigma_matrix::{CsrMatrix, DenseMatrix};
use sigma_parallel::ThreadPool;
use sigma_simrank::{DynamicSimRank, EdgeUpdate};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// Tuning knobs of the [`InferenceEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum number of aggregated rows (`Ẑ_u`) kept in the LRU cache
    /// (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum batch chunks served concurrently on the shared
    /// [`sigma_parallel::ThreadPool`]. `0` means *auto*: use the pool's full
    /// capacity. Explicit values are validated against the pool size at
    /// engine construction ([`ServeError::WorkerConfig`]).
    pub workers: usize,
    /// Batches larger than this are split into chunks of at most this many
    /// nodes and fanned out across the shared pool. Must be non-zero.
    pub max_chunk: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cache_capacity: 4096,
            workers: 0,
            max_chunk: 256,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration against the shared pool's current size.
    ///
    /// Rejects zero-capacity setups — `max_chunk == 0` (chunks could hold no
    /// nodes) and `workers` exceeding the shared pool (the extra workers
    /// could never run concurrently, silently degrading to less parallelism
    /// than requested) — with a typed [`ServeError::WorkerConfig`] instead
    /// of silently serving inline.
    ///
    /// The check is point-in-time: the global pool can be resized later
    /// (e.g. by `sigma_parallel::set_global_threads`), in which case
    /// [`EngineConfig::effective_workers`] clamps to the width available at
    /// serve time — safe either way, since results are identical at any
    /// width.
    pub fn validate(&self, pool: &ThreadPool) -> Result<()> {
        let pool_threads = pool.num_threads();
        if self.max_chunk == 0 {
            return Err(ServeError::WorkerConfig {
                workers: self.workers,
                pool_threads,
                reason: "max_chunk must be non-zero (a zero-capacity chunk can serve no nodes)",
            });
        }
        if self.workers > pool_threads {
            return Err(ServeError::WorkerConfig {
                workers: self.workers,
                pool_threads,
                reason: "workers exceed the shared pool size (set SIGMA_NUM_THREADS or \
                         sigma_parallel::set_global_threads, or lower workers; 0 = auto)",
            });
        }
        Ok(())
    }

    /// The concurrent-chunk bound actually used at serve time: the explicit
    /// `workers` value, or the shared pool's capacity when `workers == 0`.
    pub fn effective_workers(&self, pool: &ThreadPool) -> usize {
        if self.workers == 0 {
            pool.num_threads()
        } else {
            self.workers.min(pool.num_threads())
        }
    }
}

/// The served answer for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The queried node.
    pub node: usize,
    /// Class logits (`Z_u`, Eq. 6).
    pub logits: Vec<f32>,
    /// `argmax` of the logits.
    pub label: usize,
    /// Whether the aggregated row was served from the cache.
    pub cached: bool,
    /// Whether pending edge updates may have invalidated this node's
    /// operator row (served value may be stale until the next refresh).
    pub stale: bool,
}

/// Monotone serving counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total nodes served.
    pub nodes_served: u64,
    /// Total batches served.
    pub batches_served: u64,
    /// Aggregated rows found in the cache.
    pub cache_hits: u64,
    /// Aggregated rows recomputed via the row-sliced kernel.
    pub cache_misses: u64,
    /// Cached rows dropped by edge-update invalidation.
    pub rows_invalidated: u64,
    /// Operator swap-ins from a refreshed maintainer.
    pub operator_refreshes: u64,
}

#[derive(Default)]
struct AtomicStats {
    nodes_served: AtomicU64,
    batches_served: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    rows_invalidated: AtomicU64,
    operator_refreshes: AtomicU64,
}

impl AtomicStats {
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            nodes_served: self.nodes_served.load(Ordering::Relaxed),
            batches_served: self.batches_served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            rows_invalidated: self.rows_invalidated.load(Ordering::Relaxed),
            operator_refreshes: self.operator_refreshes.load(Ordering::Relaxed),
        }
    }
}

/// The aggregation operator plus its transposed sparsity pattern (used to
/// find the rows that reference an updated node during invalidation).
struct OperatorState {
    matrix: CsrMatrix,
    reverse: CsrMatrix,
}

impl OperatorState {
    fn new(matrix: CsrMatrix) -> Self {
        let reverse = matrix.transpose();
        Self { matrix, reverse }
    }
}

struct Shared {
    /// Precomputed full-graph embedding `H` (`n × C`).
    embeddings: DenseMatrix,
    /// Effective local/global balance `α`.
    alpha: f32,
    /// Constant aggregation operator (`None` = SIGMA w/o S: `Ẑ = H`).
    operator: RwLock<Option<OperatorState>>,
    /// Bounded memo of aggregated rows.
    cache: Mutex<LruCache>,
    /// Nodes whose operator rows may be stale w.r.t. applied edge updates.
    stale: Mutex<HashSet<usize>>,
    /// Adjacency at snapshot time, for first-order invalidation regions.
    adjacency: CsrMatrix,
    /// Operator generation counter, bumped by [`InferenceEngine::install_operator`].
    /// Rows computed against generation `g` may only enter the cache while
    /// the generation is still `g` — otherwise a batch racing an operator
    /// swap could cache old-operator rows after the swap's cache clear.
    epoch: AtomicU64,
    stats: AtomicStats,
}

/// Online node-classification server for a snapshotted SIGMA model.
pub struct InferenceEngine {
    shared: Arc<Shared>,
    config: EngineConfig,
}

impl std::fmt::Debug for InferenceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceEngine")
            .field("num_nodes", &self.num_nodes())
            .field("num_classes", &self.num_classes())
            .field("config", &self.config)
            .field(
                "workers",
                &self.config.effective_workers(ThreadPool::global()),
            )
            .finish()
    }
}

impl InferenceEngine {
    /// Builds an engine from a snapshot: validates the configuration against
    /// the shared thread pool and runs the encoder once over the full graph.
    pub fn new(snapshot: &ServeSnapshot, config: EngineConfig) -> Result<Self> {
        config.validate(ThreadPool::global())?;
        snapshot.model.validate()?;
        let embeddings =
            compute_embeddings(&snapshot.model, &snapshot.features, &snapshot.adjacency)?;
        let operator = snapshot.model.operator.clone().map(OperatorState::new);
        let shared = Arc::new(Shared {
            embeddings,
            alpha: snapshot.model.effective_alpha() as f32,
            operator: RwLock::new(operator),
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            stale: Mutex::new(HashSet::new()),
            adjacency: snapshot.adjacency.clone(),
            epoch: AtomicU64::new(0),
            stats: AtomicStats::default(),
        });
        Ok(Self { shared, config })
    }

    /// Number of nodes the engine serves.
    pub fn num_nodes(&self) -> usize {
        self.shared.embeddings.rows()
    }

    /// Number of classes per prediction.
    pub fn num_classes(&self) -> usize {
        self.shared.embeddings.cols()
    }

    /// The effective `α` blended at serve time.
    pub fn alpha(&self) -> f32 {
        self.shared.alpha
    }

    /// Serves a single node.
    pub fn predict(&self, node: usize) -> Result<Prediction> {
        let mut batch = serve_batch(&self.shared, &[node])?;
        Ok(batch.pop().expect("one prediction per queried node"))
    }

    /// Serves a batch of nodes, preserving query order.
    ///
    /// Batches larger than [`EngineConfig::max_chunk`] are split into chunks
    /// and fanned out as scoped tasks on the shared
    /// [`sigma_parallel::ThreadPool`], at most
    /// [`EngineConfig::effective_workers`] chunks in flight; smaller batches
    /// are served on the caller's thread.
    pub fn predict_batch(&self, nodes: &[usize]) -> Result<Vec<Prediction>> {
        let pool = ThreadPool::global();
        let concurrency = self.config.effective_workers(pool);
        if nodes.len() <= self.config.max_chunk || concurrency <= 1 {
            return serve_batch(&self.shared, nodes);
        }
        let chunks: Vec<&[usize]> = nodes.chunks(self.config.max_chunk).collect();
        let mut results: Vec<Option<Result<Vec<Prediction>>>> =
            (0..chunks.len()).map(|_| None).collect();
        // Group the chunks into at most `concurrency` scoped tasks; each
        // task serves its chunks sequentially, writing into disjoint slots.
        let per_group = chunks.len().div_ceil(concurrency.min(chunks.len()));
        {
            let shared = &self.shared;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
                .chunks(per_group)
                .zip(results.chunks_mut(per_group))
                .map(|(chunk_group, slot_group)| {
                    Box::new(move || {
                        for (chunk, slot) in chunk_group.iter().zip(slot_group.iter_mut()) {
                            *slot = Some(serve_batch(shared, chunk));
                        }
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(tasks);
        }
        let mut out = Vec::with_capacity(nodes.len());
        for slot in results {
            out.extend(slot.expect("every chunk task ran to completion")?);
        }
        Ok(out)
    }

    /// Applies a stream of edge updates to the staleness tracker.
    ///
    /// Marks the first-order affected region (endpoints plus their
    /// neighbours at snapshot time) stale, and evicts every cached row whose
    /// operator entries reference an affected node. Returns the number of
    /// cached rows invalidated.
    pub fn apply_edge_updates(&self, updates: &[EdgeUpdate]) -> Result<usize> {
        let n = self.num_nodes();
        let mut affected: HashSet<usize> = HashSet::new();
        for &update in updates {
            let (u, v) = match update {
                EdgeUpdate::Insert(u, v) | EdgeUpdate::Delete(u, v) => (u, v),
            };
            if u >= n || v >= n {
                return Err(ServeError::InvalidQuery {
                    node: u.max(v),
                    num_nodes: n,
                });
            }
            for endpoint in [u, v] {
                affected.insert(endpoint);
                for (nb, _) in self.shared.adjacency.row_iter(endpoint) {
                    affected.insert(nb);
                }
            }
        }
        Ok(self.invalidate_region(&affected))
    }

    /// Synchronises with a [`DynamicSimRank`] maintainer.
    ///
    /// If the maintainer's staleness budget is exhausted, its refreshed
    /// operator is swapped in (clearing the cache and staleness set) and
    /// `true` is returned. Otherwise the maintainer's affected-node set is
    /// marked stale here, bounding how wrong served rows can be, and `false`
    /// is returned.
    pub fn sync_with(&self, maintainer: &mut DynamicSimRank) -> Result<bool> {
        if maintainer.needs_refresh() {
            let operator = maintainer.operator()?;
            self.install_operator(operator)?;
            Ok(true)
        } else {
            let affected: HashSet<usize> = maintainer.affected_nodes().into_iter().collect();
            self.invalidate_region(&affected);
            Ok(false)
        }
    }

    /// Replaces the aggregation operator (e.g. after a SimRank refresh on an
    /// updated graph), clearing the row cache and the staleness set.
    pub fn install_operator(&self, operator: CsrMatrix) -> Result<()> {
        let n = self.num_nodes();
        if operator.shape() != (n, n) {
            return Err(ServeError::OperatorMismatch {
                got: operator.shape(),
                expected: n,
            });
        }
        let state = OperatorState::new(operator);
        {
            let mut guard = self
                .shared
                .operator
                .write()
                .expect("operator lock poisoned");
            *guard = Some(state);
            // Bump the generation while still holding the write lock, so any
            // in-flight batch that read the old operator observes a changed
            // epoch and skips caching its rows.
            self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        }
        self.shared
            .cache
            .lock()
            .expect("cache lock poisoned")
            .clear();
        self.shared
            .stale
            .lock()
            .expect("stale lock poisoned")
            .clear();
        self.shared
            .stats
            .operator_refreshes
            .fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Nodes currently marked stale, sorted by id.
    pub fn stale_nodes(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .shared
            .stale
            .lock()
            .expect("stale lock poisoned")
            .iter()
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of aggregated rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.shared.cache.lock().expect("cache lock poisoned").len()
    }

    /// A point-in-time copy of the serving counters.
    pub fn stats(&self) -> EngineStats {
        self.shared.stats.snapshot()
    }

    /// Marks `affected` nodes stale and evicts every cached row referencing
    /// them; returns the number of evicted rows.
    fn invalidate_region(&self, affected: &HashSet<usize>) -> usize {
        if affected.is_empty() {
            return 0;
        }
        // Rows whose operator entries touch an affected column.
        let mut rows: HashSet<usize> = affected.iter().copied().collect();
        if let Some(state) = self
            .shared
            .operator
            .read()
            .expect("operator lock poisoned")
            .as_ref()
        {
            for &a in affected {
                if a < state.reverse.rows() {
                    for (row, _) in state.reverse.row_iter(a) {
                        rows.insert(row);
                    }
                }
            }
        }
        let mut invalidated = 0usize;
        {
            let mut cache = self.shared.cache.lock().expect("cache lock poisoned");
            for &row in &rows {
                if cache.invalidate(row) {
                    invalidated += 1;
                }
            }
        }
        {
            let mut stale = self.shared.stale.lock().expect("stale lock poisoned");
            stale.extend(rows.iter().copied());
        }
        self.shared
            .stats
            .rows_invalidated
            .fetch_add(invalidated as u64, Ordering::Relaxed);
        invalidated
    }
}

/// Serves one batch: cache lookups, one row-sliced SpMM for the misses,
/// Eq. 6 blending, staleness tagging.
fn serve_batch(shared: &Shared, nodes: &[usize]) -> Result<Vec<Prediction>> {
    let n = shared.embeddings.rows();
    let classes = shared.embeddings.cols();
    for &node in nodes {
        if node >= n {
            return Err(ServeError::InvalidQuery { node, num_nodes: n });
        }
    }

    // Plan: resolve each queried node to a cached row or a miss.
    let mut z_hat: Vec<Option<Vec<f32>>> = vec![None; nodes.len()];
    let mut cached = vec![false; nodes.len()];
    let mut misses: Vec<usize> = Vec::new();
    let mut miss_slots: Vec<usize> = Vec::new();
    {
        let mut cache = shared.cache.lock().expect("cache lock poisoned");
        for (slot, &node) in nodes.iter().enumerate() {
            match cache.get(node) {
                Some(row) => {
                    z_hat[slot] = Some(row.to_vec());
                    cached[slot] = true;
                }
                None => {
                    misses.push(node);
                    miss_slots.push(slot);
                }
            }
        }
    }
    shared
        .stats
        .cache_hits
        .fetch_add((nodes.len() - misses.len()) as u64, Ordering::Relaxed);
    shared
        .stats
        .cache_misses
        .fetch_add(misses.len() as u64, Ordering::Relaxed);

    // One row-sliced SpMM covers every miss in the batch.
    if !misses.is_empty() {
        let (computed, computed_epoch): (DenseMatrix, u64) = {
            let operator = shared.operator.read().expect("operator lock poisoned");
            // Capture the generation while holding the operator lock, pairing
            // the epoch with the matrix the rows are computed from.
            let epoch = shared.epoch.load(Ordering::SeqCst);
            let rows = match operator.as_ref() {
                Some(state) => state.matrix.spmm_rows(&misses, &shared.embeddings)?,
                None => shared.embeddings.select_rows(&misses)?,
            };
            (rows, epoch)
        };
        let mut cache = shared.cache.lock().expect("cache lock poisoned");
        // If the operator was swapped while we computed, the rows are still
        // a consistent answer for this query (it raced the swap) but must
        // not poison the freshly cleared cache.
        let cache_rows = shared.epoch.load(Ordering::SeqCst) == computed_epoch;
        for (i, &slot) in miss_slots.iter().enumerate() {
            let row = computed.row(i).to_vec();
            if cache_rows {
                cache.insert(misses[i], row.clone());
            }
            z_hat[slot] = Some(row);
        }
    }

    // Eq. 6: Z_u = (1−α)·Ẑ_u + α·H_u, exactly as the training-side forward.
    let alpha = shared.alpha;
    let stale = shared.stale.lock().expect("stale lock poisoned");
    let mut out = Vec::with_capacity(nodes.len());
    for (slot, &node) in nodes.iter().enumerate() {
        let z_hat_row = z_hat[slot].take().expect("every slot resolved");
        let h_row = shared.embeddings.row(node);
        let mut logits = Vec::with_capacity(classes);
        for (z, &h) in z_hat_row.iter().zip(h_row.iter()) {
            logits.push((1.0 - alpha) * z + alpha * h);
        }
        let label = logits
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0;
        out.push(Prediction {
            node,
            logits,
            label,
            cached: cached[slot],
            stale: stale.contains(&node),
        });
    }
    drop(stale);
    shared
        .stats
        .nodes_served
        .fetch_add(nodes.len() as u64, Ordering::Relaxed);
    shared.stats.batches_served.fetch_add(1, Ordering::Relaxed);
    Ok(out)
}
