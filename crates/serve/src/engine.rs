//! The online inference engine.
//!
//! [`InferenceEngine::new`] takes a [`ServeSnapshot`] and precomputes the
//! full-graph embedding `H = MLP_H(δ·MLP_X(X) + (1−δ)·MLP_A(A))` once. A
//! query for a batch of `b` nodes then costs `O(b·k·f)`: the engine gathers
//! the batch's rows of the constant top-k operator `S` with
//! `CsrMatrix::spmm_rows` and blends them with the local embedding
//! (`Z_u = (1−α)·(S·H)_u + α·H_u`, paper Eq. 5–6) — no full-graph SpMM, no
//! MLP re-execution. Aggregated rows `Ẑ_u` are memoised in a bounded LRU
//! cache, and large batches are chunked across the shared thread pool.
//!
//! The engine also consumes `sigma_simrank::dynamic` edge updates: edits
//! invalidate exactly the cached rows whose operator entries can change
//! (endpoints, their neighbours, and every row referencing them), and a
//! refreshed operator from [`sigma_simrank::DynamicSimRank`] can be swapped
//! in without rebuilding the engine. On top of the full swap,
//! [`InferenceEngine::repair_from`] performs **incremental repair**: it asks
//! the maintainer for the exact set of operator rows an edit trace changed,
//! patches those rows (and the `H` rows of the edited nodes — the encoder is
//! row-local, so the patch is bitwise identical to a full re-encode) in
//! place, and evicts only the affected cache entries instead of dropping the
//! whole cache with an operator-epoch bump.
//!
//! Concurrency comes from the process-wide [`sigma_parallel::ThreadPool`]
//! shared with the training kernels — the engine no longer owns threads of
//! its own. Large batches are chunked and fanned out as scoped tasks; the
//! [`EngineConfig::workers`] knob bounds how many chunks run concurrently
//! and is validated against the shared pool's size at construction.
//! Maintenance calls ([`InferenceEngine::install_operator`],
//! [`InferenceEngine::repair_from`]) may race queries freely, but must not
//! race each other — run them from a single maintenance thread.

use crate::cache::LruCache;
use crate::forward::{compute_embeddings, compute_embeddings_rows};
use crate::mmap::MappedSnapshot;
use crate::snapshot::ServeSnapshot;
use crate::store::{CsrSection, CsrStore, DenseSection, DenseStore, ModelRef};
use crate::{Result, ServeError};
use sigma_matrix::{CsrMatrix, CsrViewAny, DenseMatrix};
use sigma_obs::{Counter, Histogram, Registry, Stopwatch};
use sigma_parallel::ThreadPool;
use sigma_simrank::{DynamicSimRank, EdgeUpdate, RepairOutcome};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Tuning knobs of the [`InferenceEngine`].
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Maximum number of aggregated rows (`Ẑ_u`) kept in the LRU cache
    /// (0 disables caching).
    pub cache_capacity: usize,
    /// Maximum batch chunks served concurrently on the shared
    /// [`sigma_parallel::ThreadPool`]. `0` means *auto*: use the pool's full
    /// capacity. Explicit values are validated against the pool size at
    /// engine construction ([`ServeError::WorkerConfig`]).
    pub workers: usize,
    /// Batches larger than this are split into chunks of at most this many
    /// nodes and fanned out across the shared pool. Must be non-zero.
    pub max_chunk: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            cache_capacity: 4096,
            workers: 0,
            max_chunk: 256,
        }
    }
}

impl EngineConfig {
    /// Validates the configuration against the shared pool's current size.
    ///
    /// Rejects zero-capacity setups — `max_chunk == 0` (chunks could hold no
    /// nodes) and `workers` exceeding the shared pool (the extra workers
    /// could never run concurrently, silently degrading to less parallelism
    /// than requested) — with a typed [`ServeError::WorkerConfig`] instead
    /// of silently serving inline.
    ///
    /// The check is point-in-time: the global pool can be resized later
    /// (e.g. by `sigma_parallel::set_global_threads`), in which case
    /// [`EngineConfig::effective_workers`] clamps to the width available at
    /// serve time — safe either way, since results are identical at any
    /// width.
    pub fn validate(&self, pool: &ThreadPool) -> Result<()> {
        let pool_threads = pool.num_threads();
        if self.max_chunk == 0 {
            return Err(ServeError::WorkerConfig {
                workers: self.workers,
                pool_threads,
                reason: "max_chunk must be non-zero (a zero-capacity chunk can serve no nodes)",
            });
        }
        if self.workers > pool_threads {
            return Err(ServeError::WorkerConfig {
                workers: self.workers,
                pool_threads,
                reason: "workers exceed the shared pool size (set SIGMA_NUM_THREADS or \
                         sigma_parallel::set_global_threads, or lower workers; 0 = auto)",
            });
        }
        Ok(())
    }

    /// The concurrent-chunk bound actually used at serve time: the explicit
    /// `workers` value, or the shared pool's capacity when `workers == 0`.
    pub fn effective_workers(&self, pool: &ThreadPool) -> usize {
        if self.workers == 0 {
            pool.num_threads()
        } else {
            self.workers.min(pool.num_threads())
        }
    }
}

/// The served answer for one node.
#[derive(Debug, Clone, PartialEq)]
pub struct Prediction {
    /// The queried node.
    pub node: usize,
    /// Class logits (`Z_u`, Eq. 6).
    pub logits: Vec<f32>,
    /// `argmax` of the logits.
    pub label: usize,
    /// Whether the aggregated row was served from the cache.
    pub cached: bool,
    /// Whether pending edge updates may have invalidated this node's
    /// operator row (served value may be stale until the next refresh).
    pub stale: bool,
}

/// One entry of a [`InferenceEngine::most_similar`] answer: a node ranked
/// by its score in the query node's operator row.
///
/// Ordering is pinned — score descending, then node id ascending — so a
/// sharded and a single-engine answer over the same operator are bitwise
/// comparable entry by entry (ids *and* score bits), which the sharded
/// differential oracle asserts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimilarNode {
    /// The similar node's id.
    pub node: usize,
    /// Its operator score `S[query][node]` (SimRank-style similarity).
    pub score: f32,
}

/// Monotone serving counters, read with [`InferenceEngine::stats`].
///
/// # Tearing semantics
///
/// A snapshot is assembled from independent relaxed loads of live counters,
/// **not** taken under any lock. Two guarantees hold:
///
/// * **Per-counter monotonicity.** Each field is an actually-attained value
///   of its counter, and successive snapshots never observe a field
///   decreasing.
/// * **No cross-counter consistency.** A snapshot taken while queries are in
///   flight may *tear* between fields: a batch bumps `cache_misses` before
///   `nodes_served`, so derived identities (e.g. `cache_hits + cache_misses
///   == nodes_served`) can be transiently off by in-flight requests. They
///   hold exactly once the engine quiesces.
///
/// This is deliberate: serving never pays a stats lock. Tests that assert
/// cross-field identities must stop issuing queries first (see
/// `stats_tearing.rs` in this crate's test suite).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Total nodes served.
    pub nodes_served: u64,
    /// Total batches served.
    pub batches_served: u64,
    /// Aggregated rows found in the cache.
    pub cache_hits: u64,
    /// Aggregated rows recomputed via the row-sliced kernel.
    pub cache_misses: u64,
    /// Cached rows displaced by LRU capacity pressure (distinct from
    /// `rows_invalidated`, which counts correctness-driven drops).
    pub cache_evictions: u64,
    /// Cached rows dropped by edge-update invalidation or repair.
    pub rows_invalidated: u64,
    /// Operator swap-ins from a refreshed maintainer (whole-operator path;
    /// drops the entire cache).
    pub operator_refreshes: u64,
    /// Incremental repairs applied by [`InferenceEngine::repair_from`]
    /// (row-patch path; keeps unaffected cache entries).
    pub operator_repairs: u64,
    /// Operator rows patched in place across all repairs.
    pub rows_repaired: u64,
    /// Embedding (`H`) rows recomputed in place across all repairs.
    pub embedding_rows_repaired: u64,
    /// Dirty seed pairs re-pushed by the maintainer across all incremental
    /// repairs driven through [`InferenceEngine::repair_from`].
    pub repair_dirty_seeds: u64,
    /// Whole-snapshot hot reloads applied via
    /// [`InferenceEngine::hot_reload`] /
    /// [`InferenceEngine::hot_reload_mapped`].
    pub snapshot_reloads: u64,
    /// Top-k similarity queries served ([`InferenceEngine::most_similar`]
    /// and [`InferenceEngine::most_similar_batch`], counted per query).
    /// Similarity traffic reads operator rows directly and never touches
    /// the `Ẑ` cache, so this counter moves while `cache_hits`/`cache_misses`
    /// stay put — the cache-profile difference the serving bench records.
    pub similar_queries: u64,
}

/// The engine's live counters and latency histograms, built on `sigma_obs`
/// primitives.
///
/// The counters are always functional (they are plain relaxed atomics, so
/// [`InferenceEngine::stats`] works identically with the `obs` feature
/// off); when `obs` is enabled they are additionally registered with the
/// process-wide [`Registry`] under `sigma_serve_*` names, where several
/// engines in one process merge by summation. The latency histograms are
/// only *recorded into* when `obs` is on — with it off the stopwatch reads
/// compile to nothing and the histograms stay empty.
struct EngineMetrics {
    nodes_served: Arc<Counter>,
    batches_served: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    rows_invalidated: Arc<Counter>,
    operator_refreshes: Arc<Counter>,
    operator_repairs: Arc<Counter>,
    rows_repaired: Arc<Counter>,
    embedding_rows_repaired: Arc<Counter>,
    repair_dirty_seeds: Arc<Counter>,
    snapshot_reloads: Arc<Counter>,
    similar_queries: Arc<Counter>,
    /// Wall time of [`InferenceEngine::predict`] calls, nanoseconds.
    predict_ns: Arc<Histogram>,
    /// Wall time of [`InferenceEngine::predict_batch`] calls, nanoseconds.
    predict_batch_ns: Arc<Histogram>,
    /// Wall time of [`InferenceEngine::most_similar`] /
    /// [`InferenceEngine::most_similar_batch`] calls, nanoseconds.
    similar_ns: Arc<Histogram>,
}

impl EngineMetrics {
    fn new() -> Self {
        let metrics = Self {
            nodes_served: Arc::new(Counter::new()),
            batches_served: Arc::new(Counter::new()),
            cache_hits: Arc::new(Counter::new()),
            cache_misses: Arc::new(Counter::new()),
            cache_evictions: Arc::new(Counter::new()),
            rows_invalidated: Arc::new(Counter::new()),
            operator_refreshes: Arc::new(Counter::new()),
            operator_repairs: Arc::new(Counter::new()),
            rows_repaired: Arc::new(Counter::new()),
            embedding_rows_repaired: Arc::new(Counter::new()),
            repair_dirty_seeds: Arc::new(Counter::new()),
            snapshot_reloads: Arc::new(Counter::new()),
            similar_queries: Arc::new(Counter::new()),
            predict_ns: Arc::new(Histogram::new()),
            predict_batch_ns: Arc::new(Histogram::new()),
            similar_ns: Arc::new(Histogram::new()),
        };
        if sigma_obs::ENABLED {
            let registry = Registry::global();
            registry.register_arc_counter(
                "sigma_serve_nodes_served_total",
                "nodes served across all batches",
                &metrics.nodes_served,
            );
            registry.register_arc_counter(
                "sigma_serve_batches_served_total",
                "serve_batch calls completed",
                &metrics.batches_served,
            );
            registry.register_arc_counter(
                "sigma_serve_cache_hits_total",
                "aggregated rows served from the LRU cache",
                &metrics.cache_hits,
            );
            registry.register_arc_counter(
                "sigma_serve_cache_misses_total",
                "aggregated rows recomputed via the row-sliced kernel",
                &metrics.cache_misses,
            );
            registry.register_arc_counter(
                "sigma_serve_cache_evictions_total",
                "cached rows displaced by LRU capacity pressure",
                &metrics.cache_evictions,
            );
            registry.register_arc_counter(
                "sigma_serve_rows_invalidated_total",
                "cached rows dropped by edge-update invalidation or repair",
                &metrics.rows_invalidated,
            );
            registry.register_arc_counter(
                "sigma_serve_operator_refreshes_total",
                "whole-operator swap-ins (cache-dropping path)",
                &metrics.operator_refreshes,
            );
            registry.register_arc_counter(
                "sigma_serve_operator_repairs_total",
                "incremental row-patch repairs applied",
                &metrics.operator_repairs,
            );
            registry.register_arc_counter(
                "sigma_serve_rows_repaired_total",
                "operator rows patched in place across all repairs",
                &metrics.rows_repaired,
            );
            registry.register_arc_counter(
                "sigma_serve_embedding_rows_repaired_total",
                "embedding rows re-encoded in place across all repairs",
                &metrics.embedding_rows_repaired,
            );
            registry.register_arc_counter(
                "sigma_serve_repair_dirty_seeds_total",
                "dirty seed pairs re-pushed by the maintainer during repairs",
                &metrics.repair_dirty_seeds,
            );
            registry.register_arc_counter(
                "sigma_serve_snapshot_reloads_total",
                "whole-snapshot hot reloads applied",
                &metrics.snapshot_reloads,
            );
            registry.register_arc_histogram(
                "sigma_serve_predict_ns",
                "single-node predict latency in nanoseconds",
                &metrics.predict_ns,
            );
            registry.register_arc_histogram(
                "sigma_serve_predict_batch_ns",
                "predict_batch latency in nanoseconds",
                &metrics.predict_batch_ns,
            );
            registry.register_arc_counter(
                "sigma_serve_similar_queries_total",
                "top-k similarity queries served off operator rows",
                &metrics.similar_queries,
            );
            registry.register_arc_histogram(
                "sigma_serve_similar_ns",
                "most_similar query latency in nanoseconds",
                &metrics.similar_ns,
            );
        }
        metrics
    }

    /// Independent relaxed loads; see [`EngineStats`] for the exact tearing
    /// guarantees.
    fn snapshot(&self) -> EngineStats {
        EngineStats {
            nodes_served: self.nodes_served.get(),
            batches_served: self.batches_served.get(),
            cache_hits: self.cache_hits.get(),
            cache_misses: self.cache_misses.get(),
            cache_evictions: self.cache_evictions.get(),
            rows_invalidated: self.rows_invalidated.get(),
            operator_refreshes: self.operator_refreshes.get(),
            operator_repairs: self.operator_repairs.get(),
            rows_repaired: self.rows_repaired.get(),
            embedding_rows_repaired: self.embedding_rows_repaired.get(),
            repair_dirty_seeds: self.repair_dirty_seeds.get(),
            snapshot_reloads: self.snapshot_reloads.get(),
            similar_queries: self.similar_queries.get(),
        }
    }
}

/// The aggregation operator plus its transposed sparsity pattern (used to
/// find the rows that reference an updated node during invalidation).
struct OperatorState {
    matrix: CsrStore,
    /// Transposed pattern, materialised lazily on the first invalidation or
    /// repair that needs it: an engine serving straight out of a mapped
    /// snapshot must not pay an O(nnz) transpose at cold start. `OnceLock`
    /// lets racing readers initialise it under the state *read* lock.
    reverse: OnceLock<CsrMatrix>,
}

impl OperatorState {
    fn new(matrix: CsrStore) -> Self {
        Self {
            matrix,
            reverse: OnceLock::new(),
        }
    }

    /// The transposed operator, built on first use and cached until the
    /// matrix is next patched.
    fn reverse(&self) -> &CsrMatrix {
        self.reverse
            .get_or_init(|| self.matrix.view().transpose_owned())
    }
}

/// Everything a query must observe as one consistent unit: the embedding,
/// the adjacency it was encoded from, the aggregation operator, and the
/// inputs (features, weights, `α`) they were derived from. Batches take
/// the read side; operator swaps, incremental repairs and snapshot hot
/// reloads take the write side, so a batch never sees a half-patched
/// state. Every matrix is held as an owned-or-mapped store, so the same
/// engine serves decoded v1 snapshots and zero-copy v2 mappings through
/// identical code paths.
struct ServingState {
    /// Precomputed full-graph embedding `H` (`n × C`).
    embeddings: DenseStore,
    /// Adjacency the embedding was computed from, kept in sync by repairs;
    /// also the source of first-order invalidation regions.
    adjacency: CsrStore,
    /// Constant aggregation operator (`None` = SIGMA w/o S: `Ẑ = H`).
    operator: Option<OperatorState>,
    /// Node features `X`, the dense half of the encoder input (repairs
    /// re-encode `H` rows from it).
    features: DenseStore,
    /// Encoder weights, decoded lazily on the mapped path (only the repair
    /// path needs them).
    model: ModelRef,
    /// Effective local/global balance `α`.
    alpha: f32,
}

struct Shared {
    state: RwLock<ServingState>,
    /// Node and class counts (immutable over the engine's lifetime; hot
    /// reloads must match them).
    num_nodes: usize,
    num_classes: usize,
    /// Bounded memo of aggregated rows.
    cache: Mutex<LruCache>,
    /// Nodes whose operator rows may be stale w.r.t. applied edge updates.
    stale: Mutex<HashSet<usize>>,
    /// Operator generation counter, bumped whenever the serving state is
    /// mutated ([`InferenceEngine::install_operator`],
    /// [`InferenceEngine::repair_from`]). Rows computed against generation
    /// `g` may only enter the cache while the generation is still `g` —
    /// otherwise a batch racing a swap could cache old-operator rows after
    /// the swap's cache clear (or a repair's targeted eviction).
    epoch: AtomicU64,
    stats: EngineMetrics,
}

/// Online node-classification server for a snapshotted SIGMA model.
pub struct InferenceEngine {
    shared: Arc<Shared>,
    config: EngineConfig,
}

/// The operator payload of one repair round, fed to
/// [`InferenceEngine::apply_repair`].
///
/// [`InferenceEngine::repair_from`] computes this from a
/// [`DynamicSimRank`] maintainer; a shard router computes it once and fans
/// row-filtered `Rows` payloads to the shards whose ranges intersect the
/// repair footprint (`DynamicSimRank::repair` consumes the pending edits,
/// so the maintainer can be driven only once per round — the payload, not
/// the maintainer, is what travels to each engine).
#[derive(Debug, Clone)]
pub enum OperatorPatch {
    /// Replace exactly the listed operator rows with the rows of this
    /// `rows.len() × n` payload (in the same order).
    Rows(CsrMatrix),
    /// Install this whole `n × n` operator (full-refresh path: first sync
    /// with a maintainer that had no prior state). Drops the entire cache.
    Full(CsrMatrix),
    /// The operator is untouched this round — only the adjacency (and the
    /// `H` rows its diff implies) need repair. Also the only valid payload
    /// for an operator-less engine (`Ẑ = H`).
    None,
}

/// What one [`InferenceEngine::repair_from`] call changed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineRepair {
    /// Operator rows patched in place (sorted). On a full refresh this
    /// lists every row.
    pub operator_rows: Vec<usize>,
    /// Embedding (`H`) rows re-encoded in place (sorted): the nodes whose
    /// adjacency rows differed from the engine's.
    pub embedding_rows: Vec<usize>,
    /// Cached `Ẑ` rows invalidated (sorted): the patched operator rows plus
    /// every row whose operator entries reference a re-encoded node. On a
    /// full refresh the whole cache is dropped instead and this is empty.
    pub invalidated_rows: Vec<usize>,
    /// Whether the engine fell back to a whole-operator install (first sync
    /// with a maintainer that had no prior state).
    pub full_refresh: bool,
}

impl std::fmt::Debug for InferenceEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InferenceEngine")
            .field("num_nodes", &self.num_nodes())
            .field("num_classes", &self.num_classes())
            .field("config", &self.config)
            .field(
                "workers",
                &self.config.effective_workers(ThreadPool::global()),
            )
            .finish()
    }
}

impl InferenceEngine {
    /// Builds an engine from a decoded snapshot: validates the
    /// configuration against the shared thread pool and runs the encoder
    /// once over the full graph (or adopts the snapshot's precomputed
    /// embeddings when present).
    pub fn new(snapshot: &ServeSnapshot, config: EngineConfig) -> Result<Self> {
        config.validate(ThreadPool::global())?;
        snapshot.model.validate()?;
        let state = Self::owned_state(snapshot)?;
        Ok(Self::from_state(state, config))
    }

    /// Builds an engine serving straight out of a mapped v2 snapshot —
    /// zero copy, O(1) in the graph size when the snapshot carries
    /// precomputed embeddings (otherwise the encoder runs once, as
    /// [`InferenceEngine::new`] would).
    ///
    /// Verifies the mapping first (checksums + CSR invariants; cached, so
    /// repeated engines off one mapping pay it once). The engine holds the
    /// [`Arc`], pinning the mapping for its lifetime; results are bitwise
    /// identical to an engine built from the decoded snapshot.
    pub fn from_mapped(snapshot: Arc<MappedSnapshot>, config: EngineConfig) -> Result<Self> {
        config.validate(ThreadPool::global())?;
        let state = Self::mapped_state(snapshot)?;
        Ok(Self::from_state(state, config))
    }

    /// Serving state for the owned (decoded) path.
    fn owned_state(snapshot: &ServeSnapshot) -> Result<ServingState> {
        let embeddings = match &snapshot.embeddings {
            Some(h) => {
                if h.shape() != (snapshot.num_nodes(), snapshot.model.num_classes()) {
                    return Err(ServeError::Corrupt {
                        reason: format!(
                            "precomputed embeddings {:?} do not match the model's {} × {} output",
                            h.shape(),
                            snapshot.num_nodes(),
                            snapshot.model.num_classes()
                        ),
                    });
                }
                h.clone()
            }
            None => compute_embeddings(&snapshot.model, &snapshot.features, &snapshot.adjacency)?,
        };
        Ok(ServingState {
            embeddings: DenseStore::Owned(embeddings),
            adjacency: CsrStore::Owned(snapshot.adjacency.clone()),
            operator: snapshot
                .model
                .operator
                .clone()
                .map(|m| OperatorState::new(CsrStore::Owned(m))),
            features: DenseStore::Owned(snapshot.features.clone()),
            model: ModelRef::Owned(Arc::new(snapshot.model.clone())),
            alpha: snapshot.model.effective_alpha() as f32,
        })
    }

    /// Serving state borrowing a verified mapping.
    fn mapped_state(snap: Arc<MappedSnapshot>) -> Result<ServingState> {
        snap.verify()?;
        let embeddings = if snap.has_embeddings() {
            DenseStore::Mapped {
                snap: snap.clone(),
                section: DenseSection::Embeddings,
            }
        } else {
            // No EMB section: encode `H` once from the mapped inputs (the
            // O(n) fallback — write snapshots with
            // `ServeSnapshot::precompute_embeddings` to skip it).
            let model = snap.model()?;
            let features = snap.features_view().to_owned_matrix();
            let adjacency = snap.adjacency_view().to_owned_matrix()?;
            DenseStore::Owned(compute_embeddings(&model, &features, &adjacency)?)
        };
        Ok(ServingState {
            embeddings,
            adjacency: CsrStore::Mapped {
                snap: snap.clone(),
                section: CsrSection::Adjacency,
            },
            operator: snap.has_operator().then(|| {
                OperatorState::new(CsrStore::Mapped {
                    snap: snap.clone(),
                    section: CsrSection::Operator,
                })
            }),
            features: DenseStore::Mapped {
                snap: snap.clone(),
                section: DenseSection::Features,
            },
            alpha: snap.effective_alpha() as f32,
            model: ModelRef::Mapped(snap),
        })
    }

    fn from_state(state: ServingState, config: EngineConfig) -> Self {
        let num_nodes = state.embeddings.rows();
        let num_classes = state.embeddings.view().cols();
        let shared = Arc::new(Shared {
            state: RwLock::new(state),
            num_nodes,
            num_classes,
            cache: Mutex::new(LruCache::new(config.cache_capacity)),
            stale: Mutex::new(HashSet::new()),
            epoch: AtomicU64::new(0),
            stats: EngineMetrics::new(),
        });
        Self { shared, config }
    }

    /// Atomically replaces the entire served state — embeddings,
    /// adjacency, operator, features, weights, `α` — with a new snapshot
    /// of the *same* graph dimensions, under the operator-epoch guard: one
    /// write-lock swap, an epoch bump so racing batches cannot cache
    /// pre-reload rows, and a cache + staleness clear. Queries racing the
    /// reload serve a consistent answer from one state or the other, never
    /// a blend.
    pub fn hot_reload(&self, snapshot: &ServeSnapshot) -> Result<()> {
        snapshot.model.validate()?;
        let state = Self::owned_state(snapshot)?;
        self.swap_state(state)
    }

    /// [`InferenceEngine::hot_reload`] for a mapped v2 snapshot: the engine
    /// switches to serving out of the new mapping zero-copy (verifying it
    /// first) and drops its reference to the old one.
    pub fn hot_reload_mapped(&self, snapshot: Arc<MappedSnapshot>) -> Result<()> {
        let state = Self::mapped_state(snapshot)?;
        self.swap_state(state)
    }

    fn swap_state(&self, new_state: ServingState) -> Result<()> {
        let n = new_state.embeddings.rows();
        let classes = new_state.embeddings.view().cols();
        if n != self.shared.num_nodes {
            return Err(ServeError::OperatorMismatch {
                got: (n, n),
                expected: self.shared.num_nodes,
            });
        }
        if classes != self.shared.num_classes {
            return Err(ServeError::Corrupt {
                reason: format!(
                    "reloaded snapshot serves {} classes, engine was built for {}",
                    classes, self.shared.num_classes
                ),
            });
        }
        {
            let mut state = self.write_state();
            *state = new_state;
            // Bump the generation while still holding the write lock, so an
            // in-flight batch that computed rows against the old state
            // observes a changed epoch and skips caching them.
            self.shared.epoch.fetch_add(1, Ordering::SeqCst);
            self.shared
                .cache
                .lock()
                .expect("cache lock poisoned")
                .clear();
        }
        self.shared
            .stale
            .lock()
            .expect("stale lock poisoned")
            .clear();
        self.shared.stats.snapshot_reloads.inc();
        Ok(())
    }

    /// Number of nodes the engine serves.
    pub fn num_nodes(&self) -> usize {
        self.shared.num_nodes
    }

    /// Number of classes per prediction.
    pub fn num_classes(&self) -> usize {
        self.shared.num_classes
    }

    /// The effective `α` blended at serve time.
    pub fn alpha(&self) -> f32 {
        self.shared
            .state
            .read()
            .expect("serving state poisoned")
            .alpha
    }

    /// A copy of the aggregation operator currently served (`None` when the
    /// engine runs the operator-less `Ẑ = H` variant). Observability hook
    /// used by the differential test harness.
    pub fn operator(&self) -> Option<CsrMatrix> {
        self.shared
            .state
            .read()
            .expect("serving state poisoned")
            .operator
            .as_ref()
            .map(|state| state.matrix.to_matrix())
    }

    /// Serves a single node.
    pub fn predict(&self, node: usize) -> Result<Prediction> {
        let sw = Stopwatch::start();
        let mut batch = serve_batch(&self.shared, &[node])?;
        if sigma_obs::ENABLED {
            self.shared.stats.predict_ns.record(sw.elapsed_ns());
        }
        Ok(batch.pop().expect("one prediction per queried node"))
    }

    /// Serves a batch of nodes, preserving query order.
    ///
    /// Batches larger than [`EngineConfig::max_chunk`] are split into chunks
    /// and fanned out as scoped tasks on the shared
    /// [`sigma_parallel::ThreadPool`], at most
    /// [`EngineConfig::effective_workers`] chunks in flight; smaller batches
    /// are served on the caller's thread. Chunks are grouped into tasks by
    /// **operator mass** (each queried node costs its operator row's nnz)
    /// through [`sigma_parallel::partition_by_weight`], so a batch that
    /// happens to concentrate hub rows in one region does not serialise one
    /// worker. Predictions are assembled in chunk order, so the grouping
    /// never affects results.
    pub fn predict_batch(&self, nodes: &[usize]) -> Result<Vec<Prediction>> {
        let sw = Stopwatch::start();
        let result = self.predict_batch_inner(nodes);
        if sigma_obs::ENABLED {
            self.shared.stats.predict_batch_ns.record(sw.elapsed_ns());
        }
        result
    }

    /// [`InferenceEngine::predict_batch`] minus the latency bookkeeping.
    fn predict_batch_inner(&self, nodes: &[usize]) -> Result<Vec<Prediction>> {
        let pool = ThreadPool::global();
        let concurrency = self.config.effective_workers(pool);
        if nodes.len() <= self.config.max_chunk || concurrency <= 1 {
            return serve_batch(&self.shared, nodes);
        }
        let chunks: Vec<&[usize]> = nodes.chunks(self.config.max_chunk).collect();
        // Per-chunk cost estimate: the aggregation SpMM dominates, and its
        // work is the sum of the queried rows' operator nnz (plus one unit
        // per node for the cache probe / blend). Out-of-range nodes weigh
        // one unit here and are rejected by `serve_batch` as before.
        let chunk_weights: Vec<usize> = {
            let state = self.shared.state.read().expect("serving state poisoned");
            let op_view = state.operator.as_ref().map(|op| op.matrix.view());
            chunks
                .iter()
                .map(|chunk| {
                    chunk
                        .iter()
                        .map(|&node| match op_view {
                            Some(op) if node < op.rows() => 1 + op.row_nnz(node),
                            _ => 1,
                        })
                        .sum()
                })
                .collect()
        };
        let groups =
            sigma_parallel::partition_by_weight(&chunk_weights, concurrency.min(chunks.len()));
        let mut results: Vec<Option<Result<Vec<Prediction>>>> =
            (0..chunks.len()).map(|_| None).collect();
        {
            let shared = &self.shared;
            let mut rest: &mut [Option<Result<Vec<Prediction>>>] = &mut results;
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(groups.len());
            for group in groups {
                let (slot_group, tail) = rest.split_at_mut(group.len());
                rest = tail;
                let chunk_group = &chunks[group];
                tasks.push(Box::new(move || {
                    for (chunk, slot) in chunk_group.iter().zip(slot_group.iter_mut()) {
                        *slot = Some(serve_batch(shared, chunk));
                    }
                }));
            }
            pool.run(tasks);
        }
        let mut out = Vec::with_capacity(nodes.len());
        for slot in results {
            out.extend(slot.expect("every chunk task ran to completion")?);
        }
        Ok(out)
    }

    /// Top-`k` nodes most similar to `node`, ranked by the node's
    /// aggregation-operator row (the top-k SimRank structure the engine
    /// already serves aggregation from).
    ///
    /// Determinism contract: entries are ordered by **score descending,
    /// then node id ascending** — pinned so a sharded router and a single
    /// engine over the same operator return bitwise-identical answers (ids
    /// *and* score bits), which the sharded differential oracle asserts.
    /// The query node's own self-similarity entry is excluded; a
    /// recommendation-style caller never wants `node` recommended to
    /// itself. Fewer than `k` entries come back when the row holds fewer
    /// qualifying entries.
    ///
    /// Unlike [`InferenceEngine::predict`], this reads the operator row
    /// directly and never touches the `Ẑ` row cache — similarity traffic
    /// has a very different cache profile than logit serving (the serving
    /// bench records the difference).
    ///
    /// Errors with [`ServeError::InvalidQuery`] for an out-of-range node
    /// and [`ServeError::NoOperator`] on an engine serving the
    /// operator-less `Ẑ = H` variant.
    pub fn most_similar(&self, node: usize, k: usize) -> Result<Vec<SimilarNode>> {
        let sw = Stopwatch::start();
        let mut batch = similar_batch(&self.shared, &[(node, k)])?;
        if sigma_obs::ENABLED {
            self.shared.stats.similar_ns.record(sw.elapsed_ns());
        }
        Ok(batch.pop().expect("one answer per similarity query"))
    }

    /// Serves a batch of `(node, k)` similarity queries in request order
    /// under one read of the serving state, with the same determinism
    /// contract as [`InferenceEngine::most_similar`].
    pub fn most_similar_batch(&self, queries: &[(usize, usize)]) -> Result<Vec<Vec<SimilarNode>>> {
        let sw = Stopwatch::start();
        let result = similar_batch(&self.shared, queries);
        if sigma_obs::ENABLED {
            self.shared.stats.similar_ns.record(sw.elapsed_ns());
        }
        result
    }

    /// Applies a stream of edge updates to the staleness tracker.
    ///
    /// Marks the first-order affected region (endpoints plus their
    /// neighbours at snapshot time) stale, and evicts every cached row whose
    /// operator entries reference an affected node. Returns the number of
    /// cached rows invalidated.
    pub fn apply_edge_updates(&self, updates: &[EdgeUpdate]) -> Result<usize> {
        let affected = self.edge_update_footprint(updates)?;
        Ok(self.invalidate_nodes(&affected))
    }

    /// The first-order region a stream of edge updates touches, read off
    /// this engine's *own* adjacency copy: each update's endpoints plus
    /// their neighbours at snapshot time. Sorted and deduplicated.
    ///
    /// Routers use this per shard (shard adjacencies can lag each other
    /// between repairs) to decide which shards an update stream must fan
    /// out to, before committing to [`InferenceEngine::invalidate_nodes`].
    pub fn edge_update_footprint(&self, updates: &[EdgeUpdate]) -> Result<Vec<usize>> {
        let n = self.num_nodes();
        let mut affected: HashSet<usize> = HashSet::new();
        {
            let state = self.shared.state.read().expect("serving state poisoned");
            let adjacency = state.adjacency.view();
            for &update in updates {
                let (u, v) = match update {
                    EdgeUpdate::Insert(u, v) | EdgeUpdate::Delete(u, v) => (u, v),
                };
                if u >= n || v >= n {
                    return Err(ServeError::InvalidQuery {
                        node: u.max(v),
                        num_nodes: n,
                    });
                }
                for endpoint in [u, v] {
                    affected.insert(endpoint);
                    for &nb in adjacency.row_cols(endpoint) {
                        affected.insert(nb as usize);
                    }
                }
            }
        }
        let mut sorted: Vec<usize> = affected.into_iter().collect();
        sorted.sort_unstable();
        Ok(sorted)
    }

    /// Rows of the served operator whose entries reference any of `nodes`
    /// (sorted, deduplicated; empty for an operator-less engine). These are
    /// exactly the cached `Ẑ` rows an update to those nodes can change, so
    /// a router may skip a shard whose range misses the affected set *only*
    /// if this is also empty for that shard.
    pub fn referencing_rows(&self, nodes: &[usize]) -> Vec<usize> {
        let mut rows: HashSet<usize> = HashSet::new();
        {
            let state = self.shared.state.read().expect("serving state poisoned");
            if let Some(operator) = state.operator.as_ref() {
                let reverse = operator.reverse();
                for &node in nodes {
                    if node < reverse.rows() {
                        for (row, _) in reverse.row_iter(node) {
                            rows.insert(row);
                        }
                    }
                }
            }
        }
        let mut sorted: Vec<usize> = rows.into_iter().collect();
        sorted.sort_unstable();
        sorted
    }

    /// Marks `affected` nodes stale and evicts every cached row whose
    /// operator entries reference them; returns the number of cached rows
    /// evicted. This is [`InferenceEngine::apply_edge_updates`] with the
    /// footprint already computed — the router entry point for fanning a
    /// pre-computed affected set to intersecting shards.
    pub fn invalidate_nodes(&self, affected: &[usize]) -> usize {
        let set: HashSet<usize> = affected.iter().copied().collect();
        self.invalidate_region(&set)
    }

    /// Synchronises with a [`DynamicSimRank`] maintainer.
    ///
    /// If the maintainer's staleness budget is exhausted, its refreshed
    /// operator is swapped in (clearing the cache and staleness set) and
    /// `true` is returned. Otherwise the maintainer's affected-node set is
    /// marked stale here, bounding how wrong served rows can be, and `false`
    /// is returned. See [`InferenceEngine::repair_from`] for the incremental
    /// alternative that stays exact without dropping the cache.
    pub fn sync_with(&self, maintainer: &mut DynamicSimRank) -> Result<bool> {
        if maintainer.needs_refresh() {
            let operator = maintainer.operator()?;
            self.install_operator(operator)?;
            Ok(true)
        } else {
            let affected: HashSet<usize> = maintainer.affected_nodes().into_iter().collect();
            self.invalidate_region(&affected);
            Ok(false)
        }
    }

    /// Incrementally repairs the served state from a [`DynamicSimRank`]
    /// maintainer after graph edits, instead of swapping the whole operator.
    ///
    /// Drives [`DynamicSimRank::repair`] and then patches, in place and
    /// under one write lock:
    ///
    /// * the operator rows the maintainer reports as changed (spliced with
    ///   `CsrMatrix::replace_rows`),
    /// * the `H` rows of every node whose adjacency row differs from the
    ///   engine's copy (the encoder is row-local, so the re-encoded rows are
    ///   bitwise identical to a full re-encode),
    /// * the engine's adjacency itself.
    ///
    /// Afterwards only the affected cache entries — patched operator rows
    /// plus rows referencing a re-encoded node — are evicted; every other
    /// cached row is provably still exact, so a warm cache survives the
    /// edit. The staleness set is cleared: the engine is fully consistent
    /// with the maintainer's graph, bitwise identical to an engine rebuilt
    /// from scratch on it.
    ///
    /// The engine's operator must have come from the same maintainer (or an
    /// equal one): row patches are relative to the served operator. The
    /// first call against a maintainer with no prior state falls back to a
    /// whole-operator install (`full_refresh` in the returned report).
    pub fn repair_from(&self, maintainer: &mut DynamicSimRank) -> Result<EngineRepair> {
        let n = self.num_nodes();
        let graph_nodes = maintainer.graph().num_nodes();
        if graph_nodes != n {
            return Err(ServeError::OperatorMismatch {
                got: (graph_nodes, graph_nodes),
                expected: n,
            });
        }
        let outcome = maintainer.repair()?;
        let has_operator = self
            .shared
            .state
            .read()
            .expect("serving state poisoned")
            .operator
            .is_some();
        // Resolve the operator payload before taking the write lock (the
        // maintainer materialises rows lazily).
        let (operator_rows, patch, dirty_seeds) = match (&outcome, has_operator) {
            (RepairOutcome::Patched(repair), true) => {
                let rows = repair.changed_rows.clone();
                let payload = maintainer.operator_rows(&rows)?;
                (
                    rows,
                    OperatorPatch::Rows(payload),
                    repair.dirty_seeds as u64,
                )
            }
            (RepairOutcome::FullRefresh, true) => {
                let operator = maintainer.operator()?;
                ((0..n).collect(), OperatorPatch::Full(operator), 0)
            }
            // Operator-less engine (`Ẑ = H`): only the embedding needs care.
            (RepairOutcome::Patched(repair), false) => {
                (Vec::new(), OperatorPatch::None, repair.dirty_seeds as u64)
            }
            (RepairOutcome::FullRefresh, false) => (Vec::new(), OperatorPatch::None, 0),
        };
        let adjacency_new = maintainer.graph().to_adjacency();
        self.apply_repair(&operator_rows, patch, adjacency_new, dirty_seeds)
    }

    /// Applies a repair round whose payload was already computed — the
    /// maintainer-free second half of [`InferenceEngine::repair_from`].
    ///
    /// `operator_rows` are the rows `patch` replaces (sorted, matching the
    /// payload's row order for [`OperatorPatch::Rows`]); `adjacency` is the
    /// post-edit adjacency to adopt (the `H` rows to re-encode are found by
    /// diffing it against the engine's own copy, so a lagging engine
    /// self-heals); `dirty_seeds` is forwarded to the
    /// `repair_dirty_seeds` counter. Everything [`repair_from`] documents —
    /// in-place patching under one write lock, targeted eviction, epoch
    /// bump, staleness clear — happens here.
    ///
    /// This is the fan-out surface for a [`crate::ShardRouter`]: the router
    /// drives one maintainer, then calls this on each shard whose row range
    /// intersects the repair footprint, with the payload filtered to that
    /// shard's rows.
    ///
    /// [`repair_from`]: InferenceEngine::repair_from
    pub fn apply_repair(
        &self,
        operator_rows: &[usize],
        patch: OperatorPatch,
        adjacency_new: CsrMatrix,
        dirty_seeds: u64,
    ) -> Result<EngineRepair> {
        let n = self.num_nodes();
        if adjacency_new.shape() != (n, n) {
            return Err(ServeError::OperatorMismatch {
                got: adjacency_new.shape(),
                expected: n,
            });
        }
        let (operator_patch, full_operator) = match patch {
            OperatorPatch::Rows(payload) => {
                if payload.shape() != (operator_rows.len(), n) {
                    return Err(ServeError::OperatorMismatch {
                        got: payload.shape(),
                        expected: n,
                    });
                }
                (Some(payload), None)
            }
            OperatorPatch::Full(operator) => {
                if operator.shape() != (n, n) {
                    return Err(ServeError::OperatorMismatch {
                        got: operator.shape(),
                        expected: n,
                    });
                }
                (None, Some(operator))
            }
            OperatorPatch::None => (None, None),
        };
        let operator_rows = operator_rows.to_vec();

        // Re-encode exactly the nodes whose adjacency rows differ. The diff
        // is against the engine's own copy, so it also catches edits the
        // maintainer absorbed before this engine ever synced. Both the diff
        // and the re-encode run under the *read* lock, never the write
        // lock: the encoder dispatches onto the shared pool, and the pool's
        // help-first join may hand this thread a queued serve-batch task
        // that needs the state read lock — dispatching while holding the
        // write lock would self-deadlock. (Maintenance calls are externally
        // serialised, and queries never mutate the state, so the diff
        // cannot go stale between here and the write section below.)
        let (embedding_rows, patched_h) = {
            let state = self.shared.state.read().expect("serving state poisoned");
            let rows = changed_adjacency_rows(state.adjacency.view(), &adjacency_new);
            let patched = if rows.is_empty() {
                None
            } else {
                // Mapped engines decode the model here, on first repair —
                // the one maintenance path that needs the weights.
                let model = state.model.get()?;
                Some(compute_embeddings_rows(
                    &model,
                    state.features.view(),
                    &adjacency_new,
                    &rows,
                )?)
            };
            (rows, patched)
        };

        let full_refresh = full_operator.is_some();
        let mut evicted = 0usize;
        let invalidated_rows: Vec<usize>;
        {
            let mut state = self.write_state();
            if let Some(patched_h) = &patched_h {
                // Copy-on-write: a mapped embedding section is promoted to
                // an owned matrix before the first in-place patch.
                let embeddings = state.embeddings.make_owned();
                for (i, &row) in embedding_rows.iter().enumerate() {
                    embeddings.row_mut(row).copy_from_slice(patched_h.row(i));
                }
            }
            state.adjacency = CsrStore::Owned(adjacency_new);
            if let Some(operator) = full_operator {
                state.operator = Some(OperatorState::new(CsrStore::Owned(operator)));
            } else if let Some(patch) = operator_patch {
                let operator = state
                    .operator
                    .as_mut()
                    .expect("patch path implies an operator");
                let matrix = operator.matrix.make_owned()?;
                let patched = matrix.replace_rows(&operator_rows, &patch)?;
                *matrix = patched;
                // The cached transpose is stale now; rebuild lazily.
                operator.reverse = OnceLock::new();
            }
            // Bump the generation while still holding the write lock, so an
            // in-flight batch that computed rows against the pre-repair
            // state observes a changed epoch and skips caching them.
            self.shared.epoch.fetch_add(1, Ordering::SeqCst);

            // Invalidation set: rows whose own operator row was patched,
            // plus rows whose `Ẑ` reads a re-encoded `H` row.
            let mut invalid: HashSet<usize> = operator_rows.iter().copied().collect();
            match state.operator.as_ref() {
                Some(operator) => {
                    if !embedding_rows.is_empty() {
                        let reverse = operator.reverse();
                        for &node in &embedding_rows {
                            for (row, _) in reverse.row_iter(node) {
                                invalid.insert(row);
                            }
                        }
                    }
                }
                // Without an operator a cached row is `H` itself.
                None => invalid.extend(embedding_rows.iter().copied()),
            }
            let mut sorted: Vec<usize> = invalid.into_iter().collect();
            sorted.sort_unstable();
            invalidated_rows = sorted;

            // Evict while still holding the write lock (queries acquire the
            // cache lock only inside or after their state read section, so
            // the state → cache order is deadlock-free): once the patched
            // state is visible, no stale `Ẑ` row can be served against it.
            let mut cache = self.shared.cache.lock().expect("cache lock poisoned");
            if full_refresh {
                cache.clear();
            } else {
                for &row in &invalidated_rows {
                    if cache.invalidate(row) {
                        evicted += 1;
                    }
                }
            }
        }
        self.shared
            .stale
            .lock()
            .expect("stale lock poisoned")
            .clear();
        let stats = &self.shared.stats;
        stats.rows_invalidated.add(evicted as u64);
        stats
            .embedding_rows_repaired
            .add(embedding_rows.len() as u64);
        stats.repair_dirty_seeds.add(dirty_seeds);
        if full_refresh {
            stats.operator_refreshes.inc();
        } else {
            stats.operator_repairs.inc();
            stats.rows_repaired.add(operator_rows.len() as u64);
        }
        Ok(EngineRepair {
            operator_rows,
            embedding_rows,
            invalidated_rows: if full_refresh {
                Vec::new()
            } else {
                invalidated_rows
            },
            full_refresh,
        })
    }

    /// Replaces the aggregation operator (e.g. after a SimRank refresh on an
    /// updated graph), clearing the row cache and the staleness set.
    pub fn install_operator(&self, operator: CsrMatrix) -> Result<()> {
        let n = self.num_nodes();
        if operator.shape() != (n, n) {
            return Err(ServeError::OperatorMismatch {
                got: operator.shape(),
                expected: n,
            });
        }
        let new_state = OperatorState::new(CsrStore::Owned(operator));
        // Materialise the transpose outside the lock (as the eager path
        // always did for installs) so the write section stays short.
        new_state.reverse();
        {
            let mut state = self.write_state();
            state.operator = Some(new_state);
            // Bump the generation while still holding the write lock, so any
            // in-flight batch that read the old operator observes a changed
            // epoch and skips caching its rows.
            self.shared.epoch.fetch_add(1, Ordering::SeqCst);
        }
        self.shared
            .cache
            .lock()
            .expect("cache lock poisoned")
            .clear();
        self.shared
            .stale
            .lock()
            .expect("stale lock poisoned")
            .clear();
        self.shared.stats.operator_refreshes.inc();
        Ok(())
    }

    /// Nodes currently marked stale, sorted by id.
    pub fn stale_nodes(&self) -> Vec<usize> {
        let mut out: Vec<usize> = self
            .shared
            .stale
            .lock()
            .expect("stale lock poisoned")
            .iter()
            .copied()
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of aggregated rows currently cached.
    pub fn cached_rows(&self) -> usize {
        self.shared.cache.lock().expect("cache lock poisoned").len()
    }

    /// A point-in-time copy of the serving counters.
    ///
    /// Lock-free: see [`EngineStats`] for the exact guarantees — each field
    /// is individually monotone and exact, but fields may tear against each
    /// other while queries are in flight.
    pub fn stats(&self) -> EngineStats {
        self.shared.stats.snapshot()
    }

    /// Acquires the serving-state write lock without ever *queueing* behind
    /// active readers.
    ///
    /// A serve batch holds the read lock while dispatching onto the shared
    /// pool, and the pool's help-first join can hand that thread another
    /// batch task which re-acquires the read lock. Recursive reads are only
    /// safe while no writer is waiting (std's `RwLock` may be
    /// writer-preferring), so maintenance writers spin on `try_write`
    /// instead of blocking — batches are short and maintenance is rare.
    fn write_state(&self) -> std::sync::RwLockWriteGuard<'_, ServingState> {
        loop {
            match self.shared.state.try_write() {
                Ok(guard) => return guard,
                Err(std::sync::TryLockError::WouldBlock) => std::thread::yield_now(),
                Err(std::sync::TryLockError::Poisoned(_)) => panic!("serving state poisoned"),
            }
        }
    }

    /// Marks `affected` nodes stale and evicts every cached row referencing
    /// them; returns the number of evicted rows.
    fn invalidate_region(&self, affected: &HashSet<usize>) -> usize {
        if affected.is_empty() {
            return 0;
        }
        // Rows whose operator entries touch an affected column.
        let mut rows: HashSet<usize> = affected.iter().copied().collect();
        {
            let state = self.shared.state.read().expect("serving state poisoned");
            if let Some(operator) = state.operator.as_ref() {
                let reverse = operator.reverse();
                for &a in affected {
                    if a < reverse.rows() {
                        for (row, _) in reverse.row_iter(a) {
                            rows.insert(row);
                        }
                    }
                }
            }
        }
        let mut invalidated = 0usize;
        {
            let mut cache = self.shared.cache.lock().expect("cache lock poisoned");
            for &row in &rows {
                if cache.invalidate(row) {
                    invalidated += 1;
                }
            }
        }
        {
            let mut stale = self.shared.stale.lock().expect("stale lock poisoned");
            stale.extend(rows.iter().copied());
        }
        self.shared.stats.rows_invalidated.add(invalidated as u64);
        invalidated
    }
}

/// Rows on which two equal-shape CSR matrices differ (indices or values).
fn changed_adjacency_rows(old: CsrViewAny<'_>, new: &CsrMatrix) -> Vec<usize> {
    debug_assert_eq!(old.shape(), new.shape());
    (0..old.rows())
        .filter(|&r| {
            let (ns, ne) = (new.indptr()[r], new.indptr()[r + 1]);
            old.row_cols(r) != &new.indices()[ns..ne] || old.row_vals(r) != &new.values()[ns..ne]
        })
        .collect()
}

/// Serves a batch of `(node, k)` similarity queries straight off the
/// operator rows, under one read of the serving state. Validates every
/// node before touching any row so a batch either answers fully or fails
/// without partial work, like `serve_batch`.
fn similar_batch(shared: &Shared, queries: &[(usize, usize)]) -> Result<Vec<Vec<SimilarNode>>> {
    let n = shared.num_nodes;
    for &(node, _) in queries {
        if node >= n {
            return Err(ServeError::InvalidQuery { node, num_nodes: n });
        }
    }
    let _span = sigma_obs::span!("similar_batch", queries.len());
    let state = shared.state.read().expect("serving state poisoned");
    let operator = state.operator.as_ref().ok_or(ServeError::NoOperator)?;
    let view = operator.matrix.view();
    let mut out = Vec::with_capacity(queries.len());
    for &(node, k) in queries {
        let mut row: Vec<SimilarNode> = view
            .row_cols(node)
            .iter()
            .zip(view.row_vals(node).iter())
            .filter(|&(&m, _)| m as usize != node)
            .map(|(&m, &score)| SimilarNode {
                node: m as usize,
                score,
            })
            .collect();
        // The pinned ordering: score descending, then node id ascending.
        // `total_cmp` keeps the sort deterministic even for NaN scores, and
        // the id tie-break is explicit rather than relying on CSR column
        // order surviving an unstable sort.
        row.sort_unstable_by(|a, b| b.score.total_cmp(&a.score).then(a.node.cmp(&b.node)));
        row.truncate(k);
        out.push(row);
    }
    shared.stats.similar_queries.add(queries.len() as u64);
    Ok(out)
}

/// Serves one batch: cache lookups, one row-sliced SpMM for the misses,
/// Eq. 6 blending, staleness tagging.
fn serve_batch(shared: &Shared, nodes: &[usize]) -> Result<Vec<Prediction>> {
    let n = shared.num_nodes;
    let classes = shared.num_classes;
    for &node in nodes {
        if node >= n {
            return Err(ServeError::InvalidQuery { node, num_nodes: n });
        }
    }
    let _span = sigma_obs::span!("serve_batch", nodes.len());

    // Plan and compute under ONE read of the serving state: the cache
    // probe, the row-sliced SpMM for every miss, and the `H` rows blended
    // below. Probing inside the guard matters — a repair patches `H` and
    // evicts stale `Ẑ` rows under the write lock, so a hit observed here is
    // always consistent with the `H` rows read here (the state → cache lock
    // order matches the repair path).
    let mut z_hat: Vec<Option<Vec<f32>>> = vec![None; nodes.len()];
    let mut cached = vec![false; nodes.len()];
    let mut misses: Vec<usize> = Vec::new();
    let mut miss_slots: Vec<usize> = Vec::new();
    let (computed, h_rows, computed_epoch, alpha): (DenseMatrix, DenseMatrix, u64, f32) = {
        let state = shared.state.read().expect("serving state poisoned");
        // Capture the generation while holding the state lock, pairing the
        // epoch with the matrices the rows are computed from.
        let epoch = shared.epoch.load(Ordering::SeqCst);
        {
            let mut cache = shared.cache.lock().expect("cache lock poisoned");
            for (slot, &node) in nodes.iter().enumerate() {
                match cache.get(node) {
                    Some(row) => {
                        z_hat[slot] = Some(row.to_vec());
                        cached[slot] = true;
                    }
                    None => {
                        misses.push(node);
                        miss_slots.push(slot);
                    }
                }
            }
        }
        // Both the owned and the mapped embedding store serve through the
        // same borrowed view, so an engine on a v2 mapping reads `H` rows
        // straight off the file pages here.
        let embeddings = state.embeddings.view();
        let computed = if misses.is_empty() {
            DenseMatrix::zeros(0, classes)
        } else {
            match state.operator.as_ref() {
                Some(operator) => operator.matrix.view().spmm_rows(&misses, embeddings)?,
                None => embeddings.select_rows(&misses)?,
            }
        };
        let h_rows = embeddings.select_rows(nodes)?;
        (computed, h_rows, epoch, state.alpha)
    };
    shared
        .stats
        .cache_hits
        .add((nodes.len() - misses.len()) as u64);
    shared.stats.cache_misses.add(misses.len() as u64);
    if !misses.is_empty() {
        let mut evicted = 0usize;
        let mut cache = shared.cache.lock().expect("cache lock poisoned");
        // If the serving state was mutated while we computed, the rows are
        // still a consistent answer for this query (it raced the update) but
        // must not poison the freshly cleared/repaired cache.
        let cache_rows = shared.epoch.load(Ordering::SeqCst) == computed_epoch;
        for (i, &slot) in miss_slots.iter().enumerate() {
            let row = computed.row(i).to_vec();
            if cache_rows {
                evicted += cache.insert(misses[i], row.clone());
            }
            z_hat[slot] = Some(row);
        }
        drop(cache);
        shared.stats.cache_evictions.add(evicted as u64);
    }

    // Eq. 6: Z_u = (1−α)·Ẑ_u + α·H_u, exactly as the training-side forward.
    let stale = shared.stale.lock().expect("stale lock poisoned");
    let mut out = Vec::with_capacity(nodes.len());
    for (slot, &node) in nodes.iter().enumerate() {
        let z_hat_row = z_hat[slot].take().expect("every slot resolved");
        let h_row = h_rows.row(slot);
        let mut logits = Vec::with_capacity(classes);
        for (z, &h) in z_hat_row.iter().zip(h_row.iter()) {
            logits.push((1.0 - alpha) * z + alpha * h);
        }
        let label = logits
            .iter()
            .enumerate()
            .fold((0usize, f32::NEG_INFINITY), |(bi, bv), (i, &v)| {
                if v > bv {
                    (i, v)
                } else {
                    (bi, bv)
                }
            })
            .0;
        out.push(Prediction {
            node,
            logits,
            label,
            cached: cached[slot],
            stale: stale.contains(&node),
        });
    }
    drop(stale);
    shared.stats.nodes_served.add(nodes.len() as u64);
    shared.stats.batches_served.inc();
    Ok(out)
}
