//! Little-endian binary primitives for the snapshot format.
//!
//! Everything is written length-prefixed so a reader can validate section
//! sizes before allocating; all multi-byte values are little-endian. The
//! format deliberately avoids any external serialisation dependency.

use crate::{Result, ServeError};
use sigma_matrix::{CsrMatrix, DenseMatrix};
use std::io::{Read, Write};

/// Hard ceiling on any single length field, guarding against allocating
/// gigabytes from a corrupt or adversarial length prefix (1 billion
/// elements ≈ 4 GB of `f32`, far above any supported graph).
const MAX_LEN: u64 = 1 << 30;

fn corrupt(reason: impl Into<String>) -> ServeError {
    ServeError::Corrupt {
        reason: reason.into(),
    }
}

/// Reads a checked length prefix.
fn read_len<R: Read>(r: &mut R, what: &str) -> Result<usize> {
    let len = read_u64(r)?;
    if len > MAX_LEN {
        return Err(corrupt(format!(
            "{what} length {len} exceeds the format limit"
        )));
    }
    Ok(len as usize)
}

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

pub(crate) fn write_f32<W: Write>(w: &mut W, v: f32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_f32<R: Read>(r: &mut R) -> Result<f32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(f32::from_le_bytes(buf))
}

pub(crate) fn write_f64<W: Write>(w: &mut W, v: f64) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

pub(crate) fn read_f64<R: Read>(r: &mut R) -> Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

pub(crate) fn write_string<W: Write>(w: &mut W, s: &str) -> Result<()> {
    write_u64(w, s.len() as u64)?;
    w.write_all(s.as_bytes())?;
    Ok(())
}

pub(crate) fn read_string<R: Read>(r: &mut R) -> Result<String> {
    let len = read_len(r, "string")?;
    let mut buf = vec![0u8; len];
    r.read_exact(&mut buf)?;
    String::from_utf8(buf).map_err(|_| corrupt("string section is not valid UTF-8"))
}

fn write_f32_slice<W: Write>(w: &mut W, values: &[f32]) -> Result<()> {
    write_u64(w, values.len() as u64)?;
    for &v in values {
        write_f32(w, v)?;
    }
    Ok(())
}

fn read_f32_vec<R: Read>(r: &mut R, what: &str) -> Result<Vec<f32>> {
    let len = read_len(r, what)?;
    let mut out = Vec::with_capacity(len);
    for _ in 0..len {
        out.push(read_f32(r)?);
    }
    Ok(out)
}

pub(crate) fn write_dense<W: Write>(w: &mut W, m: &DenseMatrix) -> Result<()> {
    write_u64(w, m.rows() as u64)?;
    write_u64(w, m.cols() as u64)?;
    write_f32_slice(w, m.as_slice())?;
    Ok(())
}

pub(crate) fn read_dense<R: Read>(r: &mut R) -> Result<DenseMatrix> {
    let rows = read_len(r, "dense rows")?;
    let cols = read_len(r, "dense cols")?;
    let data = read_f32_vec(r, "dense values")?;
    DenseMatrix::from_vec(rows, cols, data)
        .map_err(|e| corrupt(format!("dense matrix section is inconsistent: {e}")))
}

pub(crate) fn write_csr<W: Write>(w: &mut W, m: &CsrMatrix) -> Result<()> {
    write_u64(w, m.rows() as u64)?;
    write_u64(w, m.cols() as u64)?;
    write_u64(w, m.indptr().len() as u64)?;
    for &p in m.indptr() {
        write_u64(w, p as u64)?;
    }
    write_u64(w, m.indices().len() as u64)?;
    for &c in m.indices() {
        write_u32(w, c)?;
    }
    write_f32_slice(w, m.values())?;
    Ok(())
}

pub(crate) fn read_csr<R: Read>(r: &mut R) -> Result<CsrMatrix> {
    let rows = read_len(r, "csr rows")?;
    let cols = read_len(r, "csr cols")?;
    let indptr_len = read_len(r, "csr indptr")?;
    let mut indptr = Vec::with_capacity(indptr_len);
    for _ in 0..indptr_len {
        indptr.push(read_u64(r)? as usize);
    }
    let indices_len = read_len(r, "csr indices")?;
    let mut indices = Vec::with_capacity(indices_len);
    for _ in 0..indices_len {
        indices.push(read_u32(r)?);
    }
    let values = read_f32_vec(r, "csr values")?;
    CsrMatrix::from_raw(rows, cols, indptr, indices, values)
        .map_err(|e| corrupt(format!("csr matrix section is inconsistent: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 7).unwrap();
        write_u64(&mut buf, u64::MAX - 3).unwrap();
        write_f32(&mut buf, -1.25).unwrap();
        write_f64(&mut buf, std::f64::consts::PI).unwrap();
        write_string(&mut buf, "snapshot-α").unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_u32(&mut r).unwrap(), 7);
        assert_eq!(read_u64(&mut r).unwrap(), u64::MAX - 3);
        assert_eq!(read_f32(&mut r).unwrap(), -1.25);
        assert_eq!(read_f64(&mut r).unwrap(), std::f64::consts::PI);
        assert_eq!(read_string(&mut r).unwrap(), "snapshot-α");
        assert!(r.is_empty());
    }

    #[test]
    fn matrix_round_trips() {
        let dense = DenseMatrix::from_fn(3, 5, |i, j| (i * 5 + j) as f32 * 0.5 - 3.0);
        let csr =
            CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.5), (2, 0, -2.0), (3, 3, 0.25)]).unwrap();
        let mut buf = Vec::new();
        write_dense(&mut buf, &dense).unwrap();
        write_csr(&mut buf, &csr).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_dense(&mut r).unwrap(), dense);
        assert_eq!(read_csr(&mut r).unwrap(), csr);
    }

    #[test]
    fn truncation_is_detected() {
        let mut buf = Vec::new();
        write_dense(&mut buf, &DenseMatrix::filled(2, 2, 1.0)).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(matches!(
            read_dense(&mut buf.as_slice()),
            Err(ServeError::Io(_))
        ));
    }

    #[test]
    fn oversized_lengths_are_rejected_before_allocation() {
        let mut buf = Vec::new();
        write_u64(&mut buf, u64::MAX).unwrap();
        assert!(matches!(
            read_string(&mut buf.as_slice()),
            Err(ServeError::Corrupt { .. })
        ));
    }

    #[test]
    fn invalid_utf8_is_corrupt_not_panic() {
        let mut buf = Vec::new();
        write_u64(&mut buf, 2).unwrap();
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert!(matches!(
            read_string(&mut buf.as_slice()),
            Err(ServeError::Corrupt { .. })
        ));
    }
}
