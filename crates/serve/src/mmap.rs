//! Zero-copy access to format-v2 snapshot files.
//!
//! [`MappedSnapshot`] maps a v2 file (or adopts an in-memory byte buffer)
//! and exposes its array sections as borrowed [`CsrViewAny`]/[`DenseView`]
//! slices — no decode, no allocation proportional to the graph. Validation
//! is split by cost so cold-start stays O(1) in the file size:
//!
//! * **open** — O(#sections): magic, version, endianness, header-table
//!   bounds, 64-byte alignment, overlap/duplicate checks, META decode,
//!   and a cross-check of every array section's byte length against the
//!   dimensions META declares (plus the O(1) `indptr` endpoint checks).
//! * **[`MappedSnapshot::verify`]** — O(bytes): per-section CRC32 and the
//!   O(nnz) CSR structural invariants. Runs once; success is cached, so
//!   repeated engine builds off one mapping pay it once.
//!
//! The array sections are little-endian; a big-endian host gets a typed
//! [`SnapshotError::UnsupportedPlatform`] instead of silently reinterpreted
//! garbage. Mapping uses `mmap(2)` directly (no external crate) on Unix and
//! falls back to a 64-byte-aligned heap copy elsewhere or when mapping
//! fails, so the borrowed views are always correctly aligned either way.

use crate::format::{self, MetaInfo};
use crate::snapshot::SNAPSHOT_MAGIC;
use crate::{Result, ServeError, ServeSnapshot, SnapshotError};
use sigma::snapshot::ModelSnapshot;
use sigma_matrix::{CsrView, CsrViewAny, DenseView};
use std::fs::File;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

/// A 64-byte-aligned heap buffer: the non-mmap backing. `Vec<u8>` only
/// guarantees byte alignment, which would break the `&[u64]` section views,
/// so bytes adopted from memory are copied into an explicitly aligned
/// allocation.
struct AlignedBytes {
    ptr: std::ptr::NonNull<u8>,
    len: usize,
}

impl AlignedBytes {
    fn from_slice(data: &[u8]) -> Self {
        let layout = std::alloc::Layout::from_size_align(data.len().max(1), 64)
            .expect("valid alignment layout");
        // SAFETY: layout has non-zero size; the copy stays within the fresh
        // allocation's bounds.
        unsafe {
            let raw = std::alloc::alloc(layout);
            let ptr = match std::ptr::NonNull::new(raw) {
                Some(p) => p,
                None => std::alloc::handle_alloc_error(layout),
            };
            std::ptr::copy_nonoverlapping(data.as_ptr(), ptr.as_ptr(), data.len());
            Self {
                ptr,
                len: data.len(),
            }
        }
    }

    fn bytes(&self) -> &[u8] {
        // SAFETY: ptr/len describe a live allocation owned by self.
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl Drop for AlignedBytes {
    fn drop(&mut self) {
        let layout = std::alloc::Layout::from_size_align(self.len.max(1), 64)
            .expect("valid alignment layout");
        // SAFETY: same layout the buffer was allocated with.
        unsafe { std::alloc::dealloc(self.ptr.as_ptr(), layout) };
    }
}

// SAFETY: the buffer is immutable after construction and owned uniquely.
unsafe impl Send for AlignedBytes {}
unsafe impl Sync for AlignedBytes {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// Where the snapshot bytes live: a private read-only file mapping, or an
/// aligned heap copy.
enum Backing {
    #[cfg(unix)]
    Mmap {
        ptr: *mut u8,
        len: usize,
    },
    Heap(AlignedBytes),
}

impl Backing {
    fn bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: the mapping is live for as long as self.
            Backing::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Backing::Heap(buf) => buf.bytes(),
        }
    }
}

impl Drop for Backing {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Backing::Mmap { ptr, len } = self {
            // SAFETY: exactly the region mmap returned.
            unsafe { sys::munmap(*ptr as *mut std::ffi::c_void, *len) };
        }
    }
}

// SAFETY: the mapping is PROT_READ/MAP_PRIVATE and never written.
unsafe impl Send for Backing {}
unsafe impl Sync for Backing {}

/// One parsed header-table entry.
#[derive(Debug, Clone, Copy)]
struct Section {
    tag: [u8; 8],
    offset: usize,
    len: usize,
    crc: u32,
}

/// A format-v2 snapshot served in place from its file bytes.
///
/// Obtained from [`MappedSnapshot::open`] (mmap) or
/// [`MappedSnapshot::from_bytes`] (aligned heap copy). Header structure is
/// validated up front; call [`MappedSnapshot::verify`] before trusting
/// array contents — the engine constructors do this for you. Cheaply
/// shareable behind an [`Arc`]; borrowed views pin the mapping through it.
pub struct MappedSnapshot {
    backing: Backing,
    sections: Vec<Section>,
    meta: MetaInfo,
    verified: AtomicBool,
    model: OnceLock<Arc<ModelSnapshot>>,
}

impl std::fmt::Debug for MappedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedSnapshot")
            .field("tag", &self.meta.tag)
            .field("num_nodes", &self.meta.num_nodes)
            .field("bytes", &self.backing.bytes().len())
            .field("verified", &self.verified.load(Ordering::Acquire))
            .finish()
    }
}

fn meta_err(reason: impl Into<String>) -> SnapshotError {
    SnapshotError::Meta {
        reason: reason.into(),
    }
}

impl MappedSnapshot {
    /// Maps `path` read-only and validates the header table. O(1) in the
    /// file size: only the prelude, table, META/`indptr` endpoints are
    /// touched. Falls back to an aligned heap read if mapping fails.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let file = File::open(path)?;
        let len = file.metadata()?.len() as usize;
        if len < format::PRELUDE_LEN {
            return Err(SnapshotError::Truncated {
                what: "header prelude".into(),
            }
            .into());
        }
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: read-only private mapping of a file we hold open; the
            // fd may be closed after mmap returns (the mapping persists).
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr != usize::MAX as *mut std::ffi::c_void && !ptr.is_null() {
                return Self::from_backing(Backing::Mmap {
                    ptr: ptr as *mut u8,
                    len,
                });
            }
        }
        // Mapping unavailable: fall back to an aligned in-memory copy.
        let mut buf = Vec::with_capacity(len);
        use std::io::Read as _;
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Self::from_backing(Backing::Heap(AlignedBytes::from_slice(&buf)))
    }

    /// Adopts an in-memory v2 image (copied into 64-byte-aligned storage)
    /// and validates the header table, exactly as [`MappedSnapshot::open`]
    /// does for a file.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        Self::from_backing(Backing::Heap(AlignedBytes::from_slice(bytes)))
    }

    fn from_backing(backing: Backing) -> Result<Self> {
        let (sections, meta) = Self::parse(backing.bytes())?;
        let snap = Self {
            backing,
            sections,
            meta,
            verified: AtomicBool::new(false),
            model: OnceLock::new(),
        };
        // O(1) endpoint checks on the CSR views (indptr starts at 0, ends
        // at nnz) so the infallible view accessors cannot panic later.
        snap.try_csr_view(
            format::TAG_ADJ_PTR,
            format::TAG_ADJ_IDX,
            format::TAG_ADJ_VAL,
            snap.meta.adj_ptr_width,
            "adjacency",
        )?;
        if snap.meta.has_operator {
            snap.try_csr_view(
                format::TAG_OP_PTR,
                format::TAG_OP_IDX,
                format::TAG_OP_VAL,
                snap.meta.op_ptr_width,
                "operator",
            )?;
        }
        Ok(snap)
    }

    /// Header-table parse and O(#sections) structural validation.
    fn parse(bytes: &[u8]) -> Result<(Vec<Section>, MetaInfo)> {
        if !cfg!(target_endian = "little") {
            return Err(SnapshotError::UnsupportedPlatform {
                reason: "v2 sections are little-endian arrays; decode with ServeSnapshot::load",
            }
            .into());
        }
        if bytes.len() < format::PRELUDE_LEN {
            return Err(SnapshotError::Truncated {
                what: "header prelude".into(),
            }
            .into());
        }
        if bytes[..8] != SNAPSHOT_MAGIC[..] {
            return Err(SnapshotError::BadMagic.into());
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if version != 2 {
            return Err(SnapshotError::UnsupportedVersion { found: version }.into());
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        if count > format::MAX_SECTIONS {
            return Err(meta_err(format!("implausible section count {count}")).into());
        }
        let table_end = format::PRELUDE_LEN + format::ENTRY_LEN * count;
        if bytes.len() < table_end {
            return Err(SnapshotError::Truncated {
                what: "section table".into(),
            }
            .into());
        }
        let mut sections = Vec::with_capacity(count);
        for i in 0..count {
            let e = &bytes[format::PRELUDE_LEN + i * format::ENTRY_LEN..];
            let tag: [u8; 8] = e[..8].try_into().unwrap();
            let offset = u64::from_le_bytes(e[8..16].try_into().unwrap());
            let len = u64::from_le_bytes(e[16..24].try_into().unwrap());
            let crc = u32::from_le_bytes(e[24..28].try_into().unwrap());
            if offset % format::SECTION_ALIGN as u64 != 0 {
                return Err(SnapshotError::Misaligned {
                    tag: format::tag_str(&tag),
                    offset,
                }
                .into());
            }
            if offset < table_end as u64 {
                return Err(SnapshotError::Overlap {
                    a: "header table".into(),
                    b: format::tag_str(&tag),
                }
                .into());
            }
            let end = offset
                .checked_add(len)
                .ok_or_else(|| SnapshotError::Truncated {
                    what: format!("section {}", format::tag_str(&tag)),
                })?;
            if end > bytes.len() as u64 {
                return Err(SnapshotError::Truncated {
                    what: format!("section {}", format::tag_str(&tag)),
                }
                .into());
            }
            if sections.iter().any(|s: &Section| s.tag == tag) {
                return Err(SnapshotError::DuplicateSection {
                    tag: format::tag_str(&tag),
                }
                .into());
            }
            sections.push(Section {
                tag,
                offset: offset as usize,
                len: len as usize,
                crc,
            });
        }
        // Overlap check over the payload ranges.
        let mut by_offset: Vec<&Section> = sections.iter().collect();
        by_offset.sort_by_key(|s| s.offset);
        for pair in by_offset.windows(2) {
            if pair[0].offset + pair[0].len > pair[1].offset {
                return Err(SnapshotError::Overlap {
                    a: format::tag_str(&pair[0].tag),
                    b: format::tag_str(&pair[1].tag),
                }
                .into());
            }
        }
        let find = |tag: [u8; 8]| sections.iter().find(|s| s.tag == tag);
        let require = |tag: [u8; 8], name: &'static str| {
            find(tag).ok_or(SnapshotError::MissingSection { tag: name })
        };
        let meta_sec = require(format::TAG_META, "META")?;
        let meta = format::decode_meta(&bytes[meta_sec.offset..meta_sec.offset + meta_sec.len])
            .map_err(|e| meta_err(e.to_string()))?;
        if meta.adj_ptr_width != 4 && meta.adj_ptr_width != 8 {
            return Err(meta_err(format!(
                "adjacency indptr width {} is neither 4 nor 8",
                meta.adj_ptr_width
            ))
            .into());
        }
        if meta.has_operator && meta.op_ptr_width != 4 && meta.op_ptr_width != 8 {
            return Err(meta_err(format!(
                "operator indptr width {} is neither 4 nor 8",
                meta.op_ptr_width
            ))
            .into());
        }
        // Cross-check every array section's byte length against META.
        let expect = |tag: [u8; 8], name: &'static str, elems: Option<u64>, width: u64| {
            let sec = require(tag, name)?;
            let elems = elems.ok_or_else(|| meta_err("section size overflows"))?;
            let expected = elems
                .checked_mul(width)
                .ok_or_else(|| meta_err("section size overflows"))?;
            if sec.len as u64 != expected {
                return Err(SnapshotError::SectionSize {
                    tag: name.into(),
                    expected,
                    actual: sec.len as u64,
                });
            }
            Ok(())
        };
        let n = meta.num_nodes;
        expect(
            format::TAG_ADJ_PTR,
            "ADJ_PTR",
            n.checked_add(1),
            meta.adj_ptr_width as u64,
        )?;
        expect(format::TAG_ADJ_IDX, "ADJ_IDX", Some(meta.adj_nnz), 4)?;
        expect(format::TAG_ADJ_VAL, "ADJ_VAL", Some(meta.adj_nnz), 4)?;
        expect(format::TAG_FEAT, "FEAT", n.checked_mul(meta.feature_dim), 4)?;
        if meta.has_operator {
            expect(
                format::TAG_OP_PTR,
                "OP_PTR",
                n.checked_add(1),
                meta.op_ptr_width as u64,
            )?;
            expect(format::TAG_OP_IDX, "OP_IDX", Some(meta.op_nnz), 4)?;
            expect(format::TAG_OP_VAL, "OP_VAL", Some(meta.op_nnz), 4)?;
        }
        if meta.has_embeddings {
            expect(format::TAG_EMB, "EMB", n.checked_mul(meta.num_classes), 4)?;
        }
        require(format::TAG_MODEL, "MODEL")?;
        Ok((sections, meta))
    }

    fn section(&self, tag: [u8; 8]) -> &Section {
        self.sections
            .iter()
            .find(|s| s.tag == tag)
            .expect("section presence was validated at open")
    }

    fn section_bytes(&self, tag: [u8; 8]) -> &[u8] {
        let s = self.section(tag);
        &self.backing.bytes()[s.offset..s.offset + s.len]
    }

    /// Reinterprets an aligned little-endian section as a typed slice.
    fn typed<T: Copy>(&self, tag: [u8; 8]) -> &[T] {
        let bytes = self.section_bytes(tag);
        let size = std::mem::size_of::<T>();
        debug_assert_eq!(bytes.len() % size, 0);
        debug_assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0);
        // SAFETY: section offsets are 64-byte aligned within a 64-byte
        // aligned backing (mmap is page-aligned; the heap path allocates at
        // align 64), lengths were cross-checked against META, the host is
        // little-endian (checked at open), and u32/u64/f32 accept any bit
        // pattern.
        unsafe { std::slice::from_raw_parts(bytes.as_ptr() as *const T, bytes.len() / size) }
    }

    fn try_csr_view(
        &self,
        ptr_tag: [u8; 8],
        idx_tag: [u8; 8],
        val_tag: [u8; 8],
        width: u32,
        section: &'static str,
    ) -> Result<CsrViewAny<'_>> {
        let n = self.meta.num_nodes as usize;
        let indices = self.typed::<u32>(idx_tag);
        let values = self.typed::<f32>(val_tag);
        let view = if width == 4 {
            CsrView::<u32>::new(n, n, self.typed::<u32>(ptr_tag), indices, values)
                .map(CsrViewAny::Narrow)
        } else {
            CsrView::<u64>::new(n, n, self.typed::<u64>(ptr_tag), indices, values)
                .map(CsrViewAny::Wide)
        };
        view.map_err(|e| {
            SnapshotError::InvalidCsr {
                section,
                detail: e.to_string(),
            }
            .into()
        })
    }

    /// Verifies section contents: every header-table CRC32, plus the
    /// O(nnz) CSR structural invariants of the adjacency and operator.
    /// Runs once — success is cached, later calls return immediately.
    pub fn verify(&self) -> Result<()> {
        if self.verified.load(Ordering::Acquire) {
            return Ok(());
        }
        let bytes = self.backing.bytes();
        for s in &self.sections {
            if format::crc32(&bytes[s.offset..s.offset + s.len]) != s.crc {
                return Err(SnapshotError::ChecksumMismatch {
                    tag: format::tag_str(&s.tag),
                }
                .into());
            }
        }
        let check = |view: CsrViewAny<'_>, section: &'static str| {
            view.validate_structure()
                .map_err(|e| SnapshotError::InvalidCsr {
                    section,
                    detail: e.to_string(),
                })
        };
        check(self.adjacency_view(), "adjacency")?;
        if let Some(op) = self.operator_view() {
            check(op, "operator")?;
        }
        self.verified.store(true, Ordering::Release);
        Ok(())
    }

    /// The free-form tag recorded at save time.
    pub fn tag(&self) -> &str {
        &self.meta.tag
    }

    /// Number of nodes this snapshot serves.
    pub fn num_nodes(&self) -> usize {
        self.meta.num_nodes as usize
    }

    /// Width of the feature matrix `X`.
    pub fn feature_dim(&self) -> usize {
        self.meta.feature_dim as usize
    }

    /// Number of output classes.
    pub fn num_classes(&self) -> usize {
        self.meta.num_classes as usize
    }

    /// The Eq. 6 blend weight recorded at save time (already resolved from
    /// `alpha_raw` if the model learned it).
    pub fn effective_alpha(&self) -> f64 {
        self.meta.effective_alpha
    }

    /// Whether the snapshot carries an aggregation operator.
    pub fn has_operator(&self) -> bool {
        self.meta.has_operator
    }

    /// Whether the snapshot carries precomputed embeddings `H`.
    pub fn has_embeddings(&self) -> bool {
        self.meta.has_embeddings
    }

    /// Total mapped bytes.
    pub fn len_bytes(&self) -> usize {
        self.backing.bytes().len()
    }

    /// Borrowed view of the adjacency matrix.
    pub fn adjacency_view(&self) -> CsrViewAny<'_> {
        self.try_csr_view(
            format::TAG_ADJ_PTR,
            format::TAG_ADJ_IDX,
            format::TAG_ADJ_VAL,
            self.meta.adj_ptr_width,
            "adjacency",
        )
        .expect("endpoint checks ran at open")
    }

    /// Borrowed view of the aggregation operator, if present.
    pub fn operator_view(&self) -> Option<CsrViewAny<'_>> {
        if !self.meta.has_operator {
            return None;
        }
        Some(
            self.try_csr_view(
                format::TAG_OP_PTR,
                format::TAG_OP_IDX,
                format::TAG_OP_VAL,
                self.meta.op_ptr_width,
                "operator",
            )
            .expect("endpoint checks ran at open"),
        )
    }

    /// Borrowed view of the node features `X`.
    pub fn features_view(&self) -> DenseView<'_> {
        DenseView::new(
            self.num_nodes(),
            self.feature_dim(),
            self.typed::<f32>(format::TAG_FEAT),
        )
        .expect("section size was cross-checked at open")
    }

    /// Borrowed view of the precomputed embeddings `H`, if present.
    pub fn embeddings_view(&self) -> Option<DenseView<'_>> {
        if !self.meta.has_embeddings {
            return None;
        }
        Some(
            DenseView::new(
                self.num_nodes(),
                self.num_classes(),
                self.typed::<f32>(format::TAG_EMB),
            )
            .expect("section size was cross-checked at open"),
        )
    }

    /// Decodes the model weights (and re-attaches the operator from its
    /// array sections). Lazy and cached: the first call pays the decode,
    /// later calls clone the [`Arc`]. Engines only need this on the repair
    /// path, so a mapped engine's cold-start never decodes the MLP stacks.
    pub fn model(&self) -> Result<Arc<ModelSnapshot>> {
        if let Some(m) = self.model.get() {
            return Ok(m.clone());
        }
        let mut decoded = format::decode_model_blob(self.section_bytes(format::TAG_MODEL))?;
        decoded.operator = match self.operator_view() {
            Some(view) => Some(view.to_owned_matrix()?),
            None => None,
        };
        decoded.validate()?;
        if decoded.num_nodes() != self.num_nodes()
            || decoded.feature_dim() != self.feature_dim()
            || decoded.num_classes() != self.num_classes()
        {
            return Err(meta_err("MODEL dimensions disagree with META").into());
        }
        let arc = Arc::new(decoded);
        Ok(self.model.get_or_init(|| arc).clone())
    }

    /// Fully decodes the mapping into an owned [`ServeSnapshot`]
    /// (verifying first). The v1-compatible slow path.
    pub fn to_snapshot(&self) -> Result<ServeSnapshot> {
        self.verify()?;
        let model = self.model()?.as_ref().clone();
        let features = self.features_view().to_owned_matrix();
        let adjacency = self.adjacency_view().to_owned_matrix()?;
        let mut snap = ServeSnapshot::new(self.meta.tag.clone(), model, features, adjacency)?;
        if let Some(emb) = self.embeddings_view() {
            snap.embeddings = Some(emb.to_owned_matrix());
        }
        Ok(snap)
    }
}

/// Maps `ServeError::Snapshot` into the legacy `Corrupt` shape (keeping
/// version errors typed) so `ServeSnapshot::read_from` reports v2 damage
/// through the same variants its v1 callers already match on.
pub(crate) fn to_legacy_error(e: ServeError) -> ServeError {
    match e {
        ServeError::Snapshot(SnapshotError::UnsupportedVersion { found }) => {
            ServeError::UnsupportedVersion {
                found,
                supported: crate::SNAPSHOT_VERSION,
            }
        }
        ServeError::Snapshot(s) => ServeError::Corrupt {
            reason: s.to_string(),
        },
        other => other,
    }
}
