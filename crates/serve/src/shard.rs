//! In-process operator sharding: N engines behind one façade.
//!
//! SIGMA's global aggregation is a *row*-sliced read over the constant
//! operator `S` (`Ẑ_u` needs only row `u` of `S`, plus arbitrary rows of
//! the small `n × C` embedding `H`), so the operator shards naturally
//! along row ranges. [`ShardPlan`] cuts `0..n` into contiguous ranges of
//! near-equal operator nnz mass with
//! [`sigma_parallel::partition_by_weight`]; [`ShardRouter`] runs one
//! [`InferenceEngine`] per range — each serving the full-shape operator
//! with every out-of-range row empty, so shard-local caches, repairs and
//! invalidation reuse the single-engine machinery unchanged — and:
//!
//! * **scatter/gathers** [`ShardRouter::predict`] /
//!   [`ShardRouter::predict_batch`] by row ownership, re-assembling
//!   results in canonical request order (bitwise identical to one engine:
//!   each row is computed from the same operator row and the same `H`,
//!   and request order never affects a row's value);
//! * fans [`ShardRouter::apply_edge_updates`] / [`ShardRouter::repair_from`]
//!   **only to shards whose rows the edit footprint can touch** — a shard
//!   is skipped when the changed/affected node set misses its range *and*
//!   none of its operator rows reference an affected node *and* it holds
//!   no stale in-range nodes (the skip-soundness conditions; see
//!   `repair_from`);
//! * aggregates per-shard [`EngineStats`] into [`RouterStats`] and
//!   registers router-level `sigma_shard_*` metrics (query/repair fan-out,
//!   skipped-shard counts) next to the engines' `sigma_serve_*` families.
//!
//! `H` is replicated per shard rather than sliced: global aggregation
//! reads arbitrary `H` rows (`Ẑ_u = Σ_v S_uv · H_v`), and at `n × C`
//! (classes, not hidden width) it is the small artifact by design.
//!
//! The determinism contract is proven, not assumed:
//! `sigma_testutil::replay_differential_sharded` replays seeded edit
//! traces against a 1-engine reference and an N-shard router
//! simultaneously, asserting per-batch bitwise equality of logits,
//! labels, operator rows, and per-shard hit/eviction accounting.

use crate::engine::{
    EngineConfig, EngineRepair, EngineStats, InferenceEngine, OperatorPatch, Prediction,
    SimilarNode,
};
use crate::mmap::MappedSnapshot;
use crate::snapshot::ServeSnapshot;
use crate::{Result, ServeError};
use sigma_matrix::{CsrMatrix, CsrViewAny};
use sigma_obs::{Counter, Histogram, Registry};
use sigma_simrank::{DynamicSimRank, EdgeUpdate, RepairOutcome};
use std::ops::Range;
use std::sync::Arc;

/// Tuning knobs of a [`ShardRouter`].
#[derive(Debug, Clone, Copy)]
pub struct ShardRouterConfig {
    /// Number of shards to cut the operator into. Must be non-zero; may
    /// exceed the node count (the surplus shards own empty ranges and
    /// never receive traffic).
    pub shards: usize,
    /// Per-shard engine configuration (cache capacity is *per shard*).
    pub engine: EngineConfig,
}

impl Default for ShardRouterConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            engine: EngineConfig::default(),
        }
    }
}

/// How `0..n` is cut into per-shard row ranges.
///
/// Ranges are contiguous, in ascending order, cover every row exactly
/// once, and are padded with empty `n..n` tails up to the requested shard
/// count when the planner cannot use every shard (more shards than rows,
/// or one row holding all the mass) — so a router always constructs
/// exactly the configured number of engines, some possibly empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    ranges: Vec<Range<usize>>,
    num_nodes: usize,
}

impl ShardPlan {
    /// Plans `shards` ranges over rows weighted by `weights` (operator nnz
    /// mass in the router; all-zero weights degrade to the equal-count
    /// split). Fails with [`ServeError::ShardConfig`] when `shards == 0`.
    pub fn from_weights(weights: &[usize], shards: usize) -> Result<Self> {
        if shards == 0 {
            return Err(ServeError::ShardConfig {
                shards,
                reason: "a router needs at least one shard".into(),
            });
        }
        let num_nodes = weights.len();
        let mut ranges = sigma_parallel::partition_by_weight(weights, shards);
        // The planner returns at most `shards` non-empty ranges; pad with
        // empty tails so every configured shard exists (and provably
        // receives no traffic).
        while ranges.len() < shards {
            ranges.push(num_nodes..num_nodes);
        }
        Ok(Self { ranges, num_nodes })
    }

    /// Number of shards (including empty tail shards).
    pub fn num_shards(&self) -> usize {
        self.ranges.len()
    }

    /// Number of rows the plan covers.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// The per-shard row ranges, in shard order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// The shard owning `node`'s operator row. `node` must be in range.
    pub fn shard_of(&self, node: usize) -> usize {
        debug_assert!(node < self.num_nodes, "node {node} outside the plan");
        // Ranges are contiguous and ascending, so the owner is the first
        // range ending past the node; empty ranges (end == start) can
        // never win the search.
        self.ranges.partition_point(|r| r.end <= node)
    }
}

/// What one [`ShardRouter::repair_from`] round did across the fleet.
#[derive(Debug, Clone)]
pub struct RouterRepair {
    /// Whether the round degenerated to a whole-operator install on every
    /// shard (first sync with a maintainer that had no prior state).
    pub full_refresh: bool,
    /// Operator rows the maintainer reported changed, globally (sorted) —
    /// identical to what a single engine's `EngineRepair::operator_rows`
    /// would list for the same round.
    pub operator_rows: Vec<usize>,
    /// Per-shard repair reports, in shard order: `None` for shards the
    /// round provably did not need to touch.
    pub shard_repairs: Vec<Option<EngineRepair>>,
    /// Shards that received repair traffic this round.
    pub fanout: usize,
    /// Shards skipped this round (`fanout + skipped == num_shards`).
    pub skipped: usize,
}

/// Aggregated router counters, read with [`ShardRouter::stats`].
///
/// The `engines` field sums the per-shard [`EngineStats`] field-wise; the
/// same tearing semantics apply (each field individually monotone, no
/// cross-field consistency while traffic is in flight). Cache hit/miss and
/// eviction sums match a single engine's counters exactly when every shard
/// cache is as large as its range (the differential oracle asserts this);
/// `embedding_rows_repaired` sums *per-shard* re-encodes and therefore
/// over-counts a single engine's by up to the repair fan-out, and
/// `repair_dirty_seeds` is tracked at router level instead (the maintainer
/// runs once per round, not once per shard).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterStats {
    /// Field-wise sum of the per-shard engine counters.
    pub engines: EngineStats,
    /// Each shard's own counters, in shard order.
    pub per_shard: Vec<EngineStats>,
    /// `predict`/`predict_batch` calls routed.
    pub batches_routed: u64,
    /// Nodes routed across all batches.
    pub queries_routed: u64,
    /// Per-shard sub-batches dispatched (≥ `batches_routed`; the per-batch
    /// query fan-out is also recorded in the `sigma_shard_query_fanout`
    /// histogram when `obs` is enabled).
    pub shard_batches_dispatched: u64,
    /// Shards that received repair traffic across all `repair_from` rounds.
    pub repair_fanout: u64,
    /// Shards skipped across all `repair_from` rounds.
    pub repair_skipped: u64,
    /// Dirty seed pairs re-pushed by the maintainer across all rounds
    /// (router-level: the maintainer repairs once per round).
    pub repair_dirty_seeds: u64,
    /// Shards that received edge-update invalidation traffic.
    pub edge_update_fanout: u64,
    /// Shards skipped by edge-update fan-out.
    pub edge_update_skipped: u64,
    /// `most_similar`/`most_similar_batch` calls routed.
    pub similar_routed: u64,
    /// Per-shard similarity sub-batches dispatched (each query's operator
    /// row lives whole on its owner shard, so this counts owner-shard
    /// dispatches — never cross-shard merges).
    pub similar_subbatches_dispatched: u64,
}

/// Router-level counters, registered under `sigma_shard_*` names when the
/// `obs` feature is on (several routers in one process merge by
/// summation), always functional as plain relaxed atomics otherwise —
/// mirroring the engine's `EngineMetrics`.
struct RouterMetrics {
    batches_routed: Arc<Counter>,
    queries_routed: Arc<Counter>,
    shard_batches: Arc<Counter>,
    repair_fanout: Arc<Counter>,
    repair_skipped: Arc<Counter>,
    repair_dirty_seeds: Arc<Counter>,
    edge_update_fanout: Arc<Counter>,
    edge_update_skipped: Arc<Counter>,
    similar_routed: Arc<Counter>,
    similar_subbatches: Arc<Counter>,
    /// Shards touched per routed batch (prediction and similarity alike).
    query_fanout: Arc<Histogram>,
}

impl RouterMetrics {
    fn new() -> Self {
        let metrics = Self {
            batches_routed: Arc::new(Counter::new()),
            queries_routed: Arc::new(Counter::new()),
            shard_batches: Arc::new(Counter::new()),
            repair_fanout: Arc::new(Counter::new()),
            repair_skipped: Arc::new(Counter::new()),
            repair_dirty_seeds: Arc::new(Counter::new()),
            edge_update_fanout: Arc::new(Counter::new()),
            edge_update_skipped: Arc::new(Counter::new()),
            similar_routed: Arc::new(Counter::new()),
            similar_subbatches: Arc::new(Counter::new()),
            query_fanout: Arc::new(Histogram::new()),
        };
        if sigma_obs::ENABLED {
            let registry = Registry::global();
            registry.register_arc_counter(
                "sigma_shard_batches_routed_total",
                "predict/predict_batch calls routed across shards",
                &metrics.batches_routed,
            );
            registry.register_arc_counter(
                "sigma_shard_queries_routed_total",
                "nodes routed across all batches",
                &metrics.queries_routed,
            );
            registry.register_arc_counter(
                "sigma_shard_subbatches_total",
                "per-shard sub-batches dispatched by the router",
                &metrics.shard_batches,
            );
            registry.register_arc_counter(
                "sigma_shard_repair_fanout_total",
                "shards that received repair traffic",
                &metrics.repair_fanout,
            );
            registry.register_arc_counter(
                "sigma_shard_repair_skipped_total",
                "shards skipped by footprint-sparse repair fan-out",
                &metrics.repair_skipped,
            );
            registry.register_arc_counter(
                "sigma_shard_repair_dirty_seeds_total",
                "dirty seed pairs re-pushed by the router's maintainer rounds",
                &metrics.repair_dirty_seeds,
            );
            registry.register_arc_counter(
                "sigma_shard_edge_update_fanout_total",
                "shards that received edge-update invalidation traffic",
                &metrics.edge_update_fanout,
            );
            registry.register_arc_counter(
                "sigma_shard_edge_update_skipped_total",
                "shards skipped by edge-update fan-out",
                &metrics.edge_update_skipped,
            );
            registry.register_arc_counter(
                "sigma_shard_similar_routed_total",
                "most_similar calls routed across shards",
                &metrics.similar_routed,
            );
            registry.register_arc_counter(
                "sigma_shard_similar_subbatches_total",
                "per-shard similarity sub-batches dispatched by the router",
                &metrics.similar_subbatches,
            );
            registry.register_arc_histogram(
                "sigma_shard_query_fanout",
                "shards touched per routed batch",
                &metrics.query_fanout,
            );
        }
        metrics
    }
}

/// N [`InferenceEngine`]s behind the single-engine façade.
///
/// Construction cuts the operator by row ranges ([`ShardPlan`]) and gives
/// each shard the full-shape `n × n` operator with out-of-range rows
/// empty: every engine-local mechanism (row cache keyed by node id,
/// reverse-pattern invalidation, row-patch repair) works unchanged, and
/// queries for a node hit exactly the shard owning its row. The public
/// surface mirrors [`InferenceEngine`]; results are bitwise identical to
/// a single engine over the unsharded operator at any shard count, any
/// thread count.
///
/// Like the engine, queries may race maintenance freely, but maintenance
/// calls ([`ShardRouter::repair_from`], [`ShardRouter::apply_edge_updates`])
/// must not race each other — run them from a single maintenance thread.
pub struct ShardRouter {
    plan: ShardPlan,
    engines: Vec<InferenceEngine>,
    num_nodes: usize,
    num_classes: usize,
    has_operator: bool,
    metrics: RouterMetrics,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("num_nodes", &self.num_nodes)
            .field("num_classes", &self.num_classes)
            .field("shards", &self.plan.num_shards())
            .field("ranges", &self.plan.ranges())
            .finish()
    }
}

impl ShardRouter {
    /// Builds a router over a decoded snapshot: plans ranges by operator
    /// nnz mass, precomputes the embedding `H` once, and constructs one
    /// engine per range over the row-masked operator. A failing shard
    /// surfaces as [`ServeError::Shard`] naming its index.
    pub fn new(snapshot: &ServeSnapshot, config: &ShardRouterConfig) -> Result<Self> {
        let n = snapshot.num_nodes();
        let plan = plan_for(
            snapshot
                .model
                .operator
                .as_ref()
                .map(|m| CsrViewAny::Native(m.view())),
            n,
            config.shards,
        )?;
        // One encoder run shared by every shard: `H` depends on features,
        // adjacency and weights only, never on the operator mask.
        let mut base = snapshot.clone();
        base.precompute_embeddings()?;
        let mut engines = Vec::with_capacity(plan.num_shards());
        for (shard, range) in plan.ranges().iter().enumerate() {
            let mut shard_snapshot = base.clone();
            if let Some(operator) = &snapshot.model.operator {
                shard_snapshot.model.operator = Some(masked_operator(
                    &CsrViewAny::Native(operator.view()),
                    range,
                )?);
            }
            engines.push(
                InferenceEngine::new(&shard_snapshot, config.engine)
                    .map_err(|e| shard_error(shard, e))?,
            );
        }
        Ok(Self::assemble(
            plan,
            engines,
            snapshot.model.operator.is_some(),
        ))
    }

    /// Builds a router whose shards serve out of mapped v2 snapshots —
    /// typically `N` clones of one `Arc<MappedSnapshot>`, sharing the
    /// mapping zero-copy (the shard count is the vector's length). Each
    /// shard's operator is row-masked to its range via
    /// [`InferenceEngine::install_operator`]; features, adjacency and
    /// embeddings stay borrowed from the mapping.
    ///
    /// Every per-shard failure — including a snapshot failing its deferred
    /// `verify()` — surfaces as [`ServeError::Shard`] naming the shard
    /// index, never a panic or a silently smaller fleet.
    pub fn from_mapped(
        snapshots: Vec<Arc<MappedSnapshot>>,
        engine_config: EngineConfig,
    ) -> Result<Self> {
        if snapshots.is_empty() {
            return Err(ServeError::ShardConfig {
                shards: 0,
                reason: "a router needs at least one shard snapshot".into(),
            });
        }
        let shards = snapshots.len();
        let mut engines = Vec::with_capacity(shards);
        for (shard, snap) in snapshots.iter().enumerate() {
            engines.push(
                InferenceEngine::from_mapped(snap.clone(), engine_config)
                    .map_err(|e| shard_error(shard, e))?,
            );
        }
        let n = engines[0].num_nodes();
        let classes = engines[0].num_classes();
        let has_operator = snapshots[0].has_operator();
        for (shard, engine) in engines.iter().enumerate() {
            if engine.num_nodes() != n
                || engine.num_classes() != classes
                || snapshots[shard].has_operator() != has_operator
            {
                return Err(ServeError::ShardConfig {
                    shards,
                    reason: format!(
                        "shard {shard} maps a different snapshot than shard 0 \
                         ({} nodes × {} classes, operator: {}; expected {n} × {classes}, \
                         operator: {has_operator}) — every shard must map the same artifact",
                        engine.num_nodes(),
                        engine.num_classes(),
                        snapshots[shard].has_operator(),
                    ),
                });
            }
        }
        let plan = plan_for(snapshots[0].operator_view(), n, shards)?;
        for (shard, (engine, range)) in engines.iter().zip(plan.ranges()).enumerate() {
            if let Some(view) = snapshots[shard].operator_view() {
                let masked = masked_operator(&view, range)?;
                engine
                    .install_operator(masked)
                    .map_err(|e| shard_error(shard, e))?;
            }
        }
        Ok(Self::assemble(plan, engines, has_operator))
    }

    fn assemble(plan: ShardPlan, engines: Vec<InferenceEngine>, has_operator: bool) -> Self {
        let num_nodes = plan.num_nodes();
        let num_classes = engines[0].num_classes();
        Self {
            plan,
            engines,
            num_nodes,
            num_classes,
            has_operator,
            metrics: RouterMetrics::new(),
        }
    }

    /// Number of nodes the fleet serves.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Number of classes per prediction.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Number of shards (including empty tail shards).
    pub fn num_shards(&self) -> usize {
        self.plan.num_shards()
    }

    /// The row-range plan the router was built with.
    pub fn plan(&self) -> &ShardPlan {
        &self.plan
    }

    /// The per-shard engines, in shard order (observability hook for the
    /// differential oracle; all mutation must go through the router).
    pub fn engines(&self) -> &[InferenceEngine] {
        &self.engines
    }

    /// Serves a single node on the shard owning its operator row.
    pub fn predict(&self, node: usize) -> Result<Prediction> {
        if node >= self.num_nodes {
            return Err(ServeError::InvalidQuery {
                node,
                num_nodes: self.num_nodes,
            });
        }
        let prediction = self.engines[self.plan.shard_of(node)].predict(node)?;
        self.metrics.batches_routed.inc();
        self.metrics.queries_routed.inc();
        self.metrics.shard_batches.inc();
        if sigma_obs::ENABLED {
            self.metrics.query_fanout.record(1);
        }
        Ok(prediction)
    }

    /// Serves a batch: scatters nodes to their owning shards, queries each
    /// touched shard once with its sub-batch (shards parallelise
    /// internally on the shared pool), and gathers predictions back in
    /// canonical request order. Duplicate nodes are served per occurrence,
    /// as a single engine would.
    pub fn predict_batch(&self, nodes: &[usize]) -> Result<Vec<Prediction>> {
        for &node in nodes {
            if node >= self.num_nodes {
                return Err(ServeError::InvalidQuery {
                    node,
                    num_nodes: self.num_nodes,
                });
            }
        }
        let shards = self.plan.num_shards();
        let mut sub_batches: Vec<Vec<usize>> = vec![Vec::new(); shards];
        let mut slots: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (slot, &node) in nodes.iter().enumerate() {
            let shard = self.plan.shard_of(node);
            sub_batches[shard].push(node);
            slots[shard].push(slot);
        }
        let mut out: Vec<Option<Prediction>> = nodes.iter().map(|_| None).collect();
        let mut fanout = 0u64;
        for shard in 0..shards {
            if sub_batches[shard].is_empty() {
                continue;
            }
            fanout += 1;
            let predictions = self.engines[shard]
                .predict_batch(&sub_batches[shard])
                .map_err(|e| shard_error(shard, e))?;
            for (&slot, prediction) in slots[shard].iter().zip(predictions) {
                out[slot] = Some(prediction);
            }
        }
        self.metrics.batches_routed.inc();
        self.metrics.queries_routed.add(nodes.len() as u64);
        self.metrics.shard_batches.add(fanout);
        if sigma_obs::ENABLED {
            self.metrics.query_fanout.record(fanout);
        }
        Ok(out
            .into_iter()
            .map(|p| p.expect("every requested slot was served by its owning shard"))
            .collect())
    }

    /// Top-`k` nodes most similar to `node`, served by the shard owning
    /// the node's operator row.
    ///
    /// Rows are full-shape per shard ([`masked_operator`] keeps the whole
    /// `(n, n)` coordinate space), so the owner shard holds the *complete*
    /// row and no cross-shard merge is ever needed — asserted here. The
    /// answer is bitwise identical to [`InferenceEngine::most_similar`] on
    /// an unsharded engine: both paths rank the same row through the same
    /// code, under the same pinned score-desc/id-asc tie-break.
    pub fn most_similar(&self, node: usize, k: usize) -> Result<Vec<SimilarNode>> {
        if node >= self.num_nodes {
            return Err(ServeError::InvalidQuery {
                node,
                num_nodes: self.num_nodes,
            });
        }
        let shard = self.plan.shard_of(node);
        debug_assert!(
            self.plan.ranges()[shard].contains(&node),
            "owner shard {shard} must hold node {node}'s complete operator row"
        );
        let answer = self.engines[shard]
            .most_similar(node, k)
            .map_err(|e| shard_error(shard, e))?;
        self.metrics.similar_routed.inc();
        self.metrics.similar_subbatches.inc();
        if sigma_obs::ENABLED {
            self.metrics.query_fanout.record(1);
        }
        Ok(answer)
    }

    /// Serves a batch of `(node, k)` similarity queries: scatters each
    /// query to its row-owner shard, queries each touched shard once, and
    /// gathers answers back in canonical request order (duplicates served
    /// per occurrence, as a single engine would).
    pub fn most_similar_batch(&self, queries: &[(usize, usize)]) -> Result<Vec<Vec<SimilarNode>>> {
        for &(node, _) in queries {
            if node >= self.num_nodes {
                return Err(ServeError::InvalidQuery {
                    node,
                    num_nodes: self.num_nodes,
                });
            }
        }
        let shards = self.plan.num_shards();
        let mut sub_batches: Vec<Vec<(usize, usize)>> = vec![Vec::new(); shards];
        let mut slots: Vec<Vec<usize>> = vec![Vec::new(); shards];
        for (slot, &query) in queries.iter().enumerate() {
            let shard = self.plan.shard_of(query.0);
            debug_assert!(
                self.plan.ranges()[shard].contains(&query.0),
                "owner shard {shard} must hold node {}'s complete operator row",
                query.0
            );
            sub_batches[shard].push(query);
            slots[shard].push(slot);
        }
        let mut out: Vec<Option<Vec<SimilarNode>>> = queries.iter().map(|_| None).collect();
        let mut fanout = 0u64;
        for shard in 0..shards {
            if sub_batches[shard].is_empty() {
                continue;
            }
            fanout += 1;
            let answers = self.engines[shard]
                .most_similar_batch(&sub_batches[shard])
                .map_err(|e| shard_error(shard, e))?;
            for (&slot, answer) in slots[shard].iter().zip(answers) {
                out[slot] = Some(answer);
            }
        }
        self.metrics.similar_routed.inc();
        self.metrics.similar_subbatches.add(fanout);
        if sigma_obs::ENABLED {
            self.metrics.query_fanout.record(fanout);
        }
        Ok(out
            .into_iter()
            .map(|a| a.expect("every similarity query was served by its owning shard"))
            .collect())
    }

    /// Applies a stream of edge updates, fanning invalidation only to the
    /// shards it can affect.
    ///
    /// Each shard computes the first-order footprint from its *own*
    /// adjacency copy (shards may lag each other between repairs) and is
    /// skipped when the footprint misses its row range and none of its
    /// operator rows reference an affected node — exactly the rows a
    /// single engine would touch, restricted to that shard's range.
    /// Returns the total number of cached rows invalidated across the
    /// fleet.
    pub fn apply_edge_updates(&self, updates: &[EdgeUpdate]) -> Result<usize> {
        let mut total = 0usize;
        let mut fanout = 0u64;
        let mut skipped = 0u64;
        for (shard, engine) in self.engines.iter().enumerate() {
            let range = &self.plan.ranges()[shard];
            let affected = engine
                .edge_update_footprint(updates)
                .map_err(|e| shard_error(shard, e))?;
            let needs = affected.iter().any(|a| range.contains(a))
                || !engine.referencing_rows(&affected).is_empty();
            if needs {
                total += engine.invalidate_nodes(&affected);
                fanout += 1;
            } else {
                skipped += 1;
            }
        }
        self.metrics.edge_update_fanout.add(fanout);
        self.metrics.edge_update_skipped.add(skipped);
        Ok(total)
    }

    /// Incrementally repairs the fleet from a [`DynamicSimRank`]
    /// maintainer — the sharded [`InferenceEngine::repair_from`].
    ///
    /// The maintainer is driven **once** ([`DynamicSimRank::repair`]
    /// consumes the pending edits) and its payload is fanned out
    /// row-filtered: shard `s` receives [`InferenceEngine::apply_repair`]
    /// with the changed rows inside its range iff the round can touch it.
    /// A shard is provably untouchable — and skipped — when all hold:
    ///
    /// 1. no changed operator row lands in its range,
    /// 2. no edited node (changed adjacency row, hence changed `H` row)
    ///    lands in its range (the `α·H_u` blend term),
    /// 3. none of its operator rows reference an edited node (the
    ///    `Σ S_uv·H_v` term, checked against the shard's reverse pattern),
    /// 4. it holds no stale in-range nodes from earlier edge updates
    ///    (repair must clear staleness wherever it is observable).
    ///
    /// A skipped shard's adjacency may lag the maintainer; that is sound
    /// because a later repair diffs the shard's *own* adjacency copy and
    /// re-encodes cumulatively (`apply_repair` self-heals), and a no-op
    /// edit trace (empty `affected_nodes()`) therefore fans out to **zero**
    /// shards. Served results remain bitwise identical to a single engine
    /// after every round — the sharded differential oracle's contract.
    pub fn repair_from(&self, maintainer: &mut DynamicSimRank) -> Result<RouterRepair> {
        let n = self.num_nodes;
        let graph_nodes = maintainer.graph().num_nodes();
        if graph_nodes != n {
            return Err(ServeError::OperatorMismatch {
                got: (graph_nodes, graph_nodes),
                expected: n,
            });
        }
        let shards = self.plan.num_shards();
        let outcome = maintainer.repair().map_err(ServeError::SimRank)?;
        let adjacency = maintainer.graph().to_adjacency();
        match outcome {
            RepairOutcome::FullRefresh => {
                let operator = if self.has_operator {
                    Some(maintainer.operator().map_err(ServeError::SimRank)?)
                } else {
                    None
                };
                let mut shard_repairs = Vec::with_capacity(shards);
                for (shard, engine) in self.engines.iter().enumerate() {
                    let range = &self.plan.ranges()[shard];
                    let (rows, patch) = match &operator {
                        Some(op) => (
                            range.clone().collect::<Vec<usize>>(),
                            OperatorPatch::Full(masked_operator(
                                &CsrViewAny::Native(op.view()),
                                range,
                            )?),
                        ),
                        None => (Vec::new(), OperatorPatch::None),
                    };
                    let repair = engine
                        .apply_repair(&rows, patch, adjacency.clone(), 0)
                        .map_err(|e| shard_error(shard, e))?;
                    shard_repairs.push(Some(repair));
                }
                self.metrics.repair_fanout.add(shards as u64);
                Ok(RouterRepair {
                    full_refresh: self.has_operator,
                    operator_rows: if self.has_operator {
                        (0..n).collect()
                    } else {
                        Vec::new()
                    },
                    shard_repairs,
                    fanout: shards,
                    skipped: 0,
                })
            }
            RepairOutcome::Patched(score_repair) => {
                let changed: Vec<usize> = if self.has_operator {
                    score_repair.changed_rows.clone()
                } else {
                    Vec::new()
                };
                let edited = &score_repair.edited_nodes;
                // Materialise the global row payload once; shards receive
                // gathered sub-slices.
                let payload = if !changed.is_empty() {
                    Some(
                        maintainer
                            .operator_rows(&changed)
                            .map_err(ServeError::SimRank)?,
                    )
                } else {
                    None
                };
                let mut shard_repairs = Vec::with_capacity(shards);
                let mut fanout = 0usize;
                let mut skipped = 0usize;
                for (shard, engine) in self.engines.iter().enumerate() {
                    let range = &self.plan.ranges()[shard];
                    // `changed` is sorted: this shard's slice of it.
                    let lo = changed.partition_point(|&r| r < range.start);
                    let hi = changed.partition_point(|&r| r < range.end);
                    let needs = lo < hi
                        || edited.iter().any(|e| range.contains(e))
                        || !engine.referencing_rows(edited).is_empty()
                        || engine.stale_nodes().iter().any(|s| range.contains(s));
                    if !needs {
                        shard_repairs.push(None);
                        skipped += 1;
                        continue;
                    }
                    let patch = match &payload {
                        Some(payload) if lo < hi => {
                            let positions: Vec<usize> = (lo..hi).collect();
                            OperatorPatch::Rows(payload.gather_rows(&positions)?)
                        }
                        _ => OperatorPatch::None,
                    };
                    let repair = engine
                        .apply_repair(&changed[lo..hi], patch, adjacency.clone(), 0)
                        .map_err(|e| shard_error(shard, e))?;
                    shard_repairs.push(Some(repair));
                    fanout += 1;
                }
                self.metrics.repair_fanout.add(fanout as u64);
                self.metrics.repair_skipped.add(skipped as u64);
                self.metrics
                    .repair_dirty_seeds
                    .add(score_repair.dirty_seeds as u64);
                Ok(RouterRepair {
                    full_refresh: false,
                    operator_rows: changed,
                    shard_repairs,
                    fanout,
                    skipped,
                })
            }
        }
    }

    /// The aggregation operator the fleet currently serves, reassembled
    /// from each shard's owned rows (`None` when the fleet runs the
    /// operator-less `Ẑ = H` variant). Observability hook used by the
    /// sharded differential oracle.
    pub fn operator(&self) -> Option<CsrMatrix> {
        if !self.has_operator {
            return None;
        }
        let n = self.num_nodes;
        let mut indptr = Vec::with_capacity(n + 1);
        indptr.push(0usize);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        for (shard, range) in self.plan.ranges().iter().enumerate() {
            if range.is_empty() {
                continue;
            }
            let shard_operator = self.engines[shard]
                .operator()
                .expect("router built with an operator keeps one on every shard");
            for row in range.clone() {
                let (start, end) = (
                    shard_operator.indptr()[row],
                    shard_operator.indptr()[row + 1],
                );
                indices.extend_from_slice(&shard_operator.indices()[start..end]);
                values.extend_from_slice(&shard_operator.values()[start..end]);
                indptr.push(indices.len());
            }
        }
        Some(
            CsrMatrix::from_raw(n, n, indptr, indices, values)
                .expect("row-masked shard operators reassemble into a valid CSR"),
        )
    }

    /// Nodes currently marked stale on their owning shard, sorted by id —
    /// the union over shards of each shard's in-range stale set, which is
    /// exactly what a single engine's staleness set would hold.
    pub fn stale_nodes(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (shard, range) in self.plan.ranges().iter().enumerate() {
            out.extend(
                self.engines[shard]
                    .stale_nodes()
                    .into_iter()
                    .filter(|node| range.contains(node)),
            );
        }
        out.sort_unstable();
        out
    }

    /// Total aggregated rows cached across the fleet.
    pub fn cached_rows(&self) -> usize {
        self.engines.iter().map(|e| e.cached_rows()).sum()
    }

    /// A point-in-time copy of the router and per-shard counters. Same
    /// tearing semantics as [`InferenceEngine::stats`].
    pub fn stats(&self) -> RouterStats {
        let per_shard: Vec<EngineStats> = self.engines.iter().map(|e| e.stats()).collect();
        let mut engines = EngineStats::default();
        for s in &per_shard {
            engines.nodes_served += s.nodes_served;
            engines.batches_served += s.batches_served;
            engines.cache_hits += s.cache_hits;
            engines.cache_misses += s.cache_misses;
            engines.cache_evictions += s.cache_evictions;
            engines.rows_invalidated += s.rows_invalidated;
            engines.operator_refreshes += s.operator_refreshes;
            engines.operator_repairs += s.operator_repairs;
            engines.rows_repaired += s.rows_repaired;
            engines.embedding_rows_repaired += s.embedding_rows_repaired;
            engines.repair_dirty_seeds += s.repair_dirty_seeds;
            engines.snapshot_reloads += s.snapshot_reloads;
            engines.similar_queries += s.similar_queries;
        }
        RouterStats {
            engines,
            per_shard,
            batches_routed: self.metrics.batches_routed.get(),
            queries_routed: self.metrics.queries_routed.get(),
            shard_batches_dispatched: self.metrics.shard_batches.get(),
            repair_fanout: self.metrics.repair_fanout.get(),
            repair_skipped: self.metrics.repair_skipped.get(),
            repair_dirty_seeds: self.metrics.repair_dirty_seeds.get(),
            edge_update_fanout: self.metrics.edge_update_fanout.get(),
            edge_update_skipped: self.metrics.edge_update_skipped.get(),
            similar_routed: self.metrics.similar_routed.get(),
            similar_subbatches_dispatched: self.metrics.similar_subbatches.get(),
        }
    }
}

/// Wraps a per-shard failure with its shard index.
fn shard_error(shard: usize, source: ServeError) -> ServeError {
    ServeError::Shard {
        shard,
        source: Box::new(source),
    }
}

/// Plans ranges by operator nnz mass (equal-count split when there is no
/// operator: every row then weighs the same `O(C)` blend).
fn plan_for(
    operator: Option<CsrViewAny<'_>>,
    num_nodes: usize,
    shards: usize,
) -> Result<ShardPlan> {
    let weights: Vec<usize> = match operator {
        Some(view) => (0..num_nodes).map(|row| view.row_nnz(row)).collect(),
        None => vec![0; num_nodes],
    };
    ShardPlan::from_weights(&weights, shards)
}

/// The full-shape operator with every row outside `range` empty: shard
/// engines serve their own rows from the same `(n, n)` coordinate space,
/// so node ids, caches and patches need no translation.
fn masked_operator(operator: &CsrViewAny<'_>, range: &Range<usize>) -> Result<CsrMatrix> {
    let (rows, cols) = operator.shape();
    let mut nnz = 0usize;
    for row in range.clone() {
        nnz += operator.row_nnz(row);
    }
    let mut indptr = Vec::with_capacity(rows + 1);
    indptr.push(0usize);
    let mut indices = Vec::with_capacity(nnz);
    let mut values = Vec::with_capacity(nnz);
    for row in 0..rows {
        if range.contains(&row) {
            indices.extend_from_slice(operator.row_cols(row));
            values.extend_from_slice(operator.row_vals(row));
        }
        indptr.push(indices.len());
    }
    Ok(CsrMatrix::from_raw(rows, cols, indptr, indices, values)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_pads_empty_tails_to_the_shard_count() {
        // 3 rows, 7 shards: at most 3 non-empty ranges, 4 empty tails.
        let plan = ShardPlan::from_weights(&[5, 5, 5], 7).unwrap();
        assert_eq!(plan.num_shards(), 7);
        assert_eq!(plan.num_nodes(), 3);
        let covered: usize = plan.ranges().iter().map(|r| r.end - r.start).sum();
        assert_eq!(covered, 3);
        for tail in &plan.ranges()[3..] {
            assert!(tail.is_empty());
        }
    }

    #[test]
    fn plan_rejects_zero_shards() {
        assert!(matches!(
            ShardPlan::from_weights(&[1, 2, 3], 0),
            Err(ServeError::ShardConfig { shards: 0, .. })
        ));
    }

    #[test]
    fn shard_of_skips_empty_ranges() {
        // Single row holding all mass still routes every node somewhere.
        let plan = ShardPlan::from_weights(&[0, 100, 0, 0], 4).unwrap();
        for node in 0..4 {
            let shard = plan.shard_of(node);
            assert!(
                plan.ranges()[shard].contains(&node),
                "node {node} routed to shard {shard} owning {:?}",
                plan.ranges()[shard]
            );
        }
    }

    #[test]
    fn every_node_has_exactly_one_owner() {
        for shards in [1usize, 2, 3, 5, 8, 13] {
            let weights: Vec<usize> = (0..40).map(|i| (i * 7) % 11).collect();
            let plan = ShardPlan::from_weights(&weights, shards).unwrap();
            assert_eq!(plan.num_shards(), shards);
            for node in 0..40 {
                let owner = plan.shard_of(node);
                let owners = plan.ranges().iter().filter(|r| r.contains(&node)).count();
                assert_eq!(owners, 1, "node {node} covered {owners} times");
                assert!(plan.ranges()[owner].contains(&node));
            }
        }
    }

    #[test]
    fn masked_operator_keeps_only_in_range_rows() {
        let full = CsrMatrix::from_raw(
            4,
            4,
            vec![0, 2, 3, 5, 6],
            vec![0, 2, 1, 0, 3, 2],
            vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0],
        )
        .unwrap();
        let masked = masked_operator(&CsrViewAny::Native(full.view()), &(1..3)).unwrap();
        assert_eq!(masked.shape(), (4, 4));
        assert_eq!(masked.row_nnz(0), 0);
        assert_eq!(masked.row_nnz(1), 1);
        assert_eq!(masked.row_nnz(2), 2);
        assert_eq!(masked.row_nnz(3), 0);
        assert_eq!(masked.indices(), &full.indices()[2..5]);
        assert_eq!(masked.values(), &full.values()[2..5]);
    }
}
