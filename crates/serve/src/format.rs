//! Snapshot format v2: fixed-endian, 64-byte-aligned sections behind a
//! header table.
//!
//! ## Layout
//!
//! ```text
//! offset 0   magic            8 bytes  b"SIGMASNP"
//! offset 8   version          u32 LE   = 2
//! offset 12  section_count    u32 LE
//! offset 16  section table    section_count × 32-byte entries
//!            ┌ tag      [u8; 8]  ASCII, space-padded
//!            ├ offset   u64 LE   absolute, multiple of 64
//!            ├ len      u64 LE   payload bytes (not padded)
//!            ├ crc32    u32 LE   IEEE CRC32 of the payload
//!            └ pad      u32      zero
//! ...        section payloads, each starting on a 64-byte boundary
//! ```
//!
//! Array sections (`ADJ_*`, `OP_*`, `FEAT`, `EMB`) are raw little-endian
//! element arrays — `u32`/`u64` row pointers, `u32` column indices, `f32`
//! values — so a little-endian host can serve them in place after mapping
//! the file, with no decode step. Row pointers are `u32` when nnz < 2³²
//! (the fast path) and `u64` otherwise; META records which. `META` and
//! `MODEL` are small length-prefixed blobs in the v1 [`crate::codec`]
//! encoding; `MODEL` stores the [`ModelSnapshot`] with its operator
//! *stripped* (the operator lives in the `OP_*` array sections and is
//! re-attached on decode).

use crate::codec;
use crate::{Result, ServeError};
use sigma::snapshot::{MlpWeights, ModelSnapshot};
use sigma::AggregatorKind;
use std::io::{Read, Write};

/// Bytes before the section table: magic + version + section count.
pub(crate) const PRELUDE_LEN: usize = 16;
/// Size of one section-table entry.
pub(crate) const ENTRY_LEN: usize = 32;
/// Every section payload starts on this boundary.
pub(crate) const SECTION_ALIGN: usize = 64;
/// Hard ceiling on the section count (v2 defines 10 tags; the margin
/// tolerates future additive tags without admitting garbage counts).
pub(crate) const MAX_SECTIONS: usize = 64;

/// Section tags (8 bytes, ASCII, space-padded).
pub(crate) const TAG_META: [u8; 8] = *b"META    ";
/// Adjacency row pointers (`u32` or `u64` per META).
pub(crate) const TAG_ADJ_PTR: [u8; 8] = *b"ADJ_PTR ";
/// Adjacency column indices (`u32`).
pub(crate) const TAG_ADJ_IDX: [u8; 8] = *b"ADJ_IDX ";
/// Adjacency values (`f32`).
pub(crate) const TAG_ADJ_VAL: [u8; 8] = *b"ADJ_VAL ";
/// Operator row pointers.
pub(crate) const TAG_OP_PTR: [u8; 8] = *b"OP_PTR  ";
/// Operator column indices.
pub(crate) const TAG_OP_IDX: [u8; 8] = *b"OP_IDX  ";
/// Operator values.
pub(crate) const TAG_OP_VAL: [u8; 8] = *b"OP_VAL  ";
/// Node features `X`, row-major `f32`.
pub(crate) const TAG_FEAT: [u8; 8] = *b"FEAT    ";
/// Precomputed embeddings `H`, row-major `f32` (optional).
pub(crate) const TAG_EMB: [u8; 8] = *b"EMB     ";
/// Model blob (weights + hyper-parameters, operator stripped).
pub(crate) const TAG_MODEL: [u8; 8] = *b"MODEL   ";

/// Renders a tag for error messages (trailing pad stripped).
pub(crate) fn tag_str(tag: &[u8; 8]) -> String {
    String::from_utf8_lossy(tag).trim_end().to_string()
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// IEEE CRC32 (the zlib/PNG polynomial) of a byte slice.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Rounds `n` up to the next multiple of [`SECTION_ALIGN`].
pub(crate) fn align_up(n: usize) -> usize {
    n.div_ceil(SECTION_ALIGN) * SECTION_ALIGN
}

/// Accumulates `(tag, payload)` pairs and emits the v2 container: prelude,
/// CRC-stamped header table, then 64-byte-aligned payloads.
pub(crate) struct SectionWriter {
    sections: Vec<([u8; 8], Vec<u8>)>,
}

impl SectionWriter {
    pub(crate) fn new() -> Self {
        Self {
            sections: Vec::new(),
        }
    }

    pub(crate) fn push(&mut self, tag: [u8; 8], payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    pub(crate) fn write_to<W: Write>(self, w: &mut W) -> Result<()> {
        let table_end = PRELUDE_LEN + ENTRY_LEN * self.sections.len();
        w.write_all(&crate::SNAPSHOT_MAGIC[..])?;
        codec::write_u32(w, 2)?;
        codec::write_u32(w, self.sections.len() as u32)?;
        // Header table: offsets are assigned in push order, each payload
        // starting on the next 64-byte boundary after the previous one.
        let mut offset = align_up(table_end);
        for (tag, payload) in &self.sections {
            w.write_all(tag)?;
            codec::write_u64(w, offset as u64)?;
            codec::write_u64(w, payload.len() as u64)?;
            codec::write_u32(w, crc32(payload))?;
            codec::write_u32(w, 0)?;
            offset = align_up(offset + payload.len());
        }
        // Payloads, padded out to alignment with zeros.
        let mut pos = table_end;
        for (_, payload) in &self.sections {
            let start = align_up(pos);
            w.write_all(&vec![0u8; start - pos])?;
            w.write_all(payload)?;
            pos = start + payload.len();
        }
        Ok(())
    }
}

/// The decoded META section: graph dimensions, serving scalars, and the
/// shape facts needed to cross-check every array section's byte length
/// before anything is trusted.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct MetaInfo {
    pub tag: String,
    pub effective_alpha: f64,
    pub num_nodes: u64,
    pub feature_dim: u64,
    pub num_classes: u64,
    pub adj_nnz: u64,
    pub adj_ptr_width: u32,
    pub has_operator: bool,
    pub op_nnz: u64,
    pub op_ptr_width: u32,
    pub has_embeddings: bool,
}

pub(crate) fn encode_meta(meta: &MetaInfo) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    codec::write_string(&mut buf, &meta.tag)?;
    codec::write_f64(&mut buf, meta.effective_alpha)?;
    codec::write_u64(&mut buf, meta.num_nodes)?;
    codec::write_u64(&mut buf, meta.feature_dim)?;
    codec::write_u64(&mut buf, meta.num_classes)?;
    codec::write_u64(&mut buf, meta.adj_nnz)?;
    codec::write_u32(&mut buf, meta.adj_ptr_width)?;
    codec::write_u32(&mut buf, meta.has_operator as u32)?;
    codec::write_u64(&mut buf, meta.op_nnz)?;
    codec::write_u32(&mut buf, meta.op_ptr_width)?;
    codec::write_u32(&mut buf, meta.has_embeddings as u32)?;
    Ok(buf)
}

pub(crate) fn decode_meta(mut bytes: &[u8]) -> Result<MetaInfo> {
    let r = &mut bytes;
    let meta = MetaInfo {
        tag: codec::read_string(r)?,
        effective_alpha: codec::read_f64(r)?,
        num_nodes: codec::read_u64(r)?,
        feature_dim: codec::read_u64(r)?,
        num_classes: codec::read_u64(r)?,
        adj_nnz: codec::read_u64(r)?,
        adj_ptr_width: codec::read_u32(r)?,
        has_operator: codec::read_u32(r)? != 0,
        op_nnz: codec::read_u64(r)?,
        op_ptr_width: codec::read_u32(r)?,
        has_embeddings: codec::read_u32(r)? != 0,
    };
    Ok(meta)
}

/// Picks the on-disk row-pointer width for a matrix: `u32` when every
/// prefix fits (nnz < 2³²), `u64` otherwise.
pub(crate) fn ptr_width_for(nnz: usize) -> u32 {
    if nnz < (1usize << 32) {
        4
    } else {
        8
    }
}

/// Serialises row pointers at the chosen width.
pub(crate) fn encode_indptr(indptr: &[usize], width: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(indptr.len() * width as usize);
    for &p in indptr {
        if width == 4 {
            buf.extend_from_slice(&(p as u32).to_le_bytes());
        } else {
            buf.extend_from_slice(&(p as u64).to_le_bytes());
        }
    }
    buf
}

/// Serialises `u32` column indices little-endian.
pub(crate) fn encode_u32s(vals: &[u32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(vals.len() * 4);
    for &v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

/// Serialises `f32` values little-endian.
pub(crate) fn encode_f32s(vals: &[f32]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(vals.len() * 4);
    for &v in vals {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    buf
}

pub(crate) fn encode_aggregator(kind: AggregatorKind) -> u32 {
    match kind {
        AggregatorKind::SimRank => 0,
        AggregatorKind::SimRankTimesA => 1,
        AggregatorKind::Ppr => 2,
        AggregatorKind::None => 3,
    }
}

pub(crate) fn decode_aggregator(tag: u32) -> Result<AggregatorKind> {
    Ok(match tag {
        0 => AggregatorKind::SimRank,
        1 => AggregatorKind::SimRankTimesA,
        2 => AggregatorKind::Ppr,
        3 => AggregatorKind::None,
        t => {
            return Err(ServeError::Corrupt {
                reason: format!("unknown aggregator tag {t}"),
            })
        }
    })
}

pub(crate) fn write_mlp<W: Write>(w: &mut W, stack: &MlpWeights) -> Result<()> {
    codec::write_u64(w, stack.len() as u64)?;
    for (weight, bias) in stack {
        codec::write_dense(w, weight)?;
        codec::write_dense(w, bias)?;
    }
    Ok(())
}

pub(crate) fn read_mlp<R: Read>(r: &mut R) -> Result<MlpWeights> {
    let layers = codec::read_u64(r)?;
    if layers > 1024 {
        return Err(ServeError::Corrupt {
            reason: format!("implausible MLP depth {layers}"),
        });
    }
    let mut stack = Vec::with_capacity(layers as usize);
    for _ in 0..layers {
        let weight = codec::read_dense(r)?;
        let bias = codec::read_dense(r)?;
        stack.push((weight, bias));
    }
    Ok(stack)
}

/// Encodes a [`ModelSnapshot`] as the `MODEL` section blob: the v1 model
/// wire layout with the operator slot forced empty (the operator rides in
/// the `OP_*` array sections instead, so it can be mapped, not decoded).
pub(crate) fn encode_model_blob(model: &ModelSnapshot) -> Result<Vec<u8>> {
    let mut w = Vec::new();
    codec::write_f64(&mut w, model.delta)?;
    codec::write_f64(&mut w, model.alpha)?;
    match model.alpha_raw {
        Some(raw) => {
            codec::write_u32(&mut w, 1)?;
            codec::write_f32(&mut w, raw)?;
        }
        None => codec::write_u32(&mut w, 0)?,
    }
    codec::write_f32(&mut w, model.dropout)?;
    codec::write_u32(&mut w, encode_aggregator(model.aggregator))?;
    // Operator slot: always "absent" in the blob.
    codec::write_u32(&mut w, 0)?;
    write_mlp(&mut w, &model.mlp_a)?;
    write_mlp(&mut w, &model.mlp_x)?;
    write_mlp(&mut w, &model.mlp_h)?;
    Ok(w)
}

/// Decodes a `MODEL` blob. The returned snapshot has `operator: None`; the
/// caller re-attaches it from the `OP_*` sections.
pub(crate) fn decode_model_blob(mut bytes: &[u8]) -> Result<ModelSnapshot> {
    let r = &mut bytes;
    let delta = codec::read_f64(r)?;
    let alpha = codec::read_f64(r)?;
    let alpha_raw = match codec::read_u32(r)? {
        0 => None,
        1 => Some(codec::read_f32(r)?),
        t => {
            return Err(ServeError::Corrupt {
                reason: format!("invalid alpha_raw tag {t}"),
            })
        }
    };
    let dropout = codec::read_f32(r)?;
    let aggregator = decode_aggregator(codec::read_u32(r)?)?;
    if codec::read_u32(r)? != 0 {
        return Err(ServeError::Corrupt {
            reason: "MODEL blob carries an inline operator; v2 stores it in OP_* sections".into(),
        });
    }
    let mlp_a = read_mlp(r)?;
    let mlp_x = read_mlp(r)?;
    let mlp_h = read_mlp(r)?;
    Ok(ModelSnapshot {
        delta,
        alpha,
        alpha_raw,
        dropout,
        aggregator,
        operator: None,
        mlp_a,
        mlp_x,
        mlp_h,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC32 test vectors.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn section_writer_aligns_and_stamps() {
        let mut sw = SectionWriter::new();
        sw.push(TAG_META, vec![1, 2, 3]);
        sw.push(TAG_FEAT, vec![9; 70]);
        let mut buf = Vec::new();
        sw.write_to(&mut buf).unwrap();
        assert_eq!(&buf[..8], &crate::SNAPSHOT_MAGIC[..]);
        assert_eq!(u32::from_le_bytes(buf[8..12].try_into().unwrap()), 2);
        assert_eq!(u32::from_le_bytes(buf[12..16].try_into().unwrap()), 2);
        // First entry.
        assert_eq!(&buf[16..24], &TAG_META);
        let off0 = u64::from_le_bytes(buf[24..32].try_into().unwrap()) as usize;
        let len0 = u64::from_le_bytes(buf[32..40].try_into().unwrap()) as usize;
        let crc0 = u32::from_le_bytes(buf[40..44].try_into().unwrap());
        assert_eq!(off0 % SECTION_ALIGN, 0);
        assert_eq!(len0, 3);
        assert_eq!(&buf[off0..off0 + 3], &[1, 2, 3]);
        assert_eq!(crc0, crc32(&[1, 2, 3]));
        // Second entry starts on the next aligned boundary.
        let off1 = u64::from_le_bytes(buf[56..64].try_into().unwrap()) as usize;
        assert_eq!(off1 % SECTION_ALIGN, 0);
        assert!(off1 >= off0 + 3);
        assert_eq!(&buf[off1..off1 + 70], &[9u8; 70]);
    }

    #[test]
    fn meta_round_trips() {
        let meta = MetaInfo {
            tag: "demo".into(),
            effective_alpha: 0.375,
            num_nodes: 11,
            feature_dim: 5,
            num_classes: 3,
            adj_nnz: 40,
            adj_ptr_width: 4,
            has_operator: true,
            op_nnz: 31,
            op_ptr_width: 4,
            has_embeddings: false,
        };
        let bytes = encode_meta(&meta).unwrap();
        assert_eq!(decode_meta(&bytes).unwrap(), meta);
    }

    #[test]
    fn ptr_width_switches_at_u32_boundary() {
        assert_eq!(ptr_width_for(0), 4);
        assert_eq!(ptr_width_for((1 << 32) - 1), 4);
        assert_eq!(ptr_width_for(1 << 32), 8);
    }
}
