use std::fmt;

/// Typed failures of the zero-copy (format v2) snapshot reader.
///
/// Every variant names the exact structural rule a mapped file violated, so
/// corrupt-snapshot tests can assert the failure mode and operators can see
/// *what* is wrong from the error alone. Produced by
/// [`crate::MappedSnapshot`] at open (`O(#sections)` header checks) and
/// verify (`O(bytes)` checksums and CSR invariants) time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The file ends before a named structure is complete.
    Truncated {
        /// The structure that was cut short (prelude, table, section…).
        what: String,
    },
    /// The first eight bytes are not the `SIGMASNP` magic.
    BadMagic,
    /// The version field names a format this reader does not map.
    UnsupportedVersion {
        /// Version found at byte offset 8.
        found: u32,
    },
    /// The host cannot serve this file zero-copy (e.g. a big-endian CPU
    /// reading the little-endian section arrays).
    UnsupportedPlatform {
        /// Why the platform cannot map the file.
        reason: &'static str,
    },
    /// A section's file offset breaks the 64-byte alignment rule.
    Misaligned {
        /// Tag of the offending section.
        tag: String,
        /// The unaligned offset recorded in the header table.
        offset: u64,
    },
    /// Two sections' byte ranges overlap (or a section overlaps the header).
    Overlap {
        /// Tag of the earlier section.
        a: String,
        /// Tag of the overlapping section.
        b: String,
    },
    /// The same tag appears twice in the header table.
    DuplicateSection {
        /// The repeated tag.
        tag: String,
    },
    /// A section required by the META description is absent.
    MissingSection {
        /// The missing tag.
        tag: &'static str,
    },
    /// A section's byte length disagrees with the dimensions in META.
    SectionSize {
        /// Tag of the offending section.
        tag: String,
        /// Length implied by META.
        expected: u64,
        /// Length recorded in the header table.
        actual: u64,
    },
    /// A section's bytes do not match its header-table CRC32.
    ChecksumMismatch {
        /// Tag of the corrupted section.
        tag: String,
    },
    /// A mapped CSR section violates a structural invariant (non-monotone
    /// `indptr`, out-of-range or unsorted column indices).
    InvalidCsr {
        /// Which matrix is malformed (`adjacency` or `operator`).
        section: &'static str,
        /// The invariant that failed.
        detail: String,
    },
    /// The META section itself cannot be decoded or is self-inconsistent.
    Meta {
        /// What is wrong with META.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Truncated { what } => {
                write!(f, "file ends before the {what} is complete")
            }
            SnapshotError::BadMagic => write!(f, "missing SIGMASNP magic; not a snapshot file"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "format version {found} cannot be memory-mapped (v2 only)"
                )
            }
            SnapshotError::UnsupportedPlatform { reason } => {
                write!(f, "platform cannot map this snapshot: {reason}")
            }
            SnapshotError::Misaligned { tag, offset } => {
                write!(
                    f,
                    "section {tag} at offset {offset} breaks 64-byte alignment"
                )
            }
            SnapshotError::Overlap { a, b } => write!(f, "sections {a} and {b} overlap"),
            SnapshotError::DuplicateSection { tag } => {
                write!(f, "section tag {tag} appears twice in the header table")
            }
            SnapshotError::MissingSection { tag } => {
                write!(f, "required section {tag} is missing")
            }
            SnapshotError::SectionSize {
                tag,
                expected,
                actual,
            } => write!(
                f,
                "section {tag} is {actual} bytes but META implies {expected}"
            ),
            SnapshotError::ChecksumMismatch { tag } => {
                write!(f, "section {tag} fails its CRC32 checksum")
            }
            SnapshotError::InvalidCsr { section, detail } => {
                write!(f, "{section} CSR section is structurally invalid: {detail}")
            }
            SnapshotError::Meta { reason } => write!(f, "invalid META section: {reason}"),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Errors produced by snapshot persistence and the inference engine.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O operation on a snapshot file failed.
    Io(std::io::Error),
    /// A snapshot file is malformed (bad magic, truncation, inconsistent
    /// section sizes).
    Corrupt {
        /// Human-readable description of the corruption.
        reason: String,
    },
    /// The snapshot was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// A query referenced a node outside the snapshot's graph.
    InvalidQuery {
        /// The offending node id.
        node: usize,
        /// Number of nodes the model serves.
        num_nodes: usize,
    },
    /// A similarity query reached an engine serving the operator-less
    /// `Ẑ = H` variant — there are no operator rows to rank.
    NoOperator,
    /// A replacement operator does not match the served graph.
    OperatorMismatch {
        /// Shape of the offered operator.
        got: (usize, usize),
        /// Expected square dimension (the node count).
        expected: usize,
    },
    /// The engine configuration requests concurrency the shared
    /// [`sigma_parallel::ThreadPool`] cannot provide (a zero-capacity
    /// misconfiguration), e.g. more `workers` than pool threads or a zero
    /// `max_chunk`.
    WorkerConfig {
        /// The configured worker bound (`0` = auto).
        workers: usize,
        /// The shared pool's thread count at validation time.
        pool_threads: usize,
        /// What exactly is wrong and how to fix it.
        reason: &'static str,
    },
    /// A shard-router configuration is unusable (zero shards, or shard
    /// snapshots that disagree on graph dimensions).
    ShardConfig {
        /// The configured shard count.
        shards: usize,
        /// What exactly is wrong and how to fix it.
        reason: String,
    },
    /// One shard of a [`crate::ShardRouter`] failed to construct or repair;
    /// names the offending shard so a bad snapshot in a fleet is
    /// attributable from the error alone.
    Shard {
        /// Index of the failing shard (its position in the router's plan).
        shard: usize,
        /// The underlying failure.
        source: Box<ServeError>,
    },
    /// A zero-copy (format v2) snapshot failed a structural check.
    Snapshot(SnapshotError),
    /// An underlying model-layer error.
    Model(sigma::SigmaError),
    /// An underlying matrix error.
    Matrix(sigma_matrix::MatrixError),
    /// An underlying neural-network error.
    Nn(sigma_nn::NnError),
    /// An underlying similarity-maintenance error.
    SimRank(sigma_simrank::SimRankError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            ServeError::Corrupt { reason } => write!(f, "corrupt snapshot: {reason}"),
            ServeError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than the supported version {supported}"
            ),
            ServeError::InvalidQuery { node, num_nodes } => {
                write!(f, "query for node {node} outside the served graph of {num_nodes} nodes")
            }
            ServeError::NoOperator => write!(
                f,
                "similarity queries need an aggregation operator; this engine serves the \
                 operator-less Ẑ = H variant"
            ),
            ServeError::OperatorMismatch { got, expected } => write!(
                f,
                "replacement operator shape {got:?} does not match the served graph of {expected} nodes"
            ),
            ServeError::WorkerConfig {
                workers,
                pool_threads,
                reason,
            } => write!(
                f,
                "invalid worker configuration ({workers} workers against a shared pool of \
                 {pool_threads} threads): {reason}"
            ),
            ServeError::ShardConfig { shards, reason } => {
                write!(f, "invalid shard configuration ({shards} shards): {reason}")
            }
            ServeError::Shard { shard, source } => write!(f, "shard {shard}: {source}"),
            ServeError::Snapshot(e) => write!(f, "snapshot format error: {e}"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Matrix(e) => write!(f, "matrix error: {e}"),
            ServeError::Nn(e) => write!(f, "nn error: {e}"),
            ServeError::SimRank(e) => write!(f, "similarity error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Shard { source, .. } => Some(source.as_ref()),
            ServeError::Snapshot(e) => Some(e),
            ServeError::Model(e) => Some(e),
            ServeError::Matrix(e) => Some(e),
            ServeError::Nn(e) => Some(e),
            ServeError::SimRank(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<SnapshotError> for ServeError {
    fn from(e: SnapshotError) -> Self {
        ServeError::Snapshot(e)
    }
}

impl From<sigma::SigmaError> for ServeError {
    fn from(e: sigma::SigmaError) -> Self {
        ServeError::Model(e)
    }
}

impl From<sigma_matrix::MatrixError> for ServeError {
    fn from(e: sigma_matrix::MatrixError) -> Self {
        ServeError::Matrix(e)
    }
}

impl From<sigma_nn::NnError> for ServeError {
    fn from(e: sigma_nn::NnError) -> Self {
        ServeError::Nn(e)
    }
}

impl From<sigma_simrank::SimRankError> for ServeError {
    fn from(e: sigma_simrank::SimRankError) -> Self {
        ServeError::SimRank(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = ServeError::Corrupt {
            reason: "truncated header".into(),
        };
        assert!(e.to_string().contains("truncated header"));
        let e = ServeError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = ServeError::InvalidQuery {
            node: 42,
            num_nodes: 10,
        };
        assert!(e.to_string().contains("42"));
        let e = ServeError::OperatorMismatch {
            got: (3, 4),
            expected: 7,
        };
        assert!(e.to_string().contains('7'));
        let e = ServeError::WorkerConfig {
            workers: 9,
            pool_threads: 4,
            reason: "workers exceed the shared pool size",
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains("exceed"));
        let e: ServeError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
