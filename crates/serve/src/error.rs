use std::fmt;

/// Errors produced by snapshot persistence and the inference engine.
#[derive(Debug)]
pub enum ServeError {
    /// An I/O operation on a snapshot file failed.
    Io(std::io::Error),
    /// A snapshot file is malformed (bad magic, truncation, inconsistent
    /// section sizes).
    Corrupt {
        /// Human-readable description of the corruption.
        reason: String,
    },
    /// The snapshot was written by an unsupported format version.
    UnsupportedVersion {
        /// Version found in the file header.
        found: u32,
        /// Highest version this build can read.
        supported: u32,
    },
    /// A query referenced a node outside the snapshot's graph.
    InvalidQuery {
        /// The offending node id.
        node: usize,
        /// Number of nodes the model serves.
        num_nodes: usize,
    },
    /// A replacement operator does not match the served graph.
    OperatorMismatch {
        /// Shape of the offered operator.
        got: (usize, usize),
        /// Expected square dimension (the node count).
        expected: usize,
    },
    /// The engine configuration requests concurrency the shared
    /// [`sigma_parallel::ThreadPool`] cannot provide (a zero-capacity
    /// misconfiguration), e.g. more `workers` than pool threads or a zero
    /// `max_chunk`.
    WorkerConfig {
        /// The configured worker bound (`0` = auto).
        workers: usize,
        /// The shared pool's thread count at validation time.
        pool_threads: usize,
        /// What exactly is wrong and how to fix it.
        reason: &'static str,
    },
    /// An underlying model-layer error.
    Model(sigma::SigmaError),
    /// An underlying matrix error.
    Matrix(sigma_matrix::MatrixError),
    /// An underlying neural-network error.
    Nn(sigma_nn::NnError),
    /// An underlying similarity-maintenance error.
    SimRank(sigma_simrank::SimRankError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            ServeError::Corrupt { reason } => write!(f, "corrupt snapshot: {reason}"),
            ServeError::UnsupportedVersion { found, supported } => write!(
                f,
                "snapshot format version {found} is newer than the supported version {supported}"
            ),
            ServeError::InvalidQuery { node, num_nodes } => {
                write!(f, "query for node {node} outside the served graph of {num_nodes} nodes")
            }
            ServeError::OperatorMismatch { got, expected } => write!(
                f,
                "replacement operator shape {got:?} does not match the served graph of {expected} nodes"
            ),
            ServeError::WorkerConfig {
                workers,
                pool_threads,
                reason,
            } => write!(
                f,
                "invalid worker configuration ({workers} workers against a shared pool of \
                 {pool_threads} threads): {reason}"
            ),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::Matrix(e) => write!(f, "matrix error: {e}"),
            ServeError::Nn(e) => write!(f, "nn error: {e}"),
            ServeError::SimRank(e) => write!(f, "similarity error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            ServeError::Model(e) => Some(e),
            ServeError::Matrix(e) => Some(e),
            ServeError::Nn(e) => Some(e),
            ServeError::SimRank(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

impl From<sigma::SigmaError> for ServeError {
    fn from(e: sigma::SigmaError) -> Self {
        ServeError::Model(e)
    }
}

impl From<sigma_matrix::MatrixError> for ServeError {
    fn from(e: sigma_matrix::MatrixError) -> Self {
        ServeError::Matrix(e)
    }
}

impl From<sigma_nn::NnError> for ServeError {
    fn from(e: sigma_nn::NnError) -> Self {
        ServeError::Nn(e)
    }
}

impl From<sigma_simrank::SimRankError> for ServeError {
    fn from(e: sigma_simrank::SimRankError) -> Self {
        ServeError::SimRank(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_context() {
        let e = ServeError::Corrupt {
            reason: "truncated header".into(),
        };
        assert!(e.to_string().contains("truncated header"));
        let e = ServeError::UnsupportedVersion {
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains('9'));
        let e = ServeError::InvalidQuery {
            node: 42,
            num_nodes: 10,
        };
        assert!(e.to_string().contains("42"));
        let e = ServeError::OperatorMismatch {
            got: (3, 4),
            expected: 7,
        };
        assert!(e.to_string().contains('7'));
        let e = ServeError::WorkerConfig {
            workers: 9,
            pool_threads: 4,
            reason: "workers exceed the shared pool size",
        };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains("exceed"));
        let e: ServeError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
    }
}
