//! Edge-case tests for `EngineStats` accounting and cache epoching: repair
//! invalidation must count exactly the affected set, repairs must keep
//! unaffected cache entries while operator installs drop everything, and a
//! concurrent in-flight query must never cache a row across an operator
//! swap (regression test for the operator-epoch guard).

use sigma_serve::{EngineConfig, InferenceEngine, ServeSnapshot};
use sigma_simrank::EdgeUpdate;
use sigma_testutil::{random_graph, serving_fixture};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A `(u, v)` pair that is definitely not an edge of `graph` yet.
fn absent_edge(graph: &sigma_graph::Graph) -> (usize, usize) {
    for u in 0..graph.num_nodes() {
        for v in (u + 2)..graph.num_nodes() {
            if !graph.has_edge(u, v) {
                return (u, v);
            }
        }
    }
    panic!("graph is complete");
}

fn engine_with_full_cache(snapshot: &ServeSnapshot) -> InferenceEngine {
    let n = snapshot.num_nodes();
    let engine = InferenceEngine::new(
        snapshot,
        EngineConfig {
            cache_capacity: n,
            workers: 0,
            max_chunk: 256,
        },
    )
    .expect("engine");
    let all: Vec<usize> = (0..n).collect();
    let _ = engine.predict_batch(&all).expect("warm-up");
    assert_eq!(engine.cached_rows(), n, "cache must start fully warm");
    engine
}

#[test]
fn repair_invalidation_counts_exactly_the_affected_set() {
    let graph = random_graph(22, 14, 31);
    let mut fixture = serving_fixture(&graph, 5, 31);
    let engine = engine_with_full_cache(&fixture.snapshot);
    let n = graph.num_nodes();

    let (a, b) = absent_edge(&graph);
    fixture
        .maintainer
        .apply(EdgeUpdate::Insert(a, b))
        .expect("edit");
    let before = engine.stats();
    let repair = engine.repair_from(&mut fixture.maintainer).expect("repair");
    let after = engine.stats();

    assert!(!repair.full_refresh);
    assert!(!repair.invalidated_rows.is_empty());
    // With a fully warm cache, every invalidation candidate evicts a row:
    // the counter must match the reported set exactly — no more, no less.
    assert_eq!(
        after.rows_invalidated - before.rows_invalidated,
        repair.invalidated_rows.len() as u64
    );
    assert_eq!(
        after.rows_repaired - before.rows_repaired,
        repair.operator_rows.len() as u64
    );
    assert_eq!(
        after.embedding_rows_repaired - before.embedding_rows_repaired,
        repair.embedding_rows.len() as u64
    );
    assert_eq!(after.operator_repairs, before.operator_repairs + 1);
    assert_eq!(after.operator_refreshes, before.operator_refreshes);
    // The evicted rows are gone from the cache; everything else survived.
    assert_eq!(engine.cached_rows(), n - repair.invalidated_rows.len());
    // Both endpoints of the edit had their adjacency (hence H) rows redone.
    assert_eq!(repair.embedding_rows, vec![a, b]);
    // Repair leaves the engine fully consistent: nothing is stale.
    assert!(engine.stale_nodes().is_empty());
}

#[test]
fn install_operator_drops_the_whole_cache_while_repair_does_not() {
    // Large and sparse enough that one edit's repair region is a small
    // fraction of the graph.
    let graph = random_graph(60, 8, 77);
    let mut fixture = serving_fixture(&graph, 4, 77);
    let engine = engine_with_full_cache(&fixture.snapshot);
    let n = graph.num_nodes();

    fixture
        .maintainer
        .apply(EdgeUpdate::Delete(0, 1))
        .expect("edit");
    let repair = engine.repair_from(&mut fixture.maintainer).expect("repair");
    assert!(repair.invalidated_rows.len() < n, "repair must be targeted");
    assert!(engine.cached_rows() > 0, "repair must keep unaffected rows");

    // The blunt path: a whole-operator install clears everything.
    let operator = engine.operator().expect("fixture engine carries S");
    engine.install_operator(operator).expect("install");
    assert_eq!(engine.cached_rows(), 0);
    assert_eq!(engine.stats().operator_refreshes, 1);
}

#[test]
fn repair_on_an_operatorless_engine_patches_embeddings_only() {
    let graph = random_graph(16, 8, 13);
    let mut fixture = serving_fixture(&graph, 4, 13);
    // Strip the operator: the engine serves Ẑ = H ("SIGMA w/o S").
    let mut model = fixture.snapshot.model.clone();
    model.operator = None;
    model.aggregator = sigma::AggregatorKind::None;
    let snapshot = ServeSnapshot::new(
        "operator-less",
        model,
        fixture.snapshot.features.clone(),
        fixture.snapshot.adjacency.clone(),
    )
    .expect("snapshot");
    let engine = engine_with_full_cache(&snapshot);
    assert!(engine.operator().is_none());

    let (a, b) = absent_edge(&graph);
    fixture
        .maintainer
        .apply(EdgeUpdate::Insert(a, b))
        .expect("edit");
    let repair = engine.repair_from(&mut fixture.maintainer).expect("repair");
    assert!(repair.operator_rows.is_empty());
    assert_eq!(repair.embedding_rows, vec![a, b]);
    // Without an operator a cached row is H itself: exactly the re-encoded
    // nodes are invalidated.
    assert_eq!(repair.invalidated_rows, vec![a, b]);

    // The patched H rows must equal a from-scratch engine's on the edited
    // graph, bitwise.
    let reference_model = snapshot.model.clone();
    let reference = InferenceEngine::new(
        &ServeSnapshot::new(
            "operator-less-ref",
            reference_model,
            snapshot.features.clone(),
            fixture.maintainer.graph().to_adjacency(),
        )
        .expect("reference snapshot"),
        EngineConfig::default(),
    )
    .expect("reference engine");
    for node in 0..graph.num_nodes() {
        let inc = engine.predict(node).expect("incremental");
        let fresh = reference.predict(node).expect("reference");
        let inc_bits: Vec<u32> = inc.logits.iter().map(|v| v.to_bits()).collect();
        let fresh_bits: Vec<u32> = fresh.logits.iter().map(|v| v.to_bits()).collect();
        assert_eq!(inc_bits, fresh_bits, "H patch diverged at node {node}");
    }
}

#[test]
fn in_flight_queries_never_cache_rows_across_an_operator_swap() {
    // Regression stress for the operator-epoch guard: a batch that computed
    // its rows against operator A must not insert them into the cache after
    // a swap to operator B cleared it. A stale cached row would surface as
    // a wrong answer on the next (cache-hitting) query.
    let graph = random_graph(24, 16, 99);
    let fixture = serving_fixture(&graph, 5, 99);
    let n = graph.num_nodes();
    let engine = Arc::new(
        InferenceEngine::new(
            &fixture.snapshot,
            EngineConfig {
                cache_capacity: n,
                workers: 0,
                max_chunk: 8, // small chunks: many lock acquisitions per batch
            },
        )
        .expect("engine"),
    );
    let operator_a = engine.operator().expect("initial operator");
    let mut operator_b = operator_a.clone();
    operator_b.scale(0.5); // same sparsity, different values

    // Reference engines for both operators, never mutated.
    let reference = |operator: sigma_matrix::CsrMatrix| {
        let mut model = fixture.snapshot.model.clone();
        model.operator = Some(operator);
        let snapshot = ServeSnapshot::new(
            "swap-reference",
            model,
            fixture.snapshot.features.clone(),
            fixture.snapshot.adjacency.clone(),
        )
        .expect("reference snapshot");
        InferenceEngine::new(&snapshot, EngineConfig::default()).expect("reference engine")
    };
    let reference_a = reference(operator_a.clone());
    let reference_b = reference(operator_b.clone());

    let stop = Arc::new(AtomicBool::new(false));
    let querier = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let all: Vec<usize> = (0..n).collect();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                let _ = engine.predict_batch(&all).expect("concurrent query");
            }
        })
    };

    for round in 0..40 {
        let (operator, reference) = if round % 2 == 0 {
            (operator_b.clone(), &reference_b)
        } else {
            (operator_a.clone(), &reference_a)
        };
        engine.install_operator(operator).expect("swap");
        // Whatever the in-flight batch does, every answer served from here
        // on (cached or not) must match the freshly installed operator.
        let served = engine
            .predict_batch(&(0..n).collect::<Vec<_>>())
            .expect("verification query");
        let expected = reference
            .predict_batch(&(0..n).collect::<Vec<_>>())
            .expect("reference query");
        for (got, want) in served.iter().zip(expected.iter()) {
            let got_bits: Vec<u32> = got.logits.iter().map(|v| v.to_bits()).collect();
            let want_bits: Vec<u32> = want.logits.iter().map(|v| v.to_bits()).collect();
            assert_eq!(
                got_bits, want_bits,
                "round {round}: node {} served from a row cached across the swap",
                got.node
            );
        }
    }
    stop.store(true, Ordering::Relaxed);
    querier.join().expect("querier thread");
}
