//! Property: the two snapshot formats are interchangeable. For any serving
//! fixture, `write_to` (v2) → mmap-backed load → serve is **bitwise
//! identical** to `write_to_v1` → streamed decode → serve — same decoded
//! snapshot, same logits, same labels — across graph shapes, operator
//! presence, and precomputed-embedding presence.

use std::sync::Arc;

use proptest::prelude::*;
use sigma_serve::{EngineConfig, InferenceEngine, MappedSnapshot, ServeSnapshot};
use sigma_testutil::{random_graph, serving_fixture, ServingFixture};

fn engine_logit_bits(engine: &InferenceEngine, n: usize) -> Vec<Vec<u32>> {
    let all: Vec<usize> = (0..n).collect();
    engine
        .predict_batch(&all)
        .unwrap()
        .iter()
        .map(|p| p.logits.iter().map(|v| v.to_bits()).collect())
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn v2_and_v1_round_trips_serve_identically(
        num_nodes in 8usize..40,
        extra_edges in 0usize..24,
        seed in 0u64..1000,
        top_k in 3usize..8,
        strip_operator in 0u32..2,
        with_embeddings in 0u32..2,
    ) {
        let (strip_operator, with_embeddings) = (strip_operator == 1, with_embeddings == 1);
        let graph = random_graph(num_nodes, extra_edges, seed);
        let ServingFixture { mut snapshot, .. } = serving_fixture(&graph, top_k, seed);
        if strip_operator {
            // An operator-less snapshot is only valid for the
            // aggregator-free model variant (Z = H blended with itself).
            snapshot.model.operator = None;
            snapshot.model.aggregator = sigma::AggregatorKind::None;
        }
        if with_embeddings {
            snapshot.precompute_embeddings().unwrap();
        }

        // Both writers, both readers.
        let mut v1 = Vec::new();
        snapshot.write_to_v1(&mut v1).unwrap();
        let mut v2 = Vec::new();
        snapshot.write_to(&mut v2).unwrap();
        let from_v1 = ServeSnapshot::read_from(&mut v1.as_slice()).unwrap();
        let from_v2 = ServeSnapshot::read_from(&mut v2.as_slice()).unwrap();

        // The v1 wire has no embeddings section; aside from that optional
        // extra, the decoded snapshots must be exactly equal (PartialEq on
        // a ModelSnapshot compares every weight and the operator's raw CSR
        // arrays).
        prop_assert_eq!(&from_v2.tag, &from_v1.tag);
        prop_assert_eq!(&from_v2.model, &from_v1.model);
        prop_assert_eq!(&from_v2.features, &from_v1.features);
        prop_assert_eq!(&from_v2.adjacency, &from_v1.adjacency);
        prop_assert_eq!(from_v1.embeddings.is_some(), false);
        prop_assert_eq!(from_v2.embeddings.is_some(), with_embeddings);
        prop_assert_eq!(&from_v2, &snapshot);

        // Serving parity: v1-decoded owned engine vs v2 zero-copy engine.
        let mapped = Arc::new(MappedSnapshot::from_bytes(&v2).unwrap());
        prop_assert_eq!(mapped.num_nodes(), num_nodes);
        prop_assert_eq!(mapped.has_operator(), !strip_operator);
        prop_assert_eq!(mapped.has_embeddings(), with_embeddings);
        let config = EngineConfig::default();
        let owned = InferenceEngine::new(&from_v1, config).unwrap();
        let zero_copy = InferenceEngine::from_mapped(mapped, config).unwrap();
        prop_assert_eq!(owned.alpha().to_bits(), zero_copy.alpha().to_bits());
        prop_assert_eq!(
            engine_logit_bits(&owned, num_nodes),
            engine_logit_bits(&zero_copy, num_nodes)
        );
    }
}
