//! Corrupt-snapshot suite: every class of v2 container damage is rejected
//! with a typed [`SnapshotError`] — never a panic, never garbage data.
//!
//! Each test takes a valid v2 image produced by [`ServeSnapshot::write_to`],
//! damages one structural property at a known byte offset (the layout is
//! fixed: 16-byte prelude, then 32-byte table entries of
//! `tag[8] offset[8] len[8] crc[4] pad[4]`), and asserts the precise error
//! variant. Damage the header catches fails at [`MappedSnapshot::from_bytes`]
//! (the O(#sections) pass); payload damage fails at
//! [`MappedSnapshot::verify`] (the O(bytes) pass).

use sigma_serve::{MappedSnapshot, ServeError, ServeSnapshot, SnapshotError};
use sigma_testutil::{random_graph, serving_fixture};

const PRELUDE_LEN: usize = 16;
const ENTRY_LEN: usize = 32;

/// A small valid v2 image (with an operator; no embeddings).
fn v2_image() -> Vec<u8> {
    let fixture = serving_fixture(&random_graph(30, 14, 71), 6, 71);
    let mut buf = Vec::new();
    fixture.snapshot.write_to(&mut buf).unwrap();
    buf
}

/// Locates the table entry for `tag`, returning its byte position.
fn entry_pos(image: &[u8], tag: &[u8; 8]) -> usize {
    let count = u32::from_le_bytes(image[12..16].try_into().unwrap()) as usize;
    (0..count)
        .map(|i| PRELUDE_LEN + i * ENTRY_LEN)
        .find(|&p| &image[p..p + 8] == tag)
        .unwrap_or_else(|| panic!("no section {:?}", String::from_utf8_lossy(tag)))
}

fn entry_offset(image: &[u8], tag: &[u8; 8]) -> usize {
    let p = entry_pos(image, tag);
    u64::from_le_bytes(image[p + 8..p + 16].try_into().unwrap()) as usize
}

fn entry_len(image: &[u8], tag: &[u8; 8]) -> usize {
    let p = entry_pos(image, tag);
    u64::from_le_bytes(image[p + 16..p + 24].try_into().unwrap()) as usize
}

/// Independent IEEE CRC32 implementation, so the re-stamping tests do not
/// trust the code under test to checksum its own corruption.
fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

fn open_err(image: &[u8]) -> SnapshotError {
    match MappedSnapshot::from_bytes(image) {
        Err(ServeError::Snapshot(e)) => e,
        Ok(_) => panic!("corrupt image was accepted"),
        Err(other) => panic!("expected a typed SnapshotError, got {other:?}"),
    }
}

fn verify_err(image: &[u8]) -> SnapshotError {
    let snap = MappedSnapshot::from_bytes(image).expect("header damage should not be needed here");
    match snap.verify() {
        Err(ServeError::Snapshot(e)) => e,
        Ok(()) => panic!("corrupt payload passed verification"),
        Err(other) => panic!("expected a typed SnapshotError, got {other:?}"),
    }
}

#[test]
fn bad_magic_is_rejected() {
    let mut image = v2_image();
    image[0] ^= 0xFF;
    assert_eq!(open_err(&image), SnapshotError::BadMagic);
}

#[test]
fn future_version_is_rejected_with_the_found_version() {
    let mut image = v2_image();
    image[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert_eq!(
        open_err(&image),
        SnapshotError::UnsupportedVersion { found: 99 }
    );
    // Through the legacy reader the same file reports the supported range.
    assert!(matches!(
        ServeSnapshot::read_from(&mut image.as_slice()),
        Err(ServeError::UnsupportedVersion {
            found: 99,
            supported: 2
        })
    ));
}

#[test]
fn truncations_at_every_boundary_are_typed() {
    let image = v2_image();
    // Mid-prelude.
    assert!(matches!(
        open_err(&image[..PRELUDE_LEN - 4]),
        SnapshotError::Truncated { .. }
    ));
    // Mid-table.
    assert!(matches!(
        open_err(&image[..PRELUDE_LEN + ENTRY_LEN + 7]),
        SnapshotError::Truncated { .. }
    ));
    // Mid-payload: cut inside the last section.
    assert!(matches!(
        open_err(&image[..image.len() - 5]),
        SnapshotError::Truncated { .. }
    ));
    // Every possible cut is rejected without a panic (the header passes may
    // return different variants depending on where the cut lands, but none
    // may succeed: the final MODEL section always loses bytes).
    for cut in (0..image.len()).step_by(61) {
        assert!(
            MappedSnapshot::from_bytes(&image[..cut]).is_err(),
            "truncation to {cut} bytes was accepted"
        );
    }
}

#[test]
fn misaligned_section_offset_is_rejected() {
    let mut image = v2_image();
    let p = entry_pos(&image, b"ADJ_IDX ");
    let offset = entry_offset(&image, b"ADJ_IDX ") as u64 + 4;
    image[p + 8..p + 16].copy_from_slice(&offset.to_le_bytes());
    assert!(matches!(
        open_err(&image),
        SnapshotError::Misaligned { tag, offset: o } if tag == "ADJ_IDX" && o == offset
    ));
}

#[test]
fn section_offset_inside_the_header_table_is_rejected() {
    let mut image = v2_image();
    let p = entry_pos(&image, b"ADJ_VAL ");
    image[p + 8..p + 16].copy_from_slice(&0u64.to_le_bytes());
    assert!(matches!(
        open_err(&image),
        SnapshotError::Overlap { a, .. } if a == "header table"
    ));
}

#[test]
fn overlapping_sections_are_rejected() {
    let mut image = v2_image();
    // Point ADJ_VAL at ADJ_IDX's payload (aligned, in bounds, non-empty
    // intersection) — a reader that trusted it would alias two arrays.
    let p = entry_pos(&image, b"ADJ_VAL ");
    let idx_offset = entry_offset(&image, b"ADJ_IDX ") as u64;
    image[p + 8..p + 16].copy_from_slice(&idx_offset.to_le_bytes());
    assert!(matches!(open_err(&image), SnapshotError::Overlap { .. }));
}

#[test]
fn duplicate_tags_are_rejected() {
    let mut image = v2_image();
    let p = entry_pos(&image, b"ADJ_VAL ");
    image[p..p + 8].copy_from_slice(b"ADJ_IDX ");
    assert!(matches!(
        open_err(&image),
        SnapshotError::DuplicateSection { tag } if tag == "ADJ_IDX"
    ));
}

#[test]
fn missing_required_section_is_rejected() {
    let mut image = v2_image();
    // Rename MODEL to an unknown tag: unknown sections are tolerated
    // (forward compatibility), but the required one is now absent.
    let p = entry_pos(&image, b"MODEL   ");
    image[p..p + 8].copy_from_slice(b"XXXXXXXX");
    assert_eq!(
        open_err(&image),
        SnapshotError::MissingSection { tag: "MODEL" }
    );
}

#[test]
fn section_size_disagreeing_with_meta_is_rejected() {
    let mut image = v2_image();
    let p = entry_pos(&image, b"ADJ_IDX ");
    let len = entry_len(&image, b"ADJ_IDX ") as u64 - 4;
    image[p + 16..p + 24].copy_from_slice(&len.to_le_bytes());
    assert!(matches!(
        open_err(&image),
        SnapshotError::SectionSize { tag, .. } if tag == "ADJ_IDX"
    ));
}

#[test]
fn implausible_section_count_is_rejected() {
    let mut image = v2_image();
    image[12..16].copy_from_slice(&65u32.to_le_bytes());
    assert!(matches!(open_err(&image), SnapshotError::Meta { .. }));
}

#[test]
fn flipped_payload_byte_fails_checksum_verification() {
    let mut image = v2_image();
    let offset = entry_offset(&image, b"FEAT    ");
    image[offset + 3] ^= 0x40;
    // The header pass does not read payloads, so open still succeeds …
    let snap = MappedSnapshot::from_bytes(&image).unwrap();
    // … and the content pass pins the damage to the section.
    assert!(matches!(
        snap.verify(),
        Err(ServeError::Snapshot(SnapshotError::ChecksumMismatch { tag })) if tag == "FEAT"
    ));
}

#[test]
fn indptr_overflowing_nnz_is_rejected_at_open() {
    let mut image = v2_image();
    // The adjacency indptr endpoint must equal nnz; this is one of the O(1)
    // checks open performs so the view accessors can never slice out of
    // bounds. Widths below 8 bytes per entry still start little-endian at
    // the same position, so patching the first 4 bytes of the final entry
    // works for both u32 and u64 pointers.
    let offset = entry_offset(&image, b"ADJ_PTR ");
    let len = entry_len(&image, b"ADJ_PTR ");
    let last = offset + len - 4;
    image[last..last + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(matches!(
        open_err(&image),
        SnapshotError::InvalidCsr {
            section: "adjacency",
            ..
        }
    ));
}

#[test]
fn non_monotonic_indptr_is_rejected_at_verify() {
    let mut image = v2_image();
    // Break monotonicity in the middle of the adjacency indptr, then
    // re-stamp the CRC with an independent implementation so the damage
    // reaches the structural check rather than tripping the checksum.
    let offset = entry_offset(&image, b"ADJ_PTR ");
    let len = entry_len(&image, b"ADJ_PTR ");
    let mid = offset + (len / 8) * 4;
    image[mid..mid + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let crc = crc32(&image[offset..offset + len]);
    let p = entry_pos(&image, b"ADJ_PTR ");
    image[p + 24..p + 28].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        verify_err(&image),
        SnapshotError::InvalidCsr {
            section: "adjacency",
            ..
        }
    ));
}

#[test]
fn out_of_range_column_index_is_rejected_at_verify() {
    let mut image = v2_image();
    let offset = entry_offset(&image, b"ADJ_IDX ");
    let len = entry_len(&image, b"ADJ_IDX ");
    image[offset..offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let crc = crc32(&image[offset..offset + len]);
    let p = entry_pos(&image, b"ADJ_IDX ");
    image[p + 24..p + 28].copy_from_slice(&crc.to_le_bytes());
    assert!(matches!(
        verify_err(&image),
        SnapshotError::InvalidCsr {
            section: "adjacency",
            ..
        }
    ));
}

#[test]
fn legacy_reader_reports_v2_damage_through_legacy_variants() {
    // Callers of ServeSnapshot::read_from predate SnapshotError; v2 damage
    // must come back as the Corrupt/UnsupportedVersion shapes they match on.
    let mut image = v2_image();
    let p = entry_pos(&image, b"MODEL   ");
    image[p..p + 8].copy_from_slice(b"XXXXXXXX");
    assert!(matches!(
        ServeSnapshot::read_from(&mut image.as_slice()),
        Err(ServeError::Corrupt { .. })
    ));
}

#[test]
fn snapshot_error_displays_are_informative() {
    // The Display strings are part of the operator-facing contract: each
    // names the damaged structure so `sigma snapshot` failures are
    // actionable from the message alone.
    let e = SnapshotError::SectionSize {
        tag: "ADJ_IDX".into(),
        expected: 120,
        actual: 116,
    };
    let msg = e.to_string();
    assert!(msg.contains("ADJ_IDX") && msg.contains("120") && msg.contains("116"));
    let e = SnapshotError::Misaligned {
        tag: "FEAT".into(),
        offset: 100,
    };
    assert!(e.to_string().contains("FEAT"));
}
