//! Hot-reload drain race: concurrent queriers across `hot_reload_mapped`
//! must observe only *pre*- or *post*-reload logits, never a torn mix.
//!
//! The engine's contract (PR 7) is that a reload swaps the serving state
//! under one write lock while each query/batch holds one read lock, with
//! the operator-epoch guard keeping stale rows out of the cache. This test
//! races real threads against a real mapped reload and asserts the
//! observable half of that contract, at 1 and at 4 querier threads.

use sigma_serve::{EngineConfig, InferenceEngine, MappedSnapshot};
use sigma_testutil::{random_graph, serving_fixture};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Bit patterns of every node's logits under one snapshot.
fn logit_table(engine: &InferenceEngine) -> Vec<Vec<u32>> {
    (0..engine.num_nodes())
        .map(|node| {
            engine
                .predict(node)
                .expect("reference predict")
                .logits
                .iter()
                .map(|l| l.to_bits())
                .collect()
        })
        .collect()
}

fn run_reload_race(queriers: usize, seed: u64) {
    let graph = random_graph(36, 54, seed);
    let fixture_a = serving_fixture(&graph, 4, seed);
    let fixture_b = serving_fixture(&graph, 4, seed + 1);

    let path = std::env::temp_dir().join(format!(
        "sigma-reload-race-{}-{queriers}-{seed}.snapshot",
        std::process::id()
    ));
    fixture_b.snapshot.save(&path).expect("save snapshot B");

    let engine = Arc::new(
        InferenceEngine::new(&fixture_a.snapshot, EngineConfig::default()).expect("engine"),
    );
    let table_a = Arc::new(logit_table(
        &InferenceEngine::new(&fixture_a.snapshot, EngineConfig::default()).expect("ref A"),
    ));
    let table_b = Arc::new(logit_table(
        &InferenceEngine::new(&fixture_b.snapshot, EngineConfig::default()).expect("ref B"),
    ));
    // The race only proves something if the two snapshots actually differ.
    assert_ne!(table_a[0], table_b[0], "fixtures must differ");

    let stop = Arc::new(AtomicBool::new(false));
    let num_nodes = graph.num_nodes();
    let handles: Vec<_> = (0..queriers)
        .map(|t| {
            let engine = engine.clone();
            let table_a = table_a.clone();
            let table_b = table_b.clone();
            let stop = stop.clone();
            std::thread::spawn(move || {
                let mut observed_pre = 0usize;
                let mut observed_post = 0usize;
                let mut node = t;
                while !stop.load(Ordering::Relaxed) {
                    // Alternate single predicts and small batches (both
                    // paths hold one state read lock end-to-end for sizes
                    // within max_chunk).
                    let batch = [node, (node + 1) % num_nodes, (node + 2) % num_nodes];
                    let predictions = engine.predict_batch(&batch).expect("racing batch");
                    let mut batch_sides = Vec::with_capacity(batch.len());
                    for p in &predictions {
                        let bits: Vec<u32> = p.logits.iter().map(|l| l.to_bits()).collect();
                        if bits == table_a[p.node] {
                            observed_pre += 1;
                            batch_sides.push("pre");
                        } else if bits == table_b[p.node] {
                            observed_post += 1;
                            batch_sides.push("post");
                        } else {
                            panic!(
                                "node {} served logits matching neither snapshot (torn read)",
                                p.node
                            );
                        }
                    }
                    // A batch within max_chunk is served under one state
                    // read lock: it must be wholly pre or wholly post.
                    assert!(
                        batch_sides.windows(2).all(|w| w[0] == w[1]),
                        "one batch mixed snapshots: {batch_sides:?}"
                    );
                    node = (node + 5) % num_nodes;
                }
                (observed_pre, observed_post)
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(60));
    let mapped = MappedSnapshot::open(&path).expect("open mapped B");
    engine
        .hot_reload_mapped(Arc::new(mapped))
        .expect("hot reload under load");
    std::thread::sleep(Duration::from_millis(60));
    stop.store(true, Ordering::Relaxed);

    let mut total_pre = 0usize;
    let mut total_post = 0usize;
    for handle in handles {
        let (pre, post) = handle.join().expect("querier thread");
        total_pre += pre;
        total_post += post;
    }
    assert!(
        total_post > 0,
        "queriers kept running after the swap, so post-reload serves must appear"
    );
    // total_pre is usually > 0 too, but a slow machine could start the
    // queriers late; the hard guarantee is only-pre-or-post, asserted
    // inside the loop.
    let _ = total_pre;

    // Post-drain, everything is snapshot B.
    for node in 0..num_nodes {
        let bits: Vec<u32> = engine
            .predict(node)
            .expect("settled predict")
            .logits
            .iter()
            .map(|l| l.to_bits())
            .collect();
        assert_eq!(
            bits, table_b[node],
            "settled serving must be wholly post-reload"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn reload_race_single_querier() {
    run_reload_race(1, 71);
}

#[test]
fn reload_race_four_queriers() {
    run_reload_race(4, 72);
}
