//! The zero-copy contract: an engine serving straight out of a mapped v2
//! snapshot is **observationally identical** to one built from the decoded
//! snapshot — bitwise-equal logits, equal repair reports, and equal cache
//! counters — through queries, edge updates, incremental repairs, and hot
//! reloads, at both serial and parallel kernel widths.
//!
//! The two engines are driven in lockstep from identically-seeded fixtures;
//! any divergence is a real divergence of the storage paths, since every
//! other input is shared.

use std::sync::Arc;

use sigma_serve::{
    EngineConfig, EngineStats, InferenceEngine, MappedSnapshot, Prediction, ServeSnapshot,
};
use sigma_testutil::{random_graph, random_trace, serving_fixture, ServingFixture, TraceShape};

/// Writes the fixture snapshot (embeddings precomputed, so the mapped
/// engine cold-starts without running the encoder) and maps it back.
fn write_and_map(snapshot: &ServeSnapshot, name: &str) -> Arc<MappedSnapshot> {
    let path = std::env::temp_dir().join(name);
    snapshot.save(&path).unwrap();
    let mapped = Arc::new(MappedSnapshot::open(&path).unwrap());
    // The mapping holds the pages; the directory entry can go.
    let _ = std::fs::remove_file(&path);
    mapped
}

fn logits_bits(served: &[Prediction]) -> Vec<Vec<u32>> {
    served
        .iter()
        .map(|p| p.logits.iter().map(|v| v.to_bits()).collect())
        .collect()
}

/// The counters both paths must agree on. `snapshot_reloads` is excluded
/// only because the scenarios reload the engines a different number of
/// times on purpose; every serving-path counter must match exactly.
fn serving_counters(stats: &EngineStats) -> [u64; 8] {
    [
        stats.nodes_served,
        stats.batches_served,
        stats.cache_hits,
        stats.cache_misses,
        stats.cache_evictions,
        stats.rows_invalidated,
        stats.rows_repaired,
        stats.embedding_rows_repaired,
    ]
}

/// Drives an owned-storage and a mapped-storage engine through the same
/// query + edit + repair schedule and asserts equality after every step.
fn run_differential(threads: usize, seed: u64) {
    sigma_parallel::set_global_threads(threads);
    let graph = random_graph(36, 20, seed);
    let n = graph.num_nodes();
    let top_k = 6;

    // Two identically-seeded fixtures: one per engine, so each has its own
    // maintainer to repair from.
    let ServingFixture {
        mut snapshot,
        maintainer: mut owned_maintainer,
        ..
    } = serving_fixture(&graph, top_k, seed);
    let ServingFixture {
        maintainer: mut mapped_maintainer,
        ..
    } = serving_fixture(&graph, top_k, seed);
    snapshot.precompute_embeddings().unwrap();
    let mapped = write_and_map(
        &snapshot,
        &format!("sigma-mapped-vs-owned-{threads}-{seed}.snapshot"),
    );
    assert!(mapped.has_embeddings());

    let config = EngineConfig {
        cache_capacity: n,
        workers: 0,
        max_chunk: 16,
    };
    let owned = InferenceEngine::new(&snapshot, config).unwrap();
    let zero_copy = InferenceEngine::from_mapped(mapped.clone(), config).unwrap();
    let all: Vec<usize> = (0..n).collect();

    let assert_step = |step: &str| {
        let a = owned.predict_batch(&all).unwrap();
        let b = zero_copy.predict_batch(&all).unwrap();
        assert_eq!(logits_bits(&a), logits_bits(&b), "{step}: logits diverge");
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.label, y.label, "{step}: labels diverge");
            assert_eq!(x.cached, y.cached, "{step}: cache behaviour diverges");
            assert_eq!(x.stale, y.stale, "{step}: staleness diverges");
        }
        assert_eq!(
            serving_counters(&owned.stats()),
            serving_counters(&zero_copy.stats()),
            "{step}: serving counters diverge"
        );
    };

    assert_eq!(owned.alpha().to_bits(), zero_copy.alpha().to_bits());
    assert_step("cold start");
    assert_step("warm cache");

    // Edge updates: targeted invalidation must evict the same rows.
    for batch in random_trace(&graph, TraceShape::default(), seed ^ 0xED17) {
        let a = owned.apply_edge_updates(&batch).unwrap();
        let b = zero_copy.apply_edge_updates(&batch).unwrap();
        assert_eq!(a, b, "edge updates invalidate different row counts");
        assert_eq!(owned.stale_nodes(), zero_copy.stale_nodes());
    }
    assert_step("after edge updates");

    // Incremental repair: the mapped engine promotes its stores
    // copy-on-write; the repaired results must still match the owned path
    // (and, transitively via the sigma-testutil oracle, a full refresh).
    for batch in random_trace(&graph, TraceShape::default(), seed ^ 0x9e37) {
        owned_maintainer.apply_batch(&batch).unwrap();
        mapped_maintainer.apply_batch(&batch).unwrap();
        let a = owned.repair_from(&mut owned_maintainer).unwrap();
        let b = zero_copy.repair_from(&mut mapped_maintainer).unwrap();
        assert_eq!(a, b, "repair reports diverge");
        assert_step("after incremental repair");
    }
    let op_a = owned.operator().unwrap();
    let op_b = zero_copy.operator().unwrap();
    assert_eq!(op_a.indptr(), op_b.indptr());
    assert_eq!(op_a.indices(), op_b.indices());
    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(op_a.values()), bits(op_b.values()));

    sigma_parallel::set_global_threads(0);
}

#[test]
fn mapped_engine_is_bitwise_identical_to_owned_at_one_thread() {
    run_differential(1, 41);
}

#[test]
fn mapped_engine_is_bitwise_identical_to_owned_at_four_threads() {
    run_differential(4, 43);
}

#[test]
fn hot_reload_swaps_to_a_mapped_snapshot_between_queries() {
    let graph = random_graph(30, 16, 47);
    let n = graph.num_nodes();
    let ServingFixture { mut snapshot, .. } = serving_fixture(&graph, 6, 47);
    snapshot.precompute_embeddings().unwrap();
    let mapped = write_and_map(&snapshot, "sigma-hot-reload-mapped.snapshot");

    let engine = InferenceEngine::new(&snapshot, EngineConfig::default()).unwrap();
    let all: Vec<usize> = (0..n).collect();
    let before = engine.predict_batch(&all).unwrap();
    assert_eq!(engine.stats().snapshot_reloads, 0);

    // Reload onto the mapping: same snapshot content, new storage. The
    // first post-reload query recomputes every row (the cache was cleared
    // under the epoch guard) and must reproduce the pre-reload answers
    // bitwise.
    engine.hot_reload_mapped(mapped).unwrap();
    assert_eq!(engine.stats().snapshot_reloads, 1);
    assert_eq!(engine.cached_rows(), 0, "reload must clear the cache");
    let after = engine.predict_batch(&all).unwrap();
    assert_eq!(logits_bits(&before), logits_bits(&after));
    assert!(after.iter().all(|p| !p.cached && !p.stale));

    // And back to an owned snapshot.
    engine.hot_reload(&snapshot).unwrap();
    assert_eq!(engine.stats().snapshot_reloads, 2);
    let again = engine.predict_batch(&all).unwrap();
    assert_eq!(logits_bits(&before), logits_bits(&again));
}

#[test]
fn hot_reload_rejects_mismatched_dimensions() {
    let ServingFixture { snapshot, .. } = serving_fixture(&random_graph(24, 10, 53), 6, 53);
    let ServingFixture {
        snapshot: other, ..
    } = serving_fixture(&random_graph(25, 10, 53), 6, 53);
    let engine = InferenceEngine::new(&snapshot, EngineConfig::default()).unwrap();
    assert!(engine.hot_reload(&other).is_err());
    // The failed reload must leave the engine serving.
    assert!(engine.predict(0).is_ok());
    assert_eq!(engine.stats().snapshot_reloads, 0);
}
