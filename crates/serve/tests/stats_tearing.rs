//! Pins the documented `EngineStats` snapshot semantics (observability PR
//! satellite): snapshots are lock-free relaxed loads, so each counter is
//! individually monotone and exact, cross-counter identities hold once the
//! engine quiesces, and nothing more is promised while queries are in
//! flight. Also covers the counters this PR added (`cache_evictions`,
//! `repair_dirty_seeds`) and, with the `obs` feature on, the engine's
//! registration in the process-wide metrics registry.

use sigma_serve::{EngineConfig, EngineStats, InferenceEngine, ServeSnapshot};
use sigma_simrank::EdgeUpdate;
use sigma_testutil::{random_graph, serving_fixture};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn engine(snapshot: &ServeSnapshot, cache_capacity: usize) -> InferenceEngine {
    InferenceEngine::new(
        snapshot,
        EngineConfig {
            cache_capacity,
            workers: 0,
            max_chunk: 8,
        },
    )
    .expect("engine")
}

fn assert_monotone(prev: &EngineStats, next: &EngineStats) {
    // Every field is a monotone counter: a later snapshot never observes a
    // smaller value, even when it tears against concurrent writers.
    let pairs = [
        ("nodes_served", prev.nodes_served, next.nodes_served),
        ("batches_served", prev.batches_served, next.batches_served),
        ("cache_hits", prev.cache_hits, next.cache_hits),
        ("cache_misses", prev.cache_misses, next.cache_misses),
        (
            "cache_evictions",
            prev.cache_evictions,
            next.cache_evictions,
        ),
        (
            "rows_invalidated",
            prev.rows_invalidated,
            next.rows_invalidated,
        ),
        (
            "operator_refreshes",
            prev.operator_refreshes,
            next.operator_refreshes,
        ),
        (
            "operator_repairs",
            prev.operator_repairs,
            next.operator_repairs,
        ),
        ("rows_repaired", prev.rows_repaired, next.rows_repaired),
        (
            "embedding_rows_repaired",
            prev.embedding_rows_repaired,
            next.embedding_rows_repaired,
        ),
        (
            "repair_dirty_seeds",
            prev.repair_dirty_seeds,
            next.repair_dirty_seeds,
        ),
    ];
    for (name, a, b) in pairs {
        assert!(a <= b, "{name} went backwards: {a} -> {b}");
    }
}

#[test]
fn snapshots_are_monotone_under_concurrent_load_and_exact_at_quiescence() {
    let graph = random_graph(24, 10, 7);
    let fixture = serving_fixture(&graph, 4, 7);
    let n = graph.num_nodes();
    let engine = Arc::new(engine(&fixture.snapshot, n));

    let stop = Arc::new(AtomicBool::new(false));
    let queriers: Vec<_> = (0..3)
        .map(|t| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let nodes: Vec<usize> = (0..n).map(|i| (i + t) % n).collect();
                let mut iters = 0u64;
                let mut nodes_queried = 0u64;
                loop {
                    let _ = engine.predict_batch(&nodes).expect("query");
                    nodes_queried += nodes.len() as u64;
                    let _ = engine.predict(t % n).expect("single query");
                    nodes_queried += 1;
                    iters += 1;
                    // Run at least a few rounds even if the reader finishes
                    // first, so quiescent identities have real traffic behind
                    // them.
                    if iters >= 8 && stop.load(Ordering::Relaxed) {
                        break;
                    }
                }
                nodes_queried
            })
        })
        .collect();

    // Reader: successive torn snapshots must still be per-field monotone.
    let mut prev = engine.stats();
    for _ in 0..200 {
        let next = engine.stats();
        assert_monotone(&prev, &next);
        prev = next;
    }

    stop.store(true, Ordering::Relaxed);
    let mut nodes_queried = 0u64;
    for handle in queriers {
        nodes_queried += handle.join().expect("querier");
    }

    // Quiesced: the documented cross-field identities hold exactly.
    let settled = engine.stats();
    assert_eq!(settled.nodes_served, nodes_queried);
    assert_eq!(
        settled.cache_hits + settled.cache_misses,
        settled.nodes_served,
        "every served node is exactly one hit or one miss"
    );
    assert!(settled.batches_served > 0);
}

#[test]
fn capacity_pressure_is_counted_as_evictions_not_invalidations() {
    let graph = random_graph(30, 8, 21);
    let fixture = serving_fixture(&graph, 4, 21);
    let n = graph.num_nodes();
    // Cache far smaller than the working set: sweeping all nodes twice must
    // displace live entries by LRU pressure alone.
    let engine = engine(&fixture.snapshot, 4);
    let all: Vec<usize> = (0..n).collect();
    let _ = engine.predict_batch(&all).expect("first sweep");
    let _ = engine.predict_batch(&all).expect("second sweep");
    let stats = engine.stats();
    assert!(
        stats.cache_evictions > 0,
        "an undersized cache must report LRU displacement"
    );
    assert_eq!(
        stats.rows_invalidated, 0,
        "no edits happened: correctness invalidations must stay at zero"
    );
    assert!(engine.cached_rows() <= 4);
}

#[test]
fn repair_accounts_dirty_seeds() {
    let graph = random_graph(22, 14, 31);
    let mut fixture = serving_fixture(&graph, 5, 31);
    let n = graph.num_nodes();
    let engine = engine(&fixture.snapshot, n);
    fixture
        .maintainer
        .apply(EdgeUpdate::Insert(0, n / 2))
        .expect("edit");
    let before = engine.stats();
    let repair = engine.repair_from(&mut fixture.maintainer).expect("repair");
    let after = engine.stats();
    assert!(!repair.full_refresh);
    assert_eq!(after.operator_repairs, before.operator_repairs + 1);
    assert!(
        after.repair_dirty_seeds > before.repair_dirty_seeds,
        "an edge insert must dirty at least the endpoint seeds"
    );
}

#[cfg(feature = "obs")]
#[test]
fn engine_counters_appear_in_the_global_registry() {
    let graph = random_graph(16, 8, 5);
    let fixture = serving_fixture(&graph, 4, 5);
    let n = graph.num_nodes();
    let engine = engine(&fixture.snapshot, n);
    let before = sigma_obs::snapshot().counter("sigma_serve_nodes_served_total");
    let all: Vec<usize> = (0..n).collect();
    let _ = engine.predict_batch(&all).expect("query");
    let after = sigma_obs::snapshot().counter("sigma_serve_nodes_served_total");
    assert!(
        after >= before + n as u64,
        "engine serving must surface in the process-wide registry ({before} -> {after})"
    );
    // The latency histograms registered and recorded too.
    let snap = sigma_obs::snapshot();
    match snap
        .get("sigma_serve_predict_batch_ns")
        .expect("batch latency histogram registered")
    {
        sigma_obs::MetricValue::Histogram(h) => assert!(h.count > 0),
        other => panic!("expected a histogram, got {other:?}"),
    }
}
