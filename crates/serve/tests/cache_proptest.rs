//! Model-based property tests for [`LruCache`] (shard-router PR satellite).
//!
//! The cache uses a lazy min-heap of `(stamp, node)` candidates, so its
//! eviction order is an *emergent* property of stale-candidate skipping —
//! not structurally obvious from the code. These tests pin the two
//! externally observable contracts against a naive reference model
//! (a recency-ordered `Vec`, front = least recently used):
//!
//! * **eviction order**: the entry displaced under capacity pressure is
//!   always the one whose last touch (`get` hit or `insert`) is oldest;
//! * **`insert -> usize` counts**: the return value is exactly the number
//!   of live entries displaced — 0 on a refresh, 0 while under capacity,
//!   0 always at capacity 0 — matching the engine's accounting of
//!   capacity-pressure evictions as distinct from correctness
//!   invalidations.

use proptest::prelude::*;
use sigma_serve::LruCache;
use std::collections::HashMap;

/// Naive reference model: `order` holds the cached node ids from least to
/// most recently used; `values` holds their rows.
struct ModelLru {
    capacity: usize,
    order: Vec<usize>,
    values: HashMap<usize, Vec<f32>>,
}

impl ModelLru {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            order: Vec::new(),
            values: HashMap::new(),
        }
    }

    fn touch(&mut self, node: usize) {
        if let Some(pos) = self.order.iter().position(|&n| n == node) {
            let n = self.order.remove(pos);
            self.order.push(n);
        }
    }

    fn get(&mut self, node: usize) -> Option<Vec<f32>> {
        if self.values.contains_key(&node) {
            self.touch(node);
            self.values.get(&node).cloned()
        } else {
            None
        }
    }

    fn insert(&mut self, node: usize, row: Vec<f32>) -> usize {
        if self.capacity == 0 {
            return 0;
        }
        self.touch(node);
        if !self.values.contains_key(&node) {
            self.order.push(node);
        }
        self.values.insert(node, row);
        let mut evicted = 0;
        while self.order.len() > self.capacity {
            let victim = self.order.remove(0);
            self.values.remove(&victim);
            evicted += 1;
        }
        evicted
    }

    fn invalidate(&mut self, node: usize) -> bool {
        if let Some(pos) = self.order.iter().position(|&n| n == node) {
            self.order.remove(pos);
            self.values.remove(&node);
            true
        } else {
            false
        }
    }

    fn cached_nodes_sorted(&self) -> Vec<usize> {
        let mut nodes: Vec<usize> = self.values.keys().copied().collect();
        nodes.sort_unstable();
        nodes
    }
}

fn sorted(mut nodes: Vec<usize>) -> Vec<usize> {
    nodes.sort_unstable();
    nodes
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Arbitrary interleavings of get / insert / invalidate over a small
    /// key space (so collisions, refreshes, and capacity pressure are all
    /// frequent) stay in lockstep with the model: every `get` hit/miss and
    /// row payload, every `insert` eviction count, every `invalidate`
    /// presence bit, and the live node set after each step.
    #[test]
    fn cache_matches_the_reference_model(
        capacity in 0usize..9,
        ops in prop::collection::vec((0u32..3, 0usize..12), 1..200),
    ) {
        let mut cache = LruCache::new(capacity);
        let mut model = ModelLru::new(capacity);
        for (step, &(kind, node)) in ops.iter().enumerate() {
            match kind {
                0 => {
                    let got = cache.get(node).map(<[f32]>::to_vec);
                    let want = model.get(node);
                    prop_assert!(got == want, "step {}: get({}) diverged", step, node);
                }
                1 => {
                    // A step-unique row so a stale payload is detectable.
                    let row = vec![step as f32, node as f32];
                    let evicted = cache.insert(node, row.clone());
                    let want = model.insert(node, row);
                    prop_assert!(
                        evicted == want,
                        "step {}: insert({}) eviction count diverged", step, node
                    );
                }
                _ => {
                    let got = cache.invalidate(node);
                    let want = model.invalidate(node);
                    prop_assert!(
                        got == want,
                        "step {}: invalidate({}) diverged", step, node
                    );
                }
            }
            prop_assert_eq!(cache.len(), model.values.len());
            prop_assert_eq!(cache.is_empty(), model.values.is_empty());
            prop_assert!(
                sorted(cache.cached_nodes()) == model.cached_nodes_sorted(),
                "step {}: cached node sets diverged", step
            );
            prop_assert!(cache.len() <= capacity);
        }
    }

    /// Directed eviction-order check: fill the cache, establish a recency
    /// order by touching a permutation of the residents via `get`, then
    /// push fresh nodes one at a time. Each push must displace exactly one
    /// entry — the least recently *touched* resident, in permutation
    /// order — proving `get` refreshes recency exactly like `insert`.
    #[test]
    fn eviction_follows_touch_order(
        capacity in 1usize..9,
        perm_seed in 0u64..1000,
    ) {
        let mut cache = LruCache::new(capacity);
        for node in 0..capacity {
            prop_assert_eq!(cache.insert(node, vec![node as f32]), 0);
        }
        // A deterministic permutation of 0..capacity from the seed
        // (Fisher-Yates with a tiny LCG), touched via `get`.
        let mut order: Vec<usize> = (0..capacity).collect();
        let mut state = perm_seed.wrapping_mul(6364136223846793005).wrapping_add(1);
        for i in (1..order.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            order.swap(i, (state >> 33) as usize % (i + 1));
        }
        for &node in &order {
            prop_assert!(cache.get(node).is_some());
        }
        // Fresh nodes now evict residents in exactly the touch order.
        for (i, &expected_victim) in order.iter().enumerate() {
            let before = sorted(cache.cached_nodes());
            prop_assert_eq!(cache.insert(1000 + i, vec![0.0]), 1);
            let after = sorted(cache.cached_nodes());
            let gone: Vec<usize> =
                before.iter().copied().filter(|n| !after.contains(n)).collect();
            prop_assert!(
                gone == vec![expected_victim],
                "insert {} should evict the least recently touched resident", i
            );
        }
    }

    /// `insert` counts only *live* displacements: a burst of inserts over
    /// a key space no larger than the capacity can never evict, however
    /// many refreshes it performs — and at capacity 0 nothing is ever
    /// stored or counted.
    #[test]
    fn refreshes_and_zero_capacity_never_count_as_evictions(
        capacity in 0usize..9,
        nodes in prop::collection::vec(0usize..8, 1..100),
    ) {
        let mut cache = LruCache::new(capacity);
        let distinct = {
            let mut d = nodes.clone();
            d.sort_unstable();
            d.dedup();
            d.len()
        };
        let mut total_evicted = 0usize;
        for (step, &node) in nodes.iter().enumerate() {
            let prev_len = cache.len();
            let is_new = !cache.cached_nodes().contains(&node);
            let evicted = cache.insert(node, vec![step as f32]);
            total_evicted += evicted;
            if capacity > 0 {
                // Per-step conservation: one entry enters (unless it was a
                // refresh), `evicted` entries leave, nothing else moves.
                prop_assert!(
                    prev_len + usize::from(is_new) == cache.len() + evicted,
                    "step {}: {} entries + {} new != {} remaining + {} evicted",
                    step, prev_len, usize::from(is_new), cache.len(), evicted
                );
            }
        }
        if capacity == 0 {
            prop_assert_eq!(total_evicted, 0);
            prop_assert!(cache.is_empty());
        } else if distinct <= capacity {
            prop_assert!(
                total_evicted == 0,
                "a working set within capacity must never evict"
            );
            prop_assert_eq!(cache.len(), distinct);
        } else {
            prop_assert_eq!(cache.len(), capacity);
            prop_assert!(total_evicted >= distinct - capacity);
        }
    }
}
