//! End-to-end serving tests: train → snapshot → restore → serve, asserting
//! that served logits match the in-memory full-graph forward pass.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sigma::{ContextBuilder, Model, ModelHyperParams, SigmaModel, TrainConfig, Trainer};
use sigma_datasets::{generate, GeneratorConfig};
use sigma_matrix::DenseMatrix;
use sigma_serve::{EngineConfig, InferenceEngine, ServeError, ServeSnapshot};
use sigma_simrank::{DynamicSimRank, EdgeUpdate, SimRankConfig};

const TOP_K: usize = 8;

struct Fixture {
    snapshot: ServeSnapshot,
    /// Full-graph eval-mode logits of the trained model.
    full_logits: DenseMatrix,
    labels: Vec<usize>,
}

fn trained_fixture(seed: u64) -> Fixture {
    let cfg = GeneratorConfig::new(90, 6.0, 3, 10)
        .with_homophily(0.2)
        .with_feature_snr(1.2, 0.9)
        .with_name("serve-round-trip");
    let data = generate(&cfg, seed).unwrap();
    let split = data.default_split(seed).unwrap();
    let labels = data.labels.clone();
    let features = data.features.clone();
    let adjacency = data.graph.to_adjacency();
    let ctx = ContextBuilder::new(data)
        .with_simrank_topk(TOP_K)
        .build()
        .unwrap();

    let hyper = ModelHyperParams::small();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut model = SigmaModel::new(&ctx, &hyper, &mut rng).unwrap();
    Trainer::new(TrainConfig {
        epochs: 40,
        patience: 0,
        ..TrainConfig::default()
    })
    .train(&mut model as &mut dyn Model, &ctx, &split, seed)
    .unwrap();

    let mut eval_rng = StdRng::seed_from_u64(0);
    let full_logits = model.forward(&ctx, false, &mut eval_rng).unwrap();
    let snapshot = ServeSnapshot::new(
        "round-trip-fixture",
        model.snapshot(&ctx).unwrap(),
        features,
        adjacency,
    )
    .unwrap();
    Fixture {
        snapshot,
        full_logits,
        labels,
    }
}

fn assert_close(a: &[f32], b: &[f32], tol: f32, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert!(
            (x - y).abs() <= tol,
            "{what}: component {i} differs: {x} vs {y}"
        );
    }
}

#[test]
fn served_logits_match_full_graph_forward_after_disk_round_trip() {
    let fixture = trained_fixture(11);
    let n = fixture.snapshot.num_nodes();

    // Disk round trip.
    let path = std::env::temp_dir().join("sigma-serve-round-trip.snapshot");
    fixture.snapshot.save(&path).unwrap();
    let loaded = ServeSnapshot::load(&path).unwrap();
    assert_eq!(loaded, fixture.snapshot);
    let _ = std::fs::remove_file(&path);

    // Restored model reproduces the training-side forward bitwise.
    let restored = SigmaModel::restore(&loaded.model).unwrap();
    assert_eq!(restored.num_parameters(), loaded.model.num_parameters());

    // The engine serves every node with logits within 1e-6 of the full
    // forward pass (they are computed by the same f32 operations, so this is
    // effectively bitwise).
    let engine = InferenceEngine::new(&loaded, EngineConfig::default()).unwrap();
    assert_eq!(engine.num_nodes(), n);
    let all: Vec<usize> = (0..n).collect();
    let served = engine.predict_batch(&all).unwrap();
    assert_eq!(served.len(), n);
    for prediction in &served {
        assert_close(
            &prediction.logits,
            fixture.full_logits.row(prediction.node),
            1e-6,
            "served vs full forward",
        );
        assert!(!prediction.stale);
    }

    // Serving agrees with training-side argmax labels everywhere.
    let full_labels = fixture.full_logits.argmax_rows();
    for prediction in &served {
        assert_eq!(prediction.label, full_labels[prediction.node]);
    }
    // Sanity: the model actually learned something about the training graph.
    let correct = served
        .iter()
        .filter(|p| p.label == fixture.labels[p.node])
        .count();
    assert!(
        correct as f64 / n as f64 > 1.0 / 3.0,
        "served accuracy at chance level: {correct}/{n}"
    );
}

#[test]
fn single_and_batched_queries_agree_and_hit_the_cache() {
    let fixture = trained_fixture(13);
    let engine = InferenceEngine::new(
        &fixture.snapshot,
        EngineConfig {
            cache_capacity: 64,
            workers: 0,
            max_chunk: 16,
        },
    )
    .unwrap();

    let first = engine.predict(5).unwrap();
    assert!(!first.cached, "first query cannot be a cache hit");
    let second = engine.predict(5).unwrap();
    assert!(second.cached, "repeat query must hit the cache");
    assert_eq!(first.logits, second.logits);
    assert_eq!(first.label, second.label);

    let batch = engine.predict_batch(&[5, 6, 5, 7]).unwrap();
    assert_eq!(batch.len(), 4);
    assert_eq!(batch[0].logits, first.logits);
    assert_eq!(batch[2].logits, first.logits);
    assert!(batch[0].cached);

    let stats = engine.stats();
    assert!(stats.cache_hits >= 3);
    assert!(stats.cache_misses >= 3);
    assert_eq!(stats.nodes_served, 6);
}

#[test]
fn worker_pool_serves_large_batches_in_order() {
    // Explicit worker counts are validated against the shared pool, so make
    // sure the pool is at least as wide as the workers we request.
    sigma_parallel::set_global_threads(4);
    let fixture = trained_fixture(17);
    let n = fixture.snapshot.num_nodes();
    let engine = InferenceEngine::new(
        &fixture.snapshot,
        EngineConfig {
            cache_capacity: 16,
            workers: 3,
            max_chunk: 7,
        },
    )
    .unwrap();
    // A batch far larger than max_chunk exercises the pooled path.
    let nodes: Vec<usize> = (0..n).chain(0..n).collect();
    let served = engine.predict_batch(&nodes).unwrap();
    assert_eq!(served.len(), 2 * n);
    for (slot, prediction) in served.iter().enumerate() {
        assert_eq!(prediction.node, nodes[slot], "order must be preserved");
        assert_close(
            &prediction.logits,
            fixture.full_logits.row(prediction.node),
            1e-6,
            "pooled serving vs full forward",
        );
    }
    assert!(
        engine.stats().batches_served >= 2,
        "chunks served independently"
    );
    // Restore the SIGMA_NUM_THREADS-derived width for the rest of the
    // binary (kernel results are identical either way — determinism — but
    // the CI serial leg should stay serial outside this test).
    sigma_parallel::set_global_threads(0);
}

#[test]
fn concurrent_callers_share_one_engine() {
    sigma_parallel::set_global_threads(4);
    let fixture = trained_fixture(19);
    let n = fixture.snapshot.num_nodes();
    let engine = std::sync::Arc::new(
        InferenceEngine::new(
            &fixture.snapshot,
            EngineConfig {
                cache_capacity: 128,
                workers: 2,
                max_chunk: 8,
            },
        )
        .unwrap(),
    );
    let expected = std::sync::Arc::new(fixture.full_logits);
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let engine = std::sync::Arc::clone(&engine);
            let expected = std::sync::Arc::clone(&expected);
            std::thread::spawn(move || {
                for round in 0..5 {
                    let nodes: Vec<usize> = (0..n).map(|i| (i * (t + 1) + round) % n).collect();
                    let served = engine.predict_batch(&nodes).unwrap();
                    for p in served {
                        let row = expected.row(p.node);
                        for (a, b) in p.logits.iter().zip(row.iter()) {
                            assert!((a - b).abs() <= 1e-6);
                        }
                    }
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    assert_eq!(engine.stats().nodes_served as usize, 4 * 5 * n);
    sigma_parallel::set_global_threads(0);
}

#[test]
fn zero_capacity_engine_configs_are_rejected() {
    // Standalone fixed-size pools make these assertions independent of the
    // global thread override (which other tests in this binary may change).
    let pool = sigma_parallel::ThreadPool::with_threads(2);
    // A zero max_chunk can serve no nodes per chunk.
    assert!(matches!(
        EngineConfig {
            cache_capacity: 4,
            workers: 1,
            max_chunk: 0,
        }
        .validate(&pool),
        Err(ServeError::WorkerConfig { .. })
    ));
    // More workers than the pool could ever run concurrently.
    let too_many = EngineConfig {
        cache_capacity: 4,
        workers: usize::MAX,
        max_chunk: 8,
    };
    assert!(matches!(
        too_many.validate(&pool),
        Err(ServeError::WorkerConfig { .. })
    ));
    // The default (auto workers) is valid against any pool size and clamps
    // to the pool's capacity.
    assert!(EngineConfig::default().validate(&pool).is_ok());
    assert_eq!(EngineConfig::default().effective_workers(&pool), 2);
    assert_eq!(too_many.effective_workers(&pool), 2);
    // The engine constructor applies the same validation up front, against
    // the global pool: usize::MAX workers exceed any pool (capped at
    // MAX_THREADS), so this errors under every thread configuration.
    let fixture = trained_fixture(29);
    let err = InferenceEngine::new(&fixture.snapshot, too_many).unwrap_err();
    assert!(err.to_string().contains("shared pool"));
}

#[test]
fn queries_out_of_range_are_rejected() {
    let fixture = trained_fixture(23);
    let n = fixture.snapshot.num_nodes();
    let engine = InferenceEngine::new(&fixture.snapshot, EngineConfig::default()).unwrap();
    assert!(matches!(
        engine.predict(n),
        Err(ServeError::InvalidQuery { .. })
    ));
    assert!(matches!(
        engine.predict_batch(&[0, n + 5]),
        Err(ServeError::InvalidQuery { .. })
    ));
    // Pooled path also surfaces the error.
    let mut nodes: Vec<usize> = (0..n).collect();
    nodes.push(n + 1);
    assert!(engine.predict_batch(&nodes).is_err());
}

#[test]
fn edge_updates_invalidate_affected_rows_and_mark_them_stale() {
    let fixture = trained_fixture(29);
    let engine = InferenceEngine::new(
        &fixture.snapshot,
        EngineConfig {
            cache_capacity: 1024,
            workers: 0,
            max_chunk: 64,
        },
    )
    .unwrap();
    let n = fixture.snapshot.num_nodes();
    let all: Vec<usize> = (0..n).collect();
    let _ = engine.predict_batch(&all).unwrap();
    let cached_before = engine.cached_rows();
    assert_eq!(cached_before, n.min(1024));

    let invalidated = engine
        .apply_edge_updates(&[EdgeUpdate::Insert(0, 1)])
        .unwrap();
    assert!(
        invalidated > 0,
        "the affected region must evict cached rows"
    );
    assert!(engine.cached_rows() < cached_before);
    let stale = engine.stale_nodes();
    assert!(stale.contains(&0) && stale.contains(&1));

    // Predictions for stale nodes are flagged; untouched nodes are not.
    let p0 = engine.predict(0).unwrap();
    assert!(p0.stale);
    let fresh_node = (0..n)
        .find(|v| !stale.contains(v))
        .expect("some fresh node");
    assert!(!engine.predict(fresh_node).unwrap().stale);

    // Out-of-range updates are rejected.
    assert!(engine
        .apply_edge_updates(&[EdgeUpdate::Insert(0, n + 3)])
        .is_err());
    assert_eq!(engine.stats().rows_invalidated, invalidated as u64);
}

#[test]
fn dynamic_maintainer_refresh_swaps_the_operator() {
    let fixture = trained_fixture(31);
    let n = fixture.snapshot.num_nodes();
    let engine = InferenceEngine::new(
        &fixture.snapshot,
        EngineConfig {
            cache_capacity: 256,
            workers: 0,
            max_chunk: 64,
        },
    )
    .unwrap();

    // A maintainer over the same graph with a small staleness budget.
    let graph = sigma::graph::Graph::from_edges(
        n,
        &fixture
            .snapshot
            .adjacency
            .indptr()
            .windows(2)
            .enumerate()
            .flat_map(|(u, w)| {
                fixture.snapshot.adjacency.indices()[w[0]..w[1]]
                    .iter()
                    .map(move |&v| (u, v as usize))
                    .filter(|&(u, v)| u < v)
            })
            .collect::<Vec<_>>(),
    )
    .unwrap();
    let mut maintainer =
        DynamicSimRank::new(graph, SimRankConfig::default().with_top_k(TOP_K), 2).unwrap();
    maintainer.refresh().unwrap();

    // Within budget: sync marks affected nodes stale but keeps the operator.
    maintainer.apply(EdgeUpdate::Insert(0, n / 2)).unwrap();
    let refreshed = engine.sync_with(&mut maintainer).unwrap();
    assert!(!refreshed);
    assert!(!engine.stale_nodes().is_empty());

    // Exceed the budget: sync installs the recomputed operator and clears
    // the staleness set.
    maintainer.apply(EdgeUpdate::Insert(1, n / 2 + 1)).unwrap();
    maintainer.apply(EdgeUpdate::Insert(2, n / 2 + 2)).unwrap();
    assert!(maintainer.needs_refresh());
    let refreshed = engine.sync_with(&mut maintainer).unwrap();
    assert!(refreshed);
    assert!(engine.stale_nodes().is_empty());
    assert_eq!(engine.stats().operator_refreshes, 1);
    // Serving still works against the refreshed operator.
    let p = engine.predict(0).unwrap();
    assert_eq!(p.logits.len(), engine.num_classes());
    assert!(!p.stale);
}

#[test]
fn corrupted_files_are_rejected_with_typed_errors() {
    let fixture = trained_fixture(37);
    let mut buf = Vec::new();
    fixture.snapshot.write_to(&mut buf).unwrap();

    // Round trip from memory.
    let loaded = ServeSnapshot::read_from(&mut buf.as_slice()).unwrap();
    assert_eq!(loaded, fixture.snapshot);

    // Bad magic.
    let mut bad_magic = buf.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(
        ServeSnapshot::read_from(&mut bad_magic.as_slice()),
        Err(ServeError::Corrupt { .. })
    ));

    // Future version.
    let mut future = buf.clone();
    future[8..12].copy_from_slice(&99u32.to_le_bytes());
    assert!(matches!(
        ServeSnapshot::read_from(&mut future.as_slice()),
        Err(ServeError::UnsupportedVersion { found: 99, .. })
    ));

    // Truncation anywhere in the tail surfaces as Io or Corrupt, never a
    // panic.
    for cut in [buf.len() / 3, buf.len() / 2, buf.len() - 1] {
        let truncated = &buf[..cut];
        match ServeSnapshot::read_from(&mut &truncated[..]) {
            Err(ServeError::Io(_)) | Err(ServeError::Corrupt { .. }) => {}
            other => panic!("truncated read at {cut} returned {other:?}"),
        }
    }

    // Missing file.
    assert!(matches!(
        ServeSnapshot::load("/nonexistent/sigma.snapshot"),
        Err(ServeError::Io(_))
    ));
}
