//! Proptest differential suite: incremental repair ≡ full refresh, bit for
//! bit, across random graphs, random edit traces, and thread counts.
//!
//! Every case runs the `sigma_testutil` oracle, which replays an edit trace
//! through a long-lived engine patched by `InferenceEngine::repair_from` and
//! through from-scratch recomputation on the edited graph, asserting after
//! each batch that the operator rows, every served logit, and the cache
//! observability counters agree exactly. The same trace is replayed with the
//! shared pool pinned to 1 and to 4 threads — repair must be bitwise
//! deterministic in the thread count too.

use proptest::prelude::*;
use sigma_simrank::EdgeUpdate;
use sigma_testutil::{random_graph, random_trace, replay_differential, TraceShape};

/// Replays one trace at both pool widths and cross-checks the reports.
fn replay_at_both_widths(
    graph: &sigma_graph::Graph,
    trace: &[Vec<EdgeUpdate>],
    top_k: usize,
    seed: u64,
) {
    sigma_parallel::set_global_threads(1);
    let serial = replay_differential(graph, trace, top_k, seed);
    sigma_parallel::set_global_threads(4);
    let parallel = replay_differential(graph, trace, top_k, seed);
    sigma_parallel::set_global_threads(0);
    // The oracle already asserted bitwise equality against the from-scratch
    // reference at each width; the widths must also agree with each other
    // on everything they observed.
    assert_eq!(serial, parallel, "repair diverged across thread counts");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    #[test]
    fn incremental_repair_matches_full_refresh_bitwise(
        (num_nodes, extra_edges, seed) in (12usize..32, 4usize..24, 0u64..1_000_000),
        (batches, batch_len) in (1usize..4, 2usize..6),
    ) {
        let graph = random_graph(num_nodes, extra_edges, seed);
        let shape = TraceShape {
            batches,
            batch_len,
            ..TraceShape::default()
        };
        let trace = random_trace(&graph, shape, seed);
        replay_at_both_widths(&graph, &trace, 5, seed);
    }

    #[test]
    fn delete_heavy_traces_repair_exactly(
        seed in 0u64..1_000_000,
    ) {
        // Deletions shrink neighbourhoods and can empty operator rows; the
        // delete-then-readd shape must land back on the original bits.
        let graph = random_graph(20, 20, seed);
        let shape = TraceShape {
            batches: 3,
            batch_len: 4,
            delete_probability: 0.8,
            readd_probability: 0.5,
        };
        let trace = random_trace(&graph, shape, seed);
        replay_at_both_widths(&graph, &trace, 4, seed);
    }
}

#[test]
fn empty_trace_is_an_exact_no_op_at_both_widths() {
    let graph = random_graph(16, 8, 42);
    let trace = vec![Vec::new(), Vec::new()];
    sigma_parallel::set_global_threads(1);
    let serial = replay_differential(&graph, &trace, 4, 42);
    sigma_parallel::set_global_threads(4);
    let parallel = replay_differential(&graph, &trace, 4, 42);
    sigma_parallel::set_global_threads(0);
    assert_eq!(serial, parallel);
    assert_eq!(serial.operator_rows_patched, 0);
    assert_eq!(serial.embedding_rows_patched, 0);
    assert_eq!(serial.cache_rows_invalidated, 0);
}

#[test]
fn delete_then_readd_within_one_batch_round_trips() {
    let graph = random_graph(18, 10, 7);
    // Explicit worst case for the bookkeeping: the same edge is deleted and
    // re-added in one batch (net no-op on topology, but both endpoints are
    // recorded as edited), plus genuine no-op edits around it.
    let trace = vec![vec![
        EdgeUpdate::Delete(0, 1),
        EdgeUpdate::Insert(0, 1),
        EdgeUpdate::Insert(3, 3),  // self-loop: pure no-op
        EdgeUpdate::Delete(2, 11), // likely absent: no-op unless generated
    ]];
    sigma_parallel::set_global_threads(1);
    let serial = replay_differential(&graph, &trace, 5, 7);
    sigma_parallel::set_global_threads(4);
    let parallel = replay_differential(&graph, &trace, 5, 7);
    sigma_parallel::set_global_threads(0);
    assert_eq!(serial, parallel);
}
