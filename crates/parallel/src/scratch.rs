//! Reusable scratch buffers for hot-path kernels.
//!
//! Several kernels need a working buffer per task — spgemm's dense Gustavson
//! accumulator, LocalPush's per-chunk absorb/delta buffers — and allocating
//! them per call (or worse, per round) puts the allocator on the hot path.
//! A [`ScratchPool`] is a tiny free-list of such buffers: a task takes one
//! (or creates it on first use), works with it, and its return to the pool
//! hands the allocation — grown capacity, hash-map load factor and all — to
//! the next task.
//!
//! The pool is deliberately *not* part of the determinism story: buffers are
//! only ever scratch space whose logical content is reset by the user (each
//! call site documents its cleanliness invariant), so which physical buffer
//! a task happens to receive can never influence results.

use sigma_obs::StaticCounter;
use std::ops::{Deref, DerefMut};
use std::sync::Mutex;

static SCRATCH_HITS: StaticCounter = StaticCounter::new(
    "sigma_scratch_hits_total",
    "scratch-pool takes served from the free list (allocation reused)",
);
static SCRATCH_MISSES: StaticCounter = StaticCounter::new(
    "sigma_scratch_misses_total",
    "scratch-pool takes that had to build a fresh buffer",
);

/// Default cap on how many buffers a pool retains; takes beyond the cap are
/// still served (freshly built), returns beyond it are dropped. Matches the
/// maximum concurrency a pool-wide kernel can reach.
pub const DEFAULT_RETAINED: usize = crate::MAX_THREADS;

/// A free-list of reusable buffers, shared across threads.
///
/// Intended to live in a `static` next to the kernel that uses it:
///
/// ```
/// use sigma_parallel::ScratchPool;
///
/// static SCRATCH: ScratchPool<Vec<f32>> = ScratchPool::new();
///
/// let mut buf = SCRATCH.take_or_else(Vec::new);
/// buf.resize(128, 0.0);
/// // ... use the buffer; site invariant: return it zeroed ...
/// buf.iter_mut().for_each(|v| *v = 0.0);
/// drop(buf); // back to the pool
/// assert!(SCRATCH.retained() >= 1);
/// ```
///
/// Each call site must document the state a buffer is returned in (e.g.
/// "all-zero", "cleared"), because the next taker relies on it.
pub struct ScratchPool<T: Send> {
    free: Mutex<Vec<T>>,
    max_retained: usize,
}

impl<T: Send> ScratchPool<T> {
    /// An empty pool retaining up to [`DEFAULT_RETAINED`] buffers.
    pub const fn new() -> Self {
        Self::with_max_retained(DEFAULT_RETAINED)
    }

    /// An empty pool retaining at most `max_retained` returned buffers.
    pub const fn with_max_retained(max_retained: usize) -> Self {
        Self {
            free: Mutex::new(Vec::new()),
            max_retained,
        }
    }

    /// Takes a pooled buffer, or `None` if the free list is empty.
    pub fn take(&self) -> Option<T> {
        self.free.lock().expect("scratch pool poisoned").pop()
    }

    /// Takes a pooled buffer, building a fresh one with `make` if none is
    /// free. The buffer returns to the pool when the guard drops.
    pub fn take_or_else(&self, make: impl FnOnce() -> T) -> ScratchGuard<'_, T> {
        let value = match self.take() {
            Some(pooled) => {
                SCRATCH_HITS.inc();
                pooled
            }
            None => {
                SCRATCH_MISSES.inc();
                make()
            }
        };
        ScratchGuard {
            pool: self,
            value: Some(value),
        }
    }

    /// Returns a buffer to the free list (dropped if the pool already
    /// retains its maximum).
    pub fn put(&self, value: T) {
        let mut free = self.free.lock().expect("scratch pool poisoned");
        if free.len() < self.max_retained {
            free.push(value);
        }
    }

    /// Number of buffers currently retained.
    pub fn retained(&self) -> usize {
        self.free.lock().expect("scratch pool poisoned").len()
    }
}

impl<T: Send> Default for ScratchPool<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Send> std::fmt::Debug for ScratchPool<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScratchPool")
            .field("retained", &self.retained())
            .field("max_retained", &self.max_retained)
            .finish()
    }
}

/// RAII handle to a buffer borrowed from a [`ScratchPool`]; derefs to the
/// buffer and returns it to the pool on drop.
pub struct ScratchGuard<'p, T: Send> {
    pool: &'p ScratchPool<T>,
    value: Option<T>,
}

impl<T: Send> ScratchGuard<'_, T> {
    /// Detaches the buffer from the pool (it will not be returned).
    pub fn into_inner(mut self) -> T {
        self.value.take().expect("guard value present until drop")
    }
}

impl<T: Send> Deref for ScratchGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.value.as_ref().expect("guard value present until drop")
    }
}

impl<T: Send> DerefMut for ScratchGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.value.as_mut().expect("guard value present until drop")
    }
}

impl<T: Send> Drop for ScratchGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(value) = self.value.take() {
            self.pool.put(value);
        }
    }
}

impl<T: Send + std::fmt::Debug> std::fmt::Debug for ScratchGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ScratchGuard").field(&self.value).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_or_else_reuses_returned_buffers() {
        let pool: ScratchPool<Vec<u32>> = ScratchPool::new();
        {
            let mut a = pool.take_or_else(Vec::new);
            a.push(7);
            a.clear();
        }
        assert_eq!(pool.retained(), 1);
        let b = pool.take_or_else(|| panic!("must reuse the pooled buffer"));
        assert!(b.is_empty());
        assert!(b.capacity() >= 1, "capacity survives the round trip");
        assert_eq!(pool.retained(), 0);
    }

    #[test]
    fn retention_is_capped() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::with_max_retained(2);
        for _ in 0..5 {
            pool.put(Vec::new());
        }
        assert_eq!(pool.retained(), 2);
    }

    #[test]
    fn into_inner_detaches() {
        let pool: ScratchPool<String> = ScratchPool::new();
        let guard = pool.take_or_else(|| String::from("x"));
        let owned = guard.into_inner();
        assert_eq!(owned, "x");
        assert_eq!(pool.retained(), 0);
    }

    #[test]
    fn pool_is_shareable_across_threads() {
        static POOL: ScratchPool<Vec<usize>> = ScratchPool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..16 {
                        let mut buf = POOL.take_or_else(Vec::new);
                        buf.push(i);
                        buf.clear();
                    }
                });
            }
        });
        assert!(POOL.retained() >= 1);
    }
}
