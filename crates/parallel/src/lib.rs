//! # sigma-parallel
//!
//! The shared execution layer of the SIGMA reproduction: one global,
//! lazily-initialised thread pool that every hot kernel (`spmm`,
//! `spmm_transpose`, `spgemm`, dense GEMM, LocalPush, the serving engine)
//! dispatches onto, instead of each crate hand-rolling its own threading.
//!
//! ## Design
//!
//! * **Global pool, lazy start.** [`ThreadPool::global`] spawns workers on
//!   first use. The pool size comes from the `SIGMA_NUM_THREADS` environment
//!   variable, falling back to [`std::thread::available_parallelism`]; it can
//!   be overridden at runtime with [`set_global_threads`] (used by the
//!   `threads` knobs in `sigma::ContextBuilder` / `sigma::TrainConfig` and by
//!   the serial-vs-parallel parity tests). Standalone pools for tests come
//!   from [`ThreadPool::with_threads`].
//! * **Scoped execution, hand-rolled.** There is no registry access in this
//!   build environment, so no `rayon`: work is pushed as boxed closures onto
//!   a chunked queue and joined with a `std::thread::scope`-style latch. The
//!   submitting thread *participates* (it executes queued work while
//!   waiting), which both uses the extra core and makes nested submissions
//!   deadlock-free.
//! * **Determinism.** The primitives partition *disjoint output-row ranges*,
//!   so every output element is written by exactly one task using the same
//!   sequential accumulation order as the serial loop. Kernel results are
//!   therefore **bitwise identical** for every thread count — enforced by
//!   the parity tests in `crates/matrix/tests` and `crates/simrank/tests`,
//!   and by CI running the whole suite under `SIGMA_NUM_THREADS=1` and `=4`.
//! * **Panic propagation.** A panic inside a task is caught, the scope still
//!   joins every sibling task, and the payload is re-raised on the
//!   submitting thread. Workers survive panics.
//!
//! ## Example
//!
//! ```
//! use sigma_parallel::ThreadPool;
//!
//! let mut data = vec![0u64; 1000];
//! // Each block of rows is owned by exactly one task.
//! ThreadPool::global().par_row_blocks_mut(&mut data, 10, |first_row, block| {
//!     for (i, row) in block.chunks_mut(10).enumerate() {
//!         row.iter_mut().for_each(|v| *v = (first_row + i) as u64);
//!     }
//! });
//! assert_eq!(data[995], 99);
//! ```

#![deny(missing_docs)]

use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Work (in inner-loop operations, e.g. FLOPs) below which parallel dispatch
/// is not worth the queueing overhead and kernels should stay serial.
pub const MIN_PARALLEL_WORK: usize = 32_768;

/// Upper bound on configurable thread counts (safety valve for absurd
/// `SIGMA_NUM_THREADS` values).
pub const MAX_THREADS: usize = 256;

/// Runtime override installed by [`set_global_threads`] (0 = unset).
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `SIGMA_NUM_THREADS`, read once at first use.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

static GLOBAL_POOL: OnceLock<ThreadPool> = OnceLock::new();

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("SIGMA_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The thread count the global pool currently targets: the
/// [`set_global_threads`] override if set, else `SIGMA_NUM_THREADS`, else
/// [`std::thread::available_parallelism`]. Always at least 1, at most
/// [`MAX_THREADS`].
pub fn current_threads() -> usize {
    let override_n = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    let n = if override_n > 0 {
        override_n
    } else if let Some(n) = env_threads() {
        n
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    n.clamp(1, MAX_THREADS)
}

/// Overrides the global pool's thread count at runtime. `n = 0` clears the
/// override (falling back to `SIGMA_NUM_THREADS` / the core count); other
/// values are clamped to `[1, MAX_THREADS]`.
///
/// Raising the count after the pool has started spawns additional workers on
/// demand; lowering it leaves the extra workers idle. Because every kernel's
/// partitioning is deterministic in its *output* (not in the thread count),
/// changing this mid-flight never changes results, only throughput.
pub fn set_global_threads(n: usize) {
    let value = if n == 0 { 0 } else { n.clamp(1, MAX_THREADS) };
    GLOBAL_OVERRIDE.store(value, Ordering::Relaxed);
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    spawned_workers: usize,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<QueueState>,
    job_ready: Condvar,
}

/// Join latch for one scoped submission: counts outstanding tasks and holds
/// the first panic payload, re-raised by the submitter once all siblings
/// have finished.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn complete_one(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("latch lock poisoned") == 0
    }

    fn wait_briefly(&self) {
        let remaining = self.remaining.lock().expect("latch lock poisoned");
        if *remaining > 0 {
            // Timed wait: a sibling may finish between our queue poll and
            // this wait, and tasks stolen by other scopes' submitters do not
            // notify us; the timeout bounds that race instead of a missed
            // wake-up hanging the scope.
            let _ = self
                .done
                .wait_timeout(remaining, Duration::from_micros(500))
                .expect("latch lock poisoned");
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("latch panic lock poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().expect("latch panic lock poisoned").take()
    }
}

/// A chunked-work-queue thread pool with scoped joins.
///
/// Use [`ThreadPool::global`] everywhere except tests that need an isolated
/// pool ([`ThreadPool::with_threads`]). All `par_*` primitives partition
/// disjoint output ranges, preserving the serial accumulation order per
/// output element, so results are bitwise identical at every thread count.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    /// Fixed size for standalone pools; `None` = track [`current_threads`].
    fixed_threads: Option<usize>,
    /// Join handles of standalone pools (the global pool's workers are
    /// detached: it lives for the whole process).
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.num_threads())
            .field("fixed", &self.fixed_threads.is_some())
            .finish()
    }
}

impl ThreadPool {
    /// The process-wide shared pool, started lazily on first use.
    pub fn global() -> &'static ThreadPool {
        GLOBAL_POOL.get_or_init(|| ThreadPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    spawned_workers: 0,
                    shutdown: false,
                }),
                job_ready: Condvar::new(),
            }),
            fixed_threads: None,
            handles: Mutex::new(Vec::new()),
        })
    }

    /// A standalone pool with a fixed thread count (workers are joined on
    /// drop). Intended for tests; production code should share
    /// [`ThreadPool::global`].
    pub fn with_threads(n: usize) -> ThreadPool {
        ThreadPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    spawned_workers: 0,
                    shutdown: false,
                }),
                job_ready: Condvar::new(),
            }),
            fixed_threads: Some(n.clamp(1, MAX_THREADS)),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The thread count this pool currently targets (submitting thread
    /// included).
    pub fn num_threads(&self) -> usize {
        self.fixed_threads.unwrap_or_else(current_threads)
    }

    /// Whether a kernel with `work` inner-loop operations should bother
    /// splitting: requires more than one thread and enough work to amortise
    /// dispatch (see [`MIN_PARALLEL_WORK`]).
    pub fn should_parallelize(&self, work: usize) -> bool {
        self.num_threads() > 1 && work >= MIN_PARALLEL_WORK
    }

    /// Partitions `0..n` into at most [`ThreadPool::num_threads`] contiguous,
    /// near-equal ranges (fewer when `n` is small; empty when `n == 0`).
    pub fn split_ranges(&self, n: usize) -> Vec<Range<usize>> {
        split_into(n, self.num_threads())
    }

    /// Runs a set of scoped tasks to completion.
    ///
    /// Tasks may borrow from the caller's stack: the call does not return
    /// until every task has finished (or the first panic has been joined and
    /// re-raised). The submitting thread executes queued work while it
    /// waits, so nested `run` calls from inside a task cannot deadlock.
    pub fn run<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        match tasks.len() {
            0 => return,
            1 => {
                // Single task: run inline, no queue round-trip.
                for task in tasks {
                    task();
                }
                return;
            }
            _ => {}
        }
        if self.num_threads() == 1 {
            // Serial pool: preserve submission order exactly.
            for task in tasks {
                task();
            }
            return;
        }

        let latch = Arc::new(Latch::new(tasks.len()));
        self.ensure_workers(self.num_threads().saturating_sub(1).min(tasks.len() - 1));
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            for task in tasks {
                let latch = Arc::clone(&latch);
                let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        latch.record_panic(payload);
                    }
                    latch.complete_one();
                });
                // SAFETY: `run` blocks on the latch until every task has
                // executed (workers decrement even on panic), so the `'scope`
                // borrows captured by the task strictly outlive its
                // execution. This is the standard scoped-pool erasure; only
                // the lifetime is transmuted, the layout is identical.
                let job: Job = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'scope>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(wrapped)
                };
                queue.jobs.push_back(job);
            }
            self.shared.job_ready.notify_all();
        }
        // Help-first join: keep executing queued work (ours or a nested
        // scope's) until our own latch opens.
        while !latch.is_done() {
            let job = {
                let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
                queue.jobs.pop_front()
            };
            match job {
                Some(job) => job(),
                None => latch.wait_briefly(),
            }
        }
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
    }

    /// Splits row-major `data` (`data.len() / width` rows of `width`
    /// elements) into at most [`ThreadPool::num_threads`] contiguous row
    /// blocks and runs `f(first_row, block)` on each in parallel.
    ///
    /// Each output row is owned by exactly one call, so any `f` that fills
    /// its block with a per-row computation produces bitwise-identical
    /// results at every thread count. With one thread (or one block) this is
    /// exactly `f(0, data)`.
    pub fn par_row_blocks_mut<T, F>(&self, data: &mut [T], width: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        if width == 0 {
            f(0, data);
            return;
        }
        let rows = data.len() / width;
        let blocks = self.num_threads().min(rows.max(1));
        if blocks <= 1 {
            f(0, data);
            return;
        }
        let rows_per_block = rows.div_ceil(blocks);
        let chunk_len = rows_per_block * width;
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = data
            .chunks_mut(chunk_len)
            .enumerate()
            .map(|(i, block)| {
                Box::new(move || f(i * rows_per_block, block)) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        self.run(tasks);
    }

    /// Partitions `0..n` into contiguous ranges (one per thread) and maps
    /// each through `f`, returning results in range order.
    ///
    /// The number of ranges adapts to the thread count, so only use this
    /// when per-range results are position-independent (e.g. disjoint output
    /// rows); for order-sensitive reductions use [`ThreadPool::par_map_chunks`]
    /// with a fixed chunk size.
    pub fn par_map_ranges<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        let ranges = self.split_ranges(n);
        if ranges.len() <= 1 {
            return ranges.into_iter().map(&f).collect();
        }
        let mut slots: Vec<Option<R>> = ranges.iter().map(|_| None).collect();
        {
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
                .into_iter()
                .zip(slots.iter_mut())
                .map(|(range, slot)| {
                    Box::new(move || *slot = Some(f(range))) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.run(tasks);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every range task ran to completion"))
            .collect()
    }

    /// Maps every item of `items` through `f` as its own scoped task,
    /// returning results in item order.
    ///
    /// Unlike [`ThreadPool::par_map_chunks`] the scheduling unit is a single
    /// item, which load-balances heavily skewed per-item costs — the repair
    /// rounds of the incremental SimRank maintainer, where one dirty seed's
    /// re-push can dominate a whole batch, are the motivating caller. Each
    /// result lands in the slot of its item, so for a pure `f` the output is
    /// identical at every thread count.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if items.len() <= 1 || self.num_threads() == 1 {
            return items.iter().map(&f).collect();
        }
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        {
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
                .iter()
                .zip(slots.iter_mut())
                .map(|(item, slot)| {
                    Box::new(move || *slot = Some(f(item))) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.run(tasks);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every item task ran to completion"))
            .collect()
    }

    /// Maps fixed-size chunks of `items` through `f` in parallel, returning
    /// results in chunk order.
    ///
    /// The chunk boundaries depend only on `chunk_len` and `items.len()` —
    /// **not** on the thread count — so a caller that merges the results in
    /// chunk order gets bitwise-identical output at every thread count. This
    /// is the primitive behind the deterministic parallel LocalPush.
    pub fn par_map_chunks<T, R, F>(&self, items: &[T], chunk_len: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk_len = chunk_len.max(1);
        if items.len() <= chunk_len || self.num_threads() == 1 {
            return items
                .chunks(chunk_len)
                .enumerate()
                .map(|(i, c)| f(i, c))
                .collect();
        }
        let num_chunks = items.len().div_ceil(chunk_len);
        let mut slots: Vec<Option<R>> = (0..num_chunks).map(|_| None).collect();
        {
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
                .chunks(chunk_len)
                .zip(slots.iter_mut())
                .enumerate()
                .map(|(i, (chunk, slot))| {
                    Box::new(move || *slot = Some(f(i, chunk))) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.run(tasks);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every chunk task ran to completion"))
            .collect()
    }

    /// Spawns workers until at least `target` are alive (capped by
    /// [`MAX_THREADS`]).
    fn ensure_workers(&self, target: usize) {
        let target = target.min(MAX_THREADS);
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        while queue.spawned_workers < target {
            let shared = Arc::clone(&self.shared);
            let index = queue.spawned_workers;
            let handle = std::thread::Builder::new()
                .name(format!("sigma-parallel-{index}"))
                .spawn(move || worker_loop(shared))
                .expect("spawning a sigma-parallel worker thread");
            queue.spawned_workers += 1;
            if self.fixed_threads.is_some() {
                self.handles
                    .lock()
                    .expect("pool handle list poisoned")
                    .push(handle);
            }
            // The global pool's workers are intentionally detached: the pool
            // lives until process exit.
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Only standalone pools are ever dropped (the global pool lives in a
        // `OnceLock` static). Tell workers to exit once the queue drains.
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for handle in self
            .handles
            .lock()
            .expect("pool handle list poisoned")
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.shutdown {
                    break None;
                }
                queue = shared
                    .job_ready
                    .wait(queue)
                    .expect("pool queue poisoned while waiting");
            }
        };
        match job {
            // Jobs are panic-wrapped at submission, so this cannot unwind.
            Some(job) => job(),
            None => return,
        }
    }
}

/// Splits `0..n` into at most `parts` contiguous, near-equal ranges.
fn split_into(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let per = n.div_ceil(parts);
    (0..parts)
        .map(|i| (i * per).min(n)..((i + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 17, 100] {
            for parts in [1usize, 2, 4, 7] {
                let ranges = split_into(n, parts);
                let mut covered = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, covered, "ranges must be contiguous");
                    assert!(r.end > r.start);
                    covered = r.end;
                }
                assert_eq!(covered, n);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn par_row_blocks_write_disjoint_rows() {
        let pool = ThreadPool::with_threads(4);
        let (rows, width) = (103usize, 7usize);
        let mut data = vec![0u32; rows * width];
        pool.par_row_blocks_mut(&mut data, width, |first_row, block| {
            for (i, row) in block.chunks_mut(width).enumerate() {
                let r = first_row + i;
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (r * width + j) as u32;
                }
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i);
        }
    }

    #[test]
    fn par_map_ranges_preserves_order() {
        let pool = ThreadPool::with_threads(3);
        let sums = pool.par_map_ranges(1000, |r| r.clone().sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), (0..1000).sum::<usize>());
        // Single-thread pool produces the same partition results serially.
        let serial = ThreadPool::with_threads(1).par_map_ranges(1000, |r| r.sum::<usize>());
        assert_eq!(serial.iter().sum::<usize>(), (0..1000).sum::<usize>());
    }

    #[test]
    fn par_map_chunks_is_thread_count_independent() {
        let items: Vec<u64> = (0..997).collect();
        let f = |i: usize, chunk: &[u64]| (i, chunk.iter().sum::<u64>());
        let a = ThreadPool::with_threads(1).par_map_chunks(&items, 64, f);
        let b = ThreadPool::with_threads(4).par_map_chunks(&items, 64, f);
        assert_eq!(a, b);
        assert_eq!(a.len(), 997usize.div_ceil(64));
    }

    #[test]
    fn par_map_preserves_item_order_at_any_width() {
        let items: Vec<u64> = (0..321).collect();
        let f = |&x: &u64| x * x + 1;
        let serial = ThreadPool::with_threads(1).par_map(&items, f);
        let parallel = ThreadPool::with_threads(4).par_map(&items, f);
        assert_eq!(serial, parallel);
        assert_eq!(serial[17], 17 * 17 + 1);
        let empty: Vec<u64> = ThreadPool::with_threads(4).par_map(&[], f);
        assert!(empty.is_empty());
    }

    #[test]
    fn panics_propagate_after_join() {
        let pool = ThreadPool::with_threads(2);
        let hits = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                .map(|i| {
                    let hits = &hits;
                    Box::new(move || {
                        if i == 3 {
                            panic!("task failure");
                        }
                        hits.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(tasks);
        }));
        assert!(result.is_err(), "the task panic must be re-raised");
        // Every sibling still ran: the scope joins before unwinding.
        assert_eq!(hits.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        let pool = ThreadPool::with_threads(2);
        let total = AtomicUsize::new(0);
        let outer: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let total = &total;
                let pool = &pool;
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                        .map(|_| {
                            Box::new(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.run(inner);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(outer);
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn global_override_clamps_and_clears() {
        set_global_threads(usize::MAX);
        assert_eq!(current_threads(), MAX_THREADS);
        set_global_threads(3);
        assert_eq!(current_threads(), 3);
        set_global_threads(0);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn should_parallelize_respects_threshold() {
        let pool = ThreadPool::with_threads(4);
        assert!(!pool.should_parallelize(10));
        assert!(pool.should_parallelize(MIN_PARALLEL_WORK));
        let serial = ThreadPool::with_threads(1);
        assert!(!serial.should_parallelize(usize::MAX));
    }
}
