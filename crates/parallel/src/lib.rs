//! # sigma-parallel
//!
//! The shared execution layer of the SIGMA reproduction: one global,
//! lazily-initialised thread pool that every hot kernel (`spmm`,
//! `spmm_transpose`, `spgemm`, dense GEMM, LocalPush, the serving engine)
//! dispatches onto, instead of each crate hand-rolling its own threading.
//!
//! ## Design
//!
//! * **Global pool, lazy start.** [`ThreadPool::global`] spawns workers on
//!   first use. The pool size comes from the `SIGMA_NUM_THREADS` environment
//!   variable, falling back to [`std::thread::available_parallelism`]; it can
//!   be overridden at runtime with [`set_global_threads`] (used by the
//!   `threads` knobs in `sigma::ContextBuilder` / `sigma::TrainConfig` and by
//!   the serial-vs-parallel parity tests). Standalone pools for tests come
//!   from [`ThreadPool::with_threads`].
//! * **Scoped execution, hand-rolled.** There is no registry access in this
//!   build environment, so no `rayon`: work is pushed as boxed closures onto
//!   a chunked queue and joined with a `std::thread::scope`-style latch. The
//!   submitting thread *participates* (it executes queued work while
//!   waiting), which both uses the extra core and makes nested submissions
//!   deadlock-free.
//! * **Determinism.** The primitives partition *disjoint output-row ranges*,
//!   so every output element is written by exactly one task using the same
//!   sequential accumulation order as the serial loop. Kernel results are
//!   therefore **bitwise identical** for every thread count — enforced by
//!   the parity tests in `crates/matrix/tests` and `crates/simrank/tests`,
//!   and by CI running the whole suite under `SIGMA_NUM_THREADS=1` and `=4`.
//! * **nnz-balanced planning.** Where the ranges are cut is *not* part of
//!   the determinism contract (any cut of the same row order yields the
//!   same bits), so kernels with skewed per-row costs plan their ranges
//!   with [`partition_by_weight`] / [`partition_by_prefix`] — near-equal
//!   total nnz per range instead of near-equal row counts — and power-law
//!   graphs stop serialising behind their heaviest rows.
//! * **Scratch reuse.** Kernels that need per-task working buffers (spgemm's
//!   Gustavson accumulator, LocalPush's push-round buffers) recycle them
//!   through a [`ScratchPool`] instead of allocating per call.
//! * **Panic propagation.** A panic inside a task is caught, the scope still
//!   joins every sibling task, and the payload is re-raised on the
//!   submitting thread. Workers survive panics. When the panicking task was
//!   inside a `sigma_obs::span!` region, the innermost span's name is
//!   appended to string payloads (`"... (in span 'spmm')"`) so a kernel
//!   panic under load is attributable to the kernel that raised it.
//! * **Observability.** With the (default) `obs` feature the pool exports
//!   task counts, queue depth, per-worker busy nanoseconds and two range
//!   imbalance histograms — the planner's *predicted* max/ideal weight
//!   ratio next to the *measured* max/mean task wall-time ratio (both in
//!   permille, 1000 = perfectly balanced) — through `sigma_obs`. All of it
//!   is relaxed atomics off the lock paths; with `obs` disabled every hook
//!   compiles to nothing.
//!
//! ## Example
//!
//! ```
//! use sigma_parallel::ThreadPool;
//!
//! let mut data = vec![0u64; 1000];
//! // Each block of rows is owned by exactly one task.
//! ThreadPool::global().par_row_blocks_mut(&mut data, 10, |first_row, block| {
//!     for (i, row) in block.chunks_mut(10).enumerate() {
//!         row.iter_mut().for_each(|v| *v = (first_row + i) as u64);
//!     }
//! });
//! assert_eq!(data[995], 99);
//! ```

#![deny(missing_docs)]

mod scratch;

pub use scratch::{ScratchGuard, ScratchPool};

use sigma_obs::{StaticCounter, StaticCounterFamily, StaticGauge, StaticHistogram, Stopwatch};
use std::collections::VecDeque;
use std::ops::Range;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

static POOL_TASKS: StaticCounter = StaticCounter::new(
    "sigma_pool_tasks_total",
    "scoped tasks submitted through ThreadPool::run (inline fast paths included)",
);
static POOL_QUEUE_DEPTH: StaticGauge = StaticGauge::new(
    "sigma_pool_queue_depth",
    "boxed jobs currently waiting in the shared work queue",
);
static POOL_WORKER_BUSY_NS: StaticCounterFamily<MAX_THREADS> = StaticCounterFamily::new(
    "sigma_pool_worker_busy_ns",
    "worker",
    "nanoseconds each pool worker (by spawn index) spent executing jobs",
);
static POOL_SUBMITTER_BUSY_NS: StaticCounter = StaticCounter::new(
    "sigma_pool_submitter_busy_ns",
    "nanoseconds submitting threads spent executing queued jobs during help-first joins",
);
static POOL_IMBALANCE_PREDICTED: StaticHistogram = StaticHistogram::new(
    "sigma_pool_imbalance_predicted_permille",
    "planner-predicted range imbalance: heaviest range weight over the ideal equal share, permille (1000 = perfectly balanced)",
);
static POOL_IMBALANCE_MEASURED: StaticHistogram = StaticHistogram::new(
    "sigma_pool_imbalance_measured_permille",
    "measured range imbalance: slowest task wall time over the mean task wall time, permille (1000 = perfectly balanced)",
);

/// Per-task wall-time sampler feeding the measured-imbalance histogram.
///
/// Allocates one atomic slot per range when instrumentation is enabled and
/// more than one range will run; otherwise it is an empty vector and both
/// [`TaskTimer::time`] and [`TaskTimer::record`] reduce to the bare closure
/// call. Comparing its histogram against the planner's predicted imbalance
/// (recorded in [`partition_by_prefix`]) shows how well nnz-proportional
/// weights model real per-range cost.
struct TaskTimer {
    samples: Vec<AtomicU64>,
}

impl TaskTimer {
    fn new(parts: usize) -> Self {
        let samples = if sigma_obs::ENABLED && parts > 1 {
            (0..parts).map(|_| AtomicU64::new(0)).collect()
        } else {
            Vec::new()
        };
        Self { samples }
    }

    #[inline]
    fn time<T>(&self, index: usize, f: impl FnOnce() -> T) -> T {
        if self.samples.is_empty() {
            return f();
        }
        let sw = Stopwatch::start();
        let out = f();
        // `max(1)`: a sub-nanosecond task still counts as having run.
        self.samples[index].store(sw.elapsed_ns().max(1), Ordering::Relaxed);
        out
    }

    fn record(&self) {
        if self.samples.is_empty() {
            return;
        }
        let loads: Vec<u64> = self
            .samples
            .iter()
            .map(|s| s.load(Ordering::Relaxed))
            .collect();
        let total: u64 = loads.iter().sum();
        let max = loads.iter().copied().max().unwrap_or(0);
        if total == 0 || max == 0 {
            return;
        }
        let mean = total as f64 / loads.len() as f64;
        POOL_IMBALANCE_MEASURED.record(((max as f64 / mean) * 1000.0) as u64);
    }
}

/// Attaches the innermost `sigma_obs` span name (if the panicking task was
/// inside one) to string panic payloads, so the message re-raised by the
/// submitting thread names the kernel that failed. Non-string payloads pass
/// through untouched; with `obs` disabled this is the identity function.
fn attach_panic_span(payload: Box<dyn std::any::Any + Send>) -> Box<dyn std::any::Any + Send> {
    let Some(span) = sigma_obs::take_panic_span() else {
        return payload;
    };
    let message = if let Some(s) = payload.downcast_ref::<&'static str>() {
        Some((*s).to_string())
    } else {
        payload.downcast_ref::<String>().cloned()
    };
    match message {
        Some(m) => Box::new(format!("{m} (in span '{span}')")),
        None => payload,
    }
}

/// Work (in inner-loop operations, e.g. FLOPs) below which parallel dispatch
/// is not worth the queueing overhead and kernels should stay serial.
pub const MIN_PARALLEL_WORK: usize = 32_768;

/// Upper bound on configurable thread counts (safety valve for absurd
/// `SIGMA_NUM_THREADS` values).
pub const MAX_THREADS: usize = 256;

/// Contiguous batches per thread used when [`ThreadPool::par_map`] has more
/// items than it wants scoped tasks: enough oversubscription that a skewed
/// batch can be absorbed by idle threads, few enough tasks that queueing
/// stays off the profile.
const PAR_MAP_OVERSUB: usize = 4;

/// Runtime override installed by [`set_global_threads`] (0 = unset).
static GLOBAL_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `SIGMA_NUM_THREADS`, read once at first use.
static ENV_THREADS: OnceLock<Option<usize>> = OnceLock::new();

static GLOBAL_POOL: OnceLock<ThreadPool> = OnceLock::new();

fn env_threads() -> Option<usize> {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("SIGMA_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The thread count the global pool currently targets: the
/// [`set_global_threads`] override if set, else `SIGMA_NUM_THREADS`, else
/// [`std::thread::available_parallelism`]. Always at least 1, at most
/// [`MAX_THREADS`].
pub fn current_threads() -> usize {
    let override_n = GLOBAL_OVERRIDE.load(Ordering::Relaxed);
    let n = if override_n > 0 {
        override_n
    } else if let Some(n) = env_threads() {
        n
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    };
    n.clamp(1, MAX_THREADS)
}

/// Overrides the global pool's thread count at runtime. `n = 0` clears the
/// override (falling back to `SIGMA_NUM_THREADS` / the core count); other
/// values are clamped to `[1, MAX_THREADS]`.
///
/// Raising the count after the pool has started spawns additional workers on
/// demand; lowering it leaves the extra workers idle. Because every kernel's
/// partitioning is deterministic in its *output* (not in the thread count),
/// changing this mid-flight never changes results, only throughput.
pub fn set_global_threads(n: usize) {
    let value = if n == 0 { 0 } else { n.clamp(1, MAX_THREADS) };
    GLOBAL_OVERRIDE.store(value, Ordering::Relaxed);
}

type Job = Box<dyn FnOnce() + Send + 'static>;

struct QueueState {
    jobs: VecDeque<Job>,
    spawned_workers: usize,
    shutdown: bool,
}

struct PoolShared {
    queue: Mutex<QueueState>,
    job_ready: Condvar,
}

/// Join latch for one scoped submission: counts outstanding tasks and holds
/// the first panic payload, re-raised by the submitter once all siblings
/// have finished.
struct Latch {
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new(count: usize) -> Self {
        Self {
            remaining: Mutex::new(count),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn complete_one(&self) {
        let mut remaining = self.remaining.lock().expect("latch lock poisoned");
        *remaining -= 1;
        if *remaining == 0 {
            self.done.notify_all();
        }
    }

    fn is_done(&self) -> bool {
        *self.remaining.lock().expect("latch lock poisoned") == 0
    }

    fn wait_briefly(&self) {
        let remaining = self.remaining.lock().expect("latch lock poisoned");
        if *remaining > 0 {
            // Timed wait: a sibling may finish between our queue poll and
            // this wait, and tasks stolen by other scopes' submitters do not
            // notify us; the timeout bounds that race instead of a missed
            // wake-up hanging the scope.
            let _ = self
                .done
                .wait_timeout(remaining, Duration::from_micros(500))
                .expect("latch lock poisoned");
        }
    }

    fn record_panic(&self, payload: Box<dyn std::any::Any + Send>) {
        let mut slot = self.panic.lock().expect("latch panic lock poisoned");
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    fn take_panic(&self) -> Option<Box<dyn std::any::Any + Send>> {
        self.panic.lock().expect("latch panic lock poisoned").take()
    }
}

/// A chunked-work-queue thread pool with scoped joins.
///
/// Use [`ThreadPool::global`] everywhere except tests that need an isolated
/// pool ([`ThreadPool::with_threads`]). All `par_*` primitives partition
/// disjoint output ranges, preserving the serial accumulation order per
/// output element, so results are bitwise identical at every thread count.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    /// Fixed size for standalone pools; `None` = track [`current_threads`].
    fixed_threads: Option<usize>,
    /// Join handles of standalone pools (the global pool's workers are
    /// detached: it lives for the whole process).
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.num_threads())
            .field("fixed", &self.fixed_threads.is_some())
            .finish()
    }
}

impl ThreadPool {
    /// The process-wide shared pool, started lazily on first use.
    pub fn global() -> &'static ThreadPool {
        GLOBAL_POOL.get_or_init(|| ThreadPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    spawned_workers: 0,
                    shutdown: false,
                }),
                job_ready: Condvar::new(),
            }),
            fixed_threads: None,
            handles: Mutex::new(Vec::new()),
        })
    }

    /// A standalone pool with a fixed thread count (workers are joined on
    /// drop). Intended for tests; production code should share
    /// [`ThreadPool::global`].
    pub fn with_threads(n: usize) -> ThreadPool {
        ThreadPool {
            shared: Arc::new(PoolShared {
                queue: Mutex::new(QueueState {
                    jobs: VecDeque::new(),
                    spawned_workers: 0,
                    shutdown: false,
                }),
                job_ready: Condvar::new(),
            }),
            fixed_threads: Some(n.clamp(1, MAX_THREADS)),
            handles: Mutex::new(Vec::new()),
        }
    }

    /// The thread count this pool currently targets (submitting thread
    /// included).
    pub fn num_threads(&self) -> usize {
        self.fixed_threads.unwrap_or_else(current_threads)
    }

    /// Whether a kernel with `work` inner-loop operations should bother
    /// splitting: requires more than one thread and enough work to amortise
    /// dispatch (see [`MIN_PARALLEL_WORK`]).
    pub fn should_parallelize(&self, work: usize) -> bool {
        self.num_threads() > 1 && work >= MIN_PARALLEL_WORK
    }

    /// Partitions `0..n` into at most [`ThreadPool::num_threads`] contiguous,
    /// near-equal ranges (fewer when `n` is small; empty when `n == 0`).
    pub fn split_ranges(&self, n: usize) -> Vec<Range<usize>> {
        split_into(n, self.num_threads())
    }

    /// Partitions `0..weights.len()` into at most
    /// [`ThreadPool::num_threads`] contiguous ranges of near-equal total
    /// *weight* (see [`partition_by_weight`]). This is the nnz-balanced
    /// planner: kernels whose per-row cost is proportional to the row's
    /// stored entries pass `row_nnz` weights so a skewed (power-law) row
    /// distribution still spreads evenly across threads.
    pub fn split_ranges_by_weight(&self, weights: &[usize]) -> Vec<Range<usize>> {
        partition_by_weight(weights, self.num_threads())
    }

    /// Runs a set of scoped tasks to completion.
    ///
    /// Tasks may borrow from the caller's stack: the call does not return
    /// until every task has finished (or the first panic has been joined and
    /// re-raised). The submitting thread executes queued work while it
    /// waits, so nested `run` calls from inside a task cannot deadlock.
    pub fn run<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        POOL_TASKS.add(tasks.len() as u64);
        match tasks.len() {
            0 => return,
            1 => {
                // Single task: run inline, no queue round-trip.
                for task in tasks {
                    task();
                }
                return;
            }
            _ => {}
        }
        if self.num_threads() == 1 {
            // Serial pool: preserve submission order exactly.
            for task in tasks {
                task();
            }
            return;
        }

        let task_count = tasks.len();
        let latch = Arc::new(Latch::new(task_count));
        self.ensure_workers(self.num_threads().saturating_sub(1).min(task_count - 1));
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            for task in tasks {
                let latch = Arc::clone(&latch);
                let wrapped: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
                    // Discard any span parked by an unrelated earlier unwind
                    // on this thread so a panic here is attributed only to a
                    // span *this* task was inside.
                    let _ = sigma_obs::take_panic_span();
                    if let Err(payload) = catch_unwind(AssertUnwindSafe(task)) {
                        latch.record_panic(attach_panic_span(payload));
                    }
                    latch.complete_one();
                });
                // SAFETY: `run` blocks on the latch until every task has
                // executed (workers decrement even on panic), so the `'scope`
                // borrows captured by the task strictly outlive its
                // execution. This is the standard scoped-pool erasure; only
                // the lifetime is transmuted, the layout is identical.
                let job: Job = unsafe {
                    std::mem::transmute::<
                        Box<dyn FnOnce() + Send + 'scope>,
                        Box<dyn FnOnce() + Send + 'static>,
                    >(wrapped)
                };
                queue.jobs.push_back(job);
            }
            POOL_QUEUE_DEPTH.add(task_count as i64);
            self.shared.job_ready.notify_all();
        }
        // Help-first join: keep executing queued work (ours or a nested
        // scope's) until our own latch opens.
        while !latch.is_done() {
            let job = {
                let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
                queue.jobs.pop_front()
            };
            match job {
                Some(job) => {
                    POOL_QUEUE_DEPTH.sub(1);
                    let sw = Stopwatch::start();
                    job();
                    POOL_SUBMITTER_BUSY_NS.add(sw.elapsed_ns());
                }
                None => latch.wait_briefly(),
            }
        }
        if let Some(payload) = latch.take_panic() {
            resume_unwind(payload);
        }
    }

    /// Splits row-major `data` (`data.len() / width` rows of `width`
    /// elements) into at most [`ThreadPool::num_threads`] contiguous row
    /// blocks and runs `f(first_row, block)` on each in parallel.
    ///
    /// Each output row is owned by exactly one call, so any `f` that fills
    /// its block with a per-row computation produces bitwise-identical
    /// results at every thread count. With one thread (or one block) this is
    /// exactly `f(0, data)`.
    pub fn par_row_blocks_mut<T, F>(&self, data: &mut [T], width: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        if width == 0 {
            f(0, data);
            return;
        }
        let rows = data.len() / width;
        self.par_row_blocks_in_ranges(data, width, split_into(rows, self.num_threads()), f);
    }

    /// Weighted variant of [`ThreadPool::par_row_blocks_mut`]: rows are cut
    /// into blocks of near-equal total `weights` (one weight per row, e.g.
    /// the row's nnz) instead of equal row count, so skewed row costs spread
    /// evenly across threads.
    ///
    /// Row ownership is unchanged — each output row is still produced by
    /// exactly one call with the serial per-row computation — so results are
    /// bitwise identical to [`ThreadPool::par_row_blocks_mut`] (and to the
    /// serial path) for every thread count *and* for every weight vector.
    pub fn par_row_blocks_mut_weighted<T, F>(
        &self,
        data: &mut [T],
        width: usize,
        weights: &[usize],
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        if width == 0 {
            f(0, data);
            return;
        }
        let rows = data.len() / width;
        debug_assert_eq!(weights.len(), rows, "one weight per row");
        let ranges = if weights.len() == rows {
            partition_by_weight(weights, self.num_threads())
        } else {
            split_into(rows, self.num_threads())
        };
        self.par_row_blocks_in_ranges(data, width, ranges, f);
    }

    /// Prefix-sum variant of [`ThreadPool::par_row_blocks_mut_weighted`]:
    /// `prefix` has one entry per row boundary (`rows + 1` values,
    /// non-decreasing), exactly the shape of a CSR `indptr` array, so sparse
    /// kernels can plan nnz-balanced blocks with no intermediate weight
    /// vector. Generic over the prefix word width (see [`PrefixWord`]) so
    /// memory-mapped `u32`/`u64` `indptr` sections plan in place.
    pub fn par_row_blocks_mut_by_prefix<T, P, F>(
        &self,
        data: &mut [T],
        width: usize,
        prefix: &[P],
        f: F,
    ) where
        T: Send,
        P: PrefixWord,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if data.is_empty() {
            return;
        }
        if width == 0 {
            f(0, data);
            return;
        }
        let rows = data.len() / width;
        debug_assert_eq!(prefix.len(), rows + 1, "prefix has rows + 1 entries");
        let ranges = if prefix.len() == rows + 1 {
            partition_by_prefix(prefix, self.num_threads())
        } else {
            split_into(rows, self.num_threads())
        };
        self.par_row_blocks_in_ranges(data, width, ranges, f);
    }

    /// Runs `f(first_row, block)` over the row blocks described by `ranges`
    /// (contiguous, covering, in order). Shared body of the row-block
    /// primitives.
    fn par_row_blocks_in_ranges<T, F>(
        &self,
        data: &mut [T],
        width: usize,
        ranges: Vec<Range<usize>>,
        f: F,
    ) where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if ranges.len() <= 1 {
            f(0, data);
            return;
        }
        let timer = TaskTimer::new(ranges.len());
        let f = &f;
        let timer_ref = &timer;
        let last = ranges.len() - 1;
        let mut rest = data;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
        for (i, range) in ranges.into_iter().enumerate() {
            // The final block also carries any trailing elements that do not
            // form a whole row (mirrors the historical `chunks_mut` split).
            let len = if i == last {
                rest.len()
            } else {
                range.len() * width
            };
            let (block, tail) = rest.split_at_mut(len);
            rest = tail;
            let first_row = range.start;
            tasks.push(Box::new(move || timer_ref.time(i, || f(first_row, block))));
        }
        self.run(tasks);
        timer.record();
    }

    /// Partitions `0..n` into contiguous ranges (one per thread) and maps
    /// each through `f`, returning results in range order.
    ///
    /// The number of ranges adapts to the thread count, so only use this
    /// when per-range results are position-independent (e.g. disjoint output
    /// rows); for order-sensitive reductions use [`ThreadPool::par_map_chunks`]
    /// with a fixed chunk size.
    pub fn par_map_ranges<R, F>(&self, n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        self.map_ranges(self.split_ranges(n), f)
    }

    /// Weighted variant of [`ThreadPool::par_map_ranges`]: partitions
    /// `0..weights.len()` into contiguous ranges of near-equal total weight
    /// (see [`partition_by_weight`]) and maps each through `f`, returning
    /// results in range order.
    ///
    /// Callers that concatenate the per-range results in order (the
    /// row-range kernels) get output that is a pure function of the row
    /// order — identical for every thread count and weight vector.
    pub fn par_map_ranges_weighted<R, F>(&self, weights: &[usize], f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        self.map_ranges(self.split_ranges_by_weight(weights), f)
    }

    /// Prefix-sum variant of [`ThreadPool::par_map_ranges_weighted`]:
    /// `prefix` holds `rows + 1` non-decreasing cumulative weights (the CSR
    /// `indptr` shape), avoiding an intermediate weight vector. Generic over
    /// the prefix word width (see [`PrefixWord`]).
    pub fn par_map_ranges_by_prefix<R, P, F>(&self, prefix: &[P], f: F) -> Vec<R>
    where
        R: Send,
        P: PrefixWord,
        F: Fn(Range<usize>) -> R + Sync,
    {
        self.map_ranges(partition_by_prefix(prefix, self.num_threads()), f)
    }

    /// Maps each of `ranges` through `f` as one scoped task, returning
    /// results in range order. Shared body of the range-mapping primitives.
    fn map_ranges<R, F>(&self, ranges: Vec<Range<usize>>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Range<usize>) -> R + Sync,
    {
        if ranges.len() <= 1 {
            return ranges.into_iter().map(&f).collect();
        }
        let timer = TaskTimer::new(ranges.len());
        let mut slots: Vec<Option<R>> = ranges.iter().map(|_| None).collect();
        {
            let f = &f;
            let timer = &timer;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
                .into_iter()
                .zip(slots.iter_mut())
                .enumerate()
                .map(|(i, (range, slot))| {
                    Box::new(move || *slot = Some(timer.time(i, || f(range))))
                        as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.run(tasks);
        }
        timer.record();
        slots
            .into_iter()
            .map(|s| s.expect("every range task ran to completion"))
            .collect()
    }

    /// Maps every item of `items` through `f`, returning results in item
    /// order.
    ///
    /// Unlike [`ThreadPool::par_map_chunks`] the scheduling granularity
    /// adapts to the item count: few items get one scoped task each (best
    /// load balance for heavily skewed per-item costs — the repair rounds of
    /// the incremental SimRank maintainer, where one dirty seed's re-push
    /// can dominate a whole batch, are the motivating caller), while large
    /// item sets are batched into contiguous runs through the weight planner
    /// so scheduling overhead stays off the profile. Each result lands in
    /// the slot of its item, so for a pure `f` the output is identical at
    /// every thread count and batching choice. When per-item costs are both
    /// skewed *and* numerous, prefer [`ThreadPool::par_map_weighted`] with
    /// explicit cost estimates.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let threads = self.num_threads();
        if items.len() <= 1 || threads == 1 {
            return items.iter().map(&f).collect();
        }
        let max_tasks = threads.saturating_mul(PAR_MAP_OVERSUB);
        if items.len() <= max_tasks {
            // Few items: one scoped task per item.
            let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
            {
                let f = &f;
                let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
                    .iter()
                    .zip(slots.iter_mut())
                    .map(|(item, slot)| {
                        Box::new(move || *slot = Some(f(item))) as Box<dyn FnOnce() + Send + '_>
                    })
                    .collect();
                self.run(tasks);
            }
            return slots
                .into_iter()
                .map(|s| s.expect("every item task ran to completion"))
                .collect();
        }
        // Many items: batch contiguous runs (equal counts — the planner with
        // unit weights) instead of paying one boxed task per item.
        self.par_map_in_ranges(items, split_into(items.len(), max_tasks), f)
    }

    /// Weighted variant of [`ThreadPool::par_map`]: items are grouped into
    /// contiguous batches of near-equal total `weights` (one weight per
    /// item, e.g. an estimated per-item cost), bounding scheduling overhead
    /// for large item sets without giving up load balance on skewed costs.
    ///
    /// Results land in item order; for a pure `f` the output is identical
    /// to `items.iter().map(f)` at every thread count and weight vector.
    pub fn par_map_weighted<T, R, F>(&self, items: &[T], weights: &[usize], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        debug_assert_eq!(items.len(), weights.len(), "one weight per item");
        if items.len() <= 1 || self.num_threads() == 1 || items.len() != weights.len() {
            return items.iter().map(&f).collect();
        }
        let max_tasks = self.num_threads().saturating_mul(PAR_MAP_OVERSUB);
        self.par_map_in_ranges(items, partition_by_weight(weights, max_tasks), f)
    }

    /// Maps `items` batch-wise over `ranges` (contiguous, covering, in
    /// order), one scoped task per range, each filling its items' slots.
    fn par_map_in_ranges<T, R, F>(&self, items: &[T], ranges: Vec<Range<usize>>, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        if ranges.len() <= 1 {
            return items.iter().map(&f).collect();
        }
        let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
        {
            let f = &f;
            let mut rest: &mut [Option<R>] = &mut slots;
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(ranges.len());
            for range in ranges {
                let (block, tail) = rest.split_at_mut(range.len());
                rest = tail;
                let batch = &items[range];
                tasks.push(Box::new(move || {
                    for (item, slot) in batch.iter().zip(block.iter_mut()) {
                        *slot = Some(f(item));
                    }
                }));
            }
            self.run(tasks);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every batch task ran to completion"))
            .collect()
    }

    /// Maps fixed-size chunks of `items` through `f` in parallel, returning
    /// results in chunk order.
    ///
    /// The chunk boundaries depend only on `chunk_len` and `items.len()` —
    /// **not** on the thread count — so a caller that merges the results in
    /// chunk order gets bitwise-identical output at every thread count. This
    /// is the primitive behind the deterministic parallel LocalPush.
    pub fn par_map_chunks<T, R, F>(&self, items: &[T], chunk_len: usize, f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &[T]) -> R + Sync,
    {
        let chunk_len = chunk_len.max(1);
        if items.len() <= chunk_len || self.num_threads() == 1 {
            return items
                .chunks(chunk_len)
                .enumerate()
                .map(|(i, c)| f(i, c))
                .collect();
        }
        let num_chunks = items.len().div_ceil(chunk_len);
        let mut slots: Vec<Option<R>> = (0..num_chunks).map(|_| None).collect();
        {
            let f = &f;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = items
                .chunks(chunk_len)
                .zip(slots.iter_mut())
                .enumerate()
                .map(|(i, (chunk, slot))| {
                    Box::new(move || *slot = Some(f(i, chunk))) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            self.run(tasks);
        }
        slots
            .into_iter()
            .map(|s| s.expect("every chunk task ran to completion"))
            .collect()
    }

    /// Spawns workers until at least `target` are alive (capped by
    /// [`MAX_THREADS`]).
    fn ensure_workers(&self, target: usize) {
        let target = target.min(MAX_THREADS);
        let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
        while queue.spawned_workers < target {
            let shared = Arc::clone(&self.shared);
            let index = queue.spawned_workers;
            let handle = std::thread::Builder::new()
                .name(format!("sigma-parallel-{index}"))
                .spawn(move || worker_loop(shared, index))
                .expect("spawning a sigma-parallel worker thread");
            queue.spawned_workers += 1;
            if self.fixed_threads.is_some() {
                self.handles
                    .lock()
                    .expect("pool handle list poisoned")
                    .push(handle);
            }
            // The global pool's workers are intentionally detached: the pool
            // lives until process exit.
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        // Only standalone pools are ever dropped (the global pool lives in a
        // `OnceLock` static). Tell workers to exit once the queue drains.
        {
            let mut queue = self.shared.queue.lock().expect("pool queue poisoned");
            queue.shutdown = true;
            self.shared.job_ready.notify_all();
        }
        for handle in self
            .handles
            .lock()
            .expect("pool handle list poisoned")
            .drain(..)
        {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>, index: usize) {
    loop {
        let job = {
            let mut queue = shared.queue.lock().expect("pool queue poisoned");
            loop {
                if let Some(job) = queue.jobs.pop_front() {
                    break Some(job);
                }
                if queue.shutdown {
                    break None;
                }
                queue = shared
                    .job_ready
                    .wait(queue)
                    .expect("pool queue poisoned while waiting");
            }
        };
        match job {
            // Jobs are panic-wrapped at submission, so this cannot unwind.
            Some(job) => {
                POOL_QUEUE_DEPTH.sub(1);
                let sw = Stopwatch::start();
                job();
                POOL_WORKER_BUSY_NS.add(index, sw.elapsed_ns());
            }
            None => return,
        }
    }
}

/// Splits `0..n` into at most `parts` contiguous, near-equal ranges.
fn split_into(n: usize, parts: usize) -> Vec<Range<usize>> {
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    let per = n.div_ceil(parts);
    (0..parts)
        .map(|i| (i * per).min(n)..((i + 1) * per).min(n))
        .filter(|r| !r.is_empty())
        .collect()
}

/// An integer word usable as a cumulative prefix entry by the nnz-balanced
/// planners ([`partition_by_prefix`] and the `*_by_prefix` pool methods).
///
/// CSR `indptr` arrays live in memory as `usize`, but the zero-copy snapshot
/// format maps them straight off disk as `u32` or `u64` words; implementing
/// this trait for all three lets the planner walk any of them without a
/// widening copy. Values must fit `usize` — prefix entries are in-memory
/// element counts, which always do on the 64-bit targets this crate supports.
pub trait PrefixWord: Copy + Send + Sync + Ord + std::fmt::Debug {
    /// Widens the word to `usize` (lossless for in-memory element counts).
    fn as_usize(self) -> usize;
}

impl PrefixWord for usize {
    #[inline]
    fn as_usize(self) -> usize {
        self
    }
}

impl PrefixWord for u32 {
    #[inline]
    fn as_usize(self) -> usize {
        self as usize
    }
}

impl PrefixWord for u64 {
    #[inline]
    fn as_usize(self) -> usize {
        self as usize
    }
}

/// Cuts `0..weights.len()` into at most `parts` contiguous, non-empty
/// ranges of near-equal total weight.
///
/// This is the nnz-balanced work planner: weights are per-row work
/// estimates (a CSR row's nnz, a Gustavson row's flop count, a serve
/// chunk's operator mass), and the returned ranges are what a kernel's
/// scoped tasks should own so a skewed (power-law) distribution still
/// spreads evenly across threads. The ranges are disjoint, cover every
/// index in order, and each carries total weight at most
/// `ceil(total / parts) + max(weights)` — within 2× of the ideal share
/// whenever no single item exceeds it (a heavier item is an unsplittable
/// unit and bounds its range alone). All-zero weights degrade to the
/// equal-count split.
///
/// Any cut of the same row order yields bitwise-identical kernel output
/// (each row is still produced by exactly one task in serial order), so the
/// planner is free to balance without entering the determinism contract.
pub fn partition_by_weight(weights: &[usize], parts: usize) -> Vec<Range<usize>> {
    let mut prefix = Vec::with_capacity(weights.len() + 1);
    let mut acc = 0usize;
    prefix.push(0usize);
    for &w in weights {
        acc = acc.saturating_add(w);
        prefix.push(acc);
    }
    partition_by_prefix(&prefix, parts)
}

/// [`partition_by_weight`] over a precomputed cumulative-weight array:
/// `prefix` holds `n + 1` non-decreasing values and item `i` weighs
/// `prefix[i + 1] - prefix[i]` — exactly the shape of a CSR `indptr`, which
/// sparse kernels pass directly. Cut points are found by binary search, so
/// planning costs `O(parts · log n)`. Generic over the prefix word width
/// (see [`PrefixWord`]) so memory-mapped `u32`/`u64` `indptr` sections plan
/// without a widening copy.
pub fn partition_by_prefix<P: PrefixWord>(prefix: &[P], parts: usize) -> Vec<Range<usize>> {
    assert!(!prefix.is_empty(), "prefix holds n + 1 entries");
    debug_assert!(
        prefix.windows(2).all(|w| w[1] >= w[0]),
        "prefix must be non-decreasing"
    );
    let n = prefix.len() - 1;
    if n == 0 {
        return Vec::new();
    }
    let parts = parts.clamp(1, n);
    if parts == 1 {
        return std::iter::once(0..n).collect();
    }
    let base = prefix[0].as_usize();
    let total = prefix[n].as_usize() - base;
    if total == 0 {
        // Every item weighs nothing: fall back to the equal-count split so
        // zero-heavy inputs still use all threads.
        return split_into(n, parts);
    }
    let mut ranges = Vec::with_capacity(parts);
    let mut start = 0usize;
    for p in 0..parts {
        let end = if p + 1 == parts {
            // The last part always reaches n, absorbing any zero-weight tail.
            n
        } else {
            // Smallest index whose cumulative weight reaches this part's
            // share of the total (u128: `total * parts` may overflow usize).
            let target = base + ((total as u128 * (p as u128 + 1)) / parts as u128) as usize;
            start + prefix[start..=n].partition_point(|&x| x.as_usize() < target)
        };
        if end > start {
            ranges.push(start..end);
            start = end;
        }
    }
    if sigma_obs::ENABLED && ranges.len() > 1 {
        // What the planner *expects* the imbalance to be: heaviest range
        // weight over the ideal equal share. Compared against the measured
        // task wall-time imbalance recorded by the execution primitives.
        let max_w = ranges
            .iter()
            .map(|r| prefix[r.end].as_usize() - prefix[r.start].as_usize())
            .max()
            .unwrap_or(0);
        let ideal = total as f64 / ranges.len() as f64;
        if ideal > 0.0 {
            POOL_IMBALANCE_PREDICTED.record(((max_w as f64 / ideal) * 1000.0) as u64);
        }
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_ranges_cover_exactly() {
        for n in [0usize, 1, 5, 17, 100] {
            for parts in [1usize, 2, 4, 7] {
                let ranges = split_into(n, parts);
                let mut covered = 0usize;
                for r in &ranges {
                    assert_eq!(r.start, covered, "ranges must be contiguous");
                    assert!(r.end > r.start);
                    covered = r.end;
                }
                assert_eq!(covered, n);
                assert!(ranges.len() <= parts.max(1));
            }
        }
    }

    #[test]
    fn par_row_blocks_write_disjoint_rows() {
        let pool = ThreadPool::with_threads(4);
        let (rows, width) = (103usize, 7usize);
        let mut data = vec![0u32; rows * width];
        pool.par_row_blocks_mut(&mut data, width, |first_row, block| {
            for (i, row) in block.chunks_mut(width).enumerate() {
                let r = first_row + i;
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (r * width + j) as u32;
                }
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i);
        }
    }

    #[test]
    fn par_map_ranges_preserves_order() {
        let pool = ThreadPool::with_threads(3);
        let sums = pool.par_map_ranges(1000, |r| r.clone().sum::<usize>());
        assert_eq!(sums.iter().sum::<usize>(), (0..1000).sum::<usize>());
        // Single-thread pool produces the same partition results serially.
        let serial = ThreadPool::with_threads(1).par_map_ranges(1000, |r| r.sum::<usize>());
        assert_eq!(serial.iter().sum::<usize>(), (0..1000).sum::<usize>());
    }

    #[test]
    fn par_map_chunks_is_thread_count_independent() {
        let items: Vec<u64> = (0..997).collect();
        let f = |i: usize, chunk: &[u64]| (i, chunk.iter().sum::<u64>());
        let a = ThreadPool::with_threads(1).par_map_chunks(&items, 64, f);
        let b = ThreadPool::with_threads(4).par_map_chunks(&items, 64, f);
        assert_eq!(a, b);
        assert_eq!(a.len(), 997usize.div_ceil(64));
    }

    #[test]
    fn par_map_preserves_item_order_at_any_width() {
        let items: Vec<u64> = (0..321).collect();
        let f = |&x: &u64| x * x + 1;
        let serial = ThreadPool::with_threads(1).par_map(&items, f);
        let parallel = ThreadPool::with_threads(4).par_map(&items, f);
        assert_eq!(serial, parallel);
        assert_eq!(serial[17], 17 * 17 + 1);
        let empty: Vec<u64> = ThreadPool::with_threads(4).par_map(&[], f);
        assert!(empty.is_empty());
    }

    #[test]
    fn panics_propagate_after_join() {
        let pool = ThreadPool::with_threads(2);
        let hits = AtomicUsize::new(0);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..8)
                .map(|i| {
                    let hits = &hits;
                    Box::new(move || {
                        if i == 3 {
                            panic!("task failure");
                        }
                        hits.fetch_add(1, Ordering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            pool.run(tasks);
        }));
        assert!(result.is_err(), "the task panic must be re-raised");
        // Every sibling still ran: the scope joins before unwinding.
        assert_eq!(hits.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn nested_runs_do_not_deadlock() {
        let pool = ThreadPool::with_threads(2);
        let total = AtomicUsize::new(0);
        let outer: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
            .map(|_| {
                let total = &total;
                let pool = &pool;
                Box::new(move || {
                    let inner: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
                        .map(|_| {
                            Box::new(move || {
                                total.fetch_add(1, Ordering::Relaxed);
                            }) as Box<dyn FnOnce() + Send + '_>
                        })
                        .collect();
                    pool.run(inner);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run(outer);
        assert_eq!(total.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn global_override_clamps_and_clears() {
        set_global_threads(usize::MAX);
        assert_eq!(current_threads(), MAX_THREADS);
        set_global_threads(3);
        assert_eq!(current_threads(), 3);
        set_global_threads(0);
        assert!(current_threads() >= 1);
    }

    #[test]
    fn partition_by_weight_balances_skewed_rows() {
        // Power-law-ish weights: one heavy head, long light tail.
        let weights: Vec<usize> = (0..100).map(|i| 1000 / (i + 1)).collect();
        let total: usize = weights.iter().sum();
        let parts = 4;
        let ranges = partition_by_weight(&weights, parts);
        // Disjoint + covering, in order.
        let mut covered = 0usize;
        for r in &ranges {
            assert_eq!(r.start, covered);
            assert!(r.end > r.start);
            covered = r.end;
        }
        assert_eq!(covered, weights.len());
        assert!(ranges.len() <= parts);
        // Each range within the planner's bound.
        let ideal = total.div_ceil(parts);
        let max_item = *weights.iter().max().unwrap();
        for r in &ranges {
            let w: usize = weights[r.clone()].iter().sum();
            assert!(
                w <= ideal + max_item,
                "range {r:?} weighs {w}, bound {}",
                ideal + max_item
            );
        }
        // Strictly better max-range weight than the equal-count split.
        let count_max = split_into(weights.len(), parts)
            .iter()
            .map(|r| weights[r.clone()].iter().sum::<usize>())
            .max()
            .unwrap();
        let weight_max = ranges
            .iter()
            .map(|r| weights[r.clone()].iter().sum::<usize>())
            .max()
            .unwrap();
        assert!(weight_max < count_max, "{weight_max} !< {count_max}");
    }

    #[test]
    fn partition_by_weight_handles_adversarial_inputs() {
        // All-empty rows: degrade to the equal-count split.
        let ranges = partition_by_weight(&[0usize; 10], 3);
        assert_eq!(ranges.iter().map(Range::len).sum::<usize>(), 10);
        assert!(ranges.len() > 1, "zero weights must still use all threads");
        // A single heavy row is isolated without losing the zero tail.
        let mut weights = vec![0usize; 9];
        weights.insert(0, 1_000_000);
        let ranges = partition_by_weight(&weights, 4);
        assert_eq!(ranges.first().map(|r| r.clone().count()), Some(1));
        assert_eq!(ranges.iter().map(Range::len).sum::<usize>(), 10);
        // Empty input.
        assert!(partition_by_weight(&[], 4).is_empty());
        // Prefix form agrees with the weight form.
        let weights: Vec<usize> = (0..50).map(|i| (i * 7) % 13).collect();
        let mut prefix = vec![0usize];
        for &w in &weights {
            prefix.push(prefix.last().unwrap() + w);
        }
        assert_eq!(
            partition_by_weight(&weights, 4),
            partition_by_prefix(&prefix, 4)
        );
    }

    #[test]
    fn par_map_batches_large_item_sets_identically() {
        let pool = ThreadPool::with_threads(4);
        // Far above threads × oversubscription: exercises the batched path.
        let items: Vec<u64> = (0..10_000).collect();
        let f = |&x: &u64| x.wrapping_mul(x) ^ 0x5a5a;
        let serial: Vec<u64> = items.iter().map(f).collect();
        assert_eq!(pool.par_map(&items, f), serial);
    }

    #[test]
    fn par_map_weighted_matches_serial_map() {
        let pool = ThreadPool::with_threads(4);
        let items: Vec<u64> = (0..777).collect();
        let weights: Vec<usize> = items.iter().map(|&x| (x as usize % 97) + 1).collect();
        let f = |&x: &u64| x * 3 + 1;
        let serial: Vec<u64> = items.iter().map(f).collect();
        assert_eq!(pool.par_map_weighted(&items, &weights, f), serial);
        // Degenerate weights still cover every item.
        let zeros = vec![0usize; items.len()];
        assert_eq!(pool.par_map_weighted(&items, &zeros, f), serial);
    }

    #[test]
    fn weighted_row_blocks_write_every_row_once() {
        let pool = ThreadPool::with_threads(4);
        let (rows, width) = (97usize, 5usize);
        // Heavily skewed weights so the cuts are uneven.
        let weights: Vec<usize> = (0..rows).map(|r| if r < 3 { 500 } else { 1 }).collect();
        let mut data = vec![0u32; rows * width];
        pool.par_row_blocks_mut_weighted(&mut data, width, &weights, |first_row, block| {
            for (i, row) in block.chunks_mut(width).enumerate() {
                let r = first_row + i;
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (r * width + j) as u32;
                }
            }
        });
        for (i, &v) in data.iter().enumerate() {
            assert_eq!(v as usize, i);
        }
        // Prefix variant produces the same coverage.
        let mut prefix = vec![0usize];
        for &w in &weights {
            prefix.push(prefix.last().unwrap() + w);
        }
        let mut data2 = vec![0u32; rows * width];
        pool.par_row_blocks_mut_by_prefix(&mut data2, width, &prefix, |first_row, block| {
            for (i, row) in block.chunks_mut(width).enumerate() {
                let r = first_row + i;
                for (j, v) in row.iter_mut().enumerate() {
                    *v = (r * width + j) as u32;
                }
            }
        });
        assert_eq!(data, data2);
    }

    #[test]
    fn should_parallelize_respects_threshold() {
        let pool = ThreadPool::with_threads(4);
        assert!(!pool.should_parallelize(10));
        assert!(pool.should_parallelize(MIN_PARALLEL_WORK));
        let serial = ThreadPool::with_threads(1);
        assert!(!serial.should_parallelize(usize::MAX));
    }
}
