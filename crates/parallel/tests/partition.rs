//! Property-based coverage for the nnz-balanced work planner.
//!
//! [`partition_by_weight`] must, for *any* weight vector — including the
//! adversarial shapes the kernels actually meet on power-law graphs (one
//! row holding almost all the mass, rows with no mass at all) — return
//! ranges that are disjoint, cover every row in order, and stay within the
//! documented balance bound: no range heavier than
//! `ceil(total / parts) + max(weights)`, i.e. within 2× of the ideal share
//! whenever no single row exceeds it.

use proptest::prelude::*;
use sigma_parallel::{partition_by_prefix, partition_by_weight};
use std::ops::Range;

/// Asserts the structural planner contract and returns the per-range
/// weights for balance checks.
fn assert_cover_and_disjoint(weights: &[usize], ranges: &[Range<usize>]) -> Vec<usize> {
    let mut covered = 0usize;
    let mut range_weights = Vec::with_capacity(ranges.len());
    for r in ranges {
        assert_eq!(r.start, covered, "ranges must be contiguous and in order");
        assert!(r.end > r.start, "planner must not emit empty ranges");
        covered = r.end;
        range_weights.push(weights[r.clone()].iter().sum::<usize>());
    }
    assert_eq!(covered, weights.len(), "every row must be covered");
    range_weights
}

fn assert_balance_bound(weights: &[usize], parts: usize, range_weights: &[usize]) {
    let total: usize = weights.iter().sum();
    if total == 0 {
        return; // All-empty input degrades to the equal-count split.
    }
    let ideal = total.div_ceil(parts);
    let max_item = weights.iter().copied().max().unwrap_or(0);
    for (i, &w) in range_weights.iter().enumerate() {
        assert!(
            w <= ideal + max_item,
            "range {i} weighs {w} > ideal {ideal} + max item {max_item} \
             (weights {weights:?}, parts {parts})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_weights_satisfy_the_planner_contract(
        weights in prop::collection::vec(0usize..2000, 1..200),
        parts in 1usize..12,
    ) {
        let ranges = partition_by_weight(&weights, parts);
        prop_assert!(ranges.len() <= parts.max(1));
        let range_weights = assert_cover_and_disjoint(&weights, &ranges);
        assert_balance_bound(&weights, parts.clamp(1, weights.len()), &range_weights);
    }

    #[test]
    fn single_heavy_row_is_isolated_and_tail_still_covered(
        n in 2usize..120,
        heavy_at in 0usize..120,
        heavy in 10_000usize..1_000_000,
        parts in 2usize..8,
    ) {
        let heavy_at = heavy_at % n;
        let mut weights = vec![1usize; n];
        weights[heavy_at] = heavy;
        let ranges = partition_by_weight(&weights, parts);
        let range_weights = assert_cover_and_disjoint(&weights, &ranges);
        assert_balance_bound(&weights, parts.clamp(1, n), &range_weights);
        // The heavy row dominates the total, so the range holding it must
        // not have been padded with more than the planner bound of light
        // rows — in particular it cannot contain a second share of the
        // ideal weight beyond the unsplittable heavy row itself.
        let total: usize = weights.iter().sum();
        let ideal = total.div_ceil(parts.clamp(1, n));
        let holder = ranges
            .iter()
            .position(|r| r.contains(&heavy_at))
            .expect("some range holds the heavy row");
        prop_assert!(range_weights[holder] <= heavy + ideal);
    }

    #[test]
    fn all_empty_rows_still_use_every_part(
        n in 1usize..100,
        parts in 1usize..8,
    ) {
        let weights = vec![0usize; n];
        let ranges = partition_by_weight(&weights, parts);
        assert_cover_and_disjoint(&weights, &ranges);
        // Equal-count fallback: as many near-equal ranges as parts allow.
        let per = n.div_ceil(parts.clamp(1, n));
        prop_assert_eq!(ranges.len(), n.div_ceil(per));
        prop_assert!(ranges.iter().all(|r| r.len() <= per));
    }

    #[test]
    fn prefix_form_agrees_with_weight_form(
        weights in prop::collection::vec(0usize..500, 1..150),
        parts in 1usize..10,
    ) {
        let mut prefix = vec![0usize];
        for &w in &weights {
            prefix.push(prefix.last().unwrap() + w);
        }
        prop_assert_eq!(
            partition_by_weight(&weights, parts),
            partition_by_prefix(&prefix, parts)
        );
    }

    #[test]
    fn planner_is_a_pure_function_of_weights_and_parts(
        weights in prop::collection::vec(0usize..300, 1..100),
        parts in 1usize..8,
    ) {
        prop_assert_eq!(
            partition_by_weight(&weights, parts),
            partition_by_weight(&weights, parts)
        );
    }
}

#[test]
fn balanced_cuts_beat_equal_counts_on_a_power_law() {
    // Zipf-ish weights: row i weighs ~ N/(i+1). Equal-count partitioning
    // puts the whole head in range 0; the planner splits by mass.
    let weights: Vec<usize> = (0..256).map(|i| 100_000 / (i + 1)).collect();
    let total: usize = weights.iter().sum();
    let parts = 4;
    let balanced = partition_by_weight(&weights, parts);
    let balanced_max = balanced
        .iter()
        .map(|r| weights[r.clone()].iter().sum::<usize>())
        .max()
        .unwrap();
    // Equal-count ranges for comparison.
    let per = weights.len().div_ceil(parts);
    let count_max = weights
        .chunks(per)
        .map(|c| c.iter().sum::<usize>())
        .max()
        .unwrap();
    let ideal = total.div_ceil(parts);
    assert!(
        balanced_max < count_max,
        "planner max {balanced_max} must beat equal-count max {count_max}"
    );
    // On this distribution the heaviest single row (~100k) exceeds the
    // ideal share, so the bound is max_item-driven; check it holds.
    assert!(balanced_max <= ideal + weights[0]);
}

// ---------------------------------------------------------------------------
// Shard-router edge cases (shard PR satellites): the `ShardRouter` feeds
// `partition_by_weight` operator-row nnz masses and pads the result with
// empty tail ranges up to the requested shard count, so the planner's
// behaviour on degenerate inputs — more parts than rows, one row holding
// all the mass, zero-mass tails — is load-bearing for serving.
// ---------------------------------------------------------------------------

#[test]
fn more_parts_than_rows_yields_one_singleton_range_per_row() {
    // 3 rows behind 16 requested parts: the planner can hand out at most
    // one (non-empty) range per row — the router pads the remaining shards
    // with empty tail ranges itself. With equal masses the split is exact.
    let ranges = partition_by_weight(&[1usize, 1, 1], 16);
    assert_eq!(
        ranges,
        vec![0..1, 1..2, 2..3],
        "with parts > rows and equal mass every row gets its own range"
    );
    // Skewed masses may merge light rows, but never exceed the row count
    // and never emit empty ranges.
    let skewed = partition_by_weight(&[5usize, 1, 9], 16);
    assert!(skewed.len() <= 3);
    assert!(skewed.iter().all(|r| r.end > r.start));
    assert_eq!(skewed.first().map(|r| r.start), Some(0));
    assert_eq!(skewed.last().map(|r| r.end), Some(3));
}

#[test]
fn single_row_holding_all_mass_still_covers_the_zero_tail() {
    // Row 0 carries 100% of the nnz mass; rows 1..N are empty (a star
    // graph's operator looks like this). The cut after the heavy row must
    // not orphan the massless tail — every row still needs an owner shard.
    let mut weights = vec![0usize; 64];
    weights[0] = 1_000_000;
    let ranges = partition_by_weight(&weights, 4);
    let mut covered = 0usize;
    for r in &ranges {
        assert_eq!(r.start, covered);
        assert!(r.end > r.start, "no empty ranges from the planner");
        covered = r.end;
    }
    assert_eq!(covered, 64, "zero-mass tail rows must still be covered");
    assert!(ranges.len() <= 4);
    // The heavy row is isolated from as much of the tail as balance allows:
    // whichever range holds row 0 carries all the mass, the rest carry none.
    let massful = ranges
        .iter()
        .filter(|r| weights[(*r).clone()].iter().sum::<usize>() > 0)
        .count();
    assert_eq!(massful, 1, "exactly one range holds the star's mass");
}

#[test]
fn zero_mass_tail_rows_do_not_starve_trailing_parts_of_coverage() {
    // Mass concentrated in the first quarter, then a long zero tail: the
    // planner may merge the tail into few ranges, but the union must stay
    // exactly 0..n and ranges must stay sorted and disjoint so the router's
    // `shard_of` binary search stays correct.
    let mut weights = vec![0usize; 100];
    for (i, w) in weights.iter_mut().enumerate().take(25) {
        *w = 100 - i;
    }
    for parts in [1usize, 2, 3, 7, 25, 100] {
        let ranges = partition_by_weight(&weights, parts);
        let mut covered = 0usize;
        for r in &ranges {
            assert_eq!(r.start, covered, "parts={parts}: gap before {r:?}");
            assert!(r.end > r.start, "parts={parts}: empty range {r:?}");
            covered = r.end;
        }
        assert_eq!(covered, 100, "parts={parts}: tail not covered");
        assert!(ranges.len() <= parts);
    }
}
