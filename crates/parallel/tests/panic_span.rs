//! Panic-span attribution (observability PR satellite): when a scoped task
//! panics inside a `sigma_obs::span!` region, the payload re-raised by the
//! submitting thread carries the innermost span's name, so a kernel panic
//! under load is attributable without a debugger attached.
//!
//! These tests need the `obs` feature (on by default); with it disabled the
//! span machinery is compiled out and panics propagate with their original
//! payloads, which `panics_propagate_after_join` in the unit suite covers.
#![cfg(feature = "obs")]

use sigma_parallel::ThreadPool;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn payload_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        panic!("expected a string panic payload");
    }
}

fn run_tasks(pool: &ThreadPool, tasks: Vec<Box<dyn FnOnce() + Send + '_>>) -> String {
    let result = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
    let payload = result.expect_err("the task panic must be re-raised");
    payload_message(payload.as_ref())
}

#[test]
fn panic_inside_span_names_the_span() {
    let pool = ThreadPool::with_threads(2);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..4)
        .map(|i| {
            Box::new(move || {
                let _span = sigma_obs::span!("obs_test_kernel", 7);
                if i == 2 {
                    panic!("deliberate failure");
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    let message = run_tasks(&pool, tasks);
    assert_eq!(message, "deliberate failure (in span 'obs_test_kernel')");
}

#[test]
fn nested_spans_attribute_the_innermost() {
    let pool = ThreadPool::with_threads(2);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..2)
        .map(|i| {
            Box::new(move || {
                let _outer = sigma_obs::span!("obs_test_outer");
                let _inner = sigma_obs::span!("obs_test_inner");
                if i == 0 {
                    panic!("nested failure");
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    let message = run_tasks(&pool, tasks);
    assert_eq!(message, "nested failure (in span 'obs_test_inner')");
}

#[test]
fn panic_outside_any_span_is_untouched() {
    let pool = ThreadPool::with_threads(2);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..3)
        .map(|i| {
            Box::new(move || {
                if i == 1 {
                    panic!("plain failure");
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    let message = run_tasks(&pool, tasks);
    assert_eq!(message, "plain failure");
}

#[test]
fn non_string_payloads_pass_through() {
    let pool = ThreadPool::with_threads(2);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..2)
        .map(|i| {
            Box::new(move || {
                let _span = sigma_obs::span!("obs_test_typed");
                if i == 0 {
                    std::panic::panic_any(42usize);
                }
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    let result = catch_unwind(AssertUnwindSafe(|| pool.run(tasks)));
    let payload = result.expect_err("the task panic must be re-raised");
    assert_eq!(payload.downcast_ref::<usize>(), Some(&42));
}

#[test]
fn pool_exports_task_and_scratch_metrics() {
    let pool = ThreadPool::with_threads(4);
    let before = sigma_obs::snapshot().counter("sigma_pool_tasks_total");
    let sums = pool.par_map_ranges(10_000, |r| r.sum::<usize>());
    assert_eq!(sums.iter().sum::<usize>(), (0..10_000).sum::<usize>());
    let after = sigma_obs::snapshot().counter("sigma_pool_tasks_total");
    assert!(
        after > before,
        "running scoped tasks must bump sigma_pool_tasks_total ({before} -> {after})"
    );
}
